"""Property-based differential tests for the simulation engines.

Hypothesis generates random layer geometries -- spatial shapes, strides,
paddings, group counts, attention head counts and precisions -- and for every
generated layer asserts the three contracts the engines promise:

* **exactness**: the vectorized fast path produces a
  :class:`~repro.sim.results.LayerResult` that equals the per-layer event
  reference field for field (``==`` on the floats, no tolerance);
* **sanity**: cycle and energy counts are finite and non-negative, and
  utilization stays in [0, 1];
* **monotonicity**: raising an activation or weight precision never makes a
  precision-exploiting design faster or more energy-frugal.

The Hypothesis profile is pinned in the root ``conftest.py`` (derandomized,
bounded examples) so CI runs are deterministic.
"""

from __future__ import annotations

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.accelerators import AcceleratorConfig, DPNN, DStripes, Stripes  # noqa: E402
from repro.core import Loom  # noqa: E402
from repro.nn.layers import Conv2D, FullyConnected, MatMul, TensorShape  # noqa: E402
from repro.nn.network import LayerWithPrecision  # noqa: E402
from repro.quant.precision import LayerPrecision  # noqa: E402
from repro.sim.fastpath import build_layer_table, simulate_layers_fast  # noqa: E402
from repro.sim.results import LayerResult  # noqa: E402

# Small-scale configuration keeps the generated tile math fast while still
# exercising every closed form; one design per distinct vector kernel.
_CONFIG = AcceleratorConfig(equivalent_macs=32)
DESIGNS = [
    DPNN(_CONFIG),
    Stripes(_CONFIG),
    DStripes(_CONFIG),
    Loom(_CONFIG, bits_per_cycle=1),
    Loom(_CONFIG, bits_per_cycle=2),
    Loom(_CONFIG, bits_per_cycle=4),
    Loom(_CONFIG, use_effective_weight_precision=True),
    Loom(_CONFIG, use_cascading=False, replicate_filters=True),
]


def _resolved(layer, input_shape: TensorShape,
              precision: LayerPrecision) -> LayerWithPrecision:
    return LayerWithPrecision(
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
        precision=precision,
    )


@st.composite
def precisions(draw) -> LayerPrecision:
    effective = draw(st.one_of(
        st.none(),
        st.floats(min_value=1.0, max_value=16.0,
                  allow_nan=False, allow_infinity=False),
    ))
    return LayerPrecision(
        activation_bits=draw(st.integers(1, 16)),
        weight_bits=draw(st.integers(1, 16)),
        effective_weight_bits=effective,
    )


@st.composite
def conv_layers(draw) -> LayerWithPrecision:
    groups = draw(st.sampled_from([1, 2, 3, 4]))
    in_per_group = draw(st.integers(1, 6))
    out_per_group = draw(st.integers(1, 6))
    kernel = draw(st.integers(1, 5))
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 2))
    min_dim = max(1, kernel - 2 * padding)
    height = draw(st.integers(min_dim, 14))
    width = draw(st.integers(min_dim, 14))
    layer = Conv2D(name="conv", out_channels=out_per_group * groups,
                   kernel=kernel, stride=stride, padding=padding,
                   groups=groups)
    shape = TensorShape(in_per_group * groups, height, width)
    return _resolved(layer, shape, draw(precisions()))


@st.composite
def depthwise_layers(draw) -> LayerWithPrecision:
    channels = draw(st.integers(1, 48))
    kernel = draw(st.sampled_from([3, 5]))
    stride = draw(st.integers(1, 2))
    padding = kernel // 2
    size = draw(st.integers(max(1, kernel - 2 * padding), 14))
    layer = Conv2D(name="dw", out_channels=channels, kernel=kernel,
                   stride=stride, padding=padding, groups=channels)
    return _resolved(layer, TensorShape(channels, size, size),
                     draw(precisions()))


@st.composite
def matmul_layers(draw) -> LayerWithPrecision:
    heads = draw(st.sampled_from([1, 2, 4, 8]))
    in_per_head = draw(st.integers(1, 8))
    out_per_head = draw(st.integers(1, 8))
    seq_len = draw(st.integers(1, 12))
    layer = MatMul(name="matmul", out_features=out_per_head * heads,
                   heads=heads,
                   transpose_b=draw(st.booleans()))
    shape = TensorShape(in_per_head * heads, seq_len, 1)
    return _resolved(layer, shape, draw(precisions()))


@st.composite
def fc_layers(draw) -> LayerWithPrecision:
    layer = FullyConnected(name="fc", out_features=draw(st.integers(1, 300)))
    shape = draw(st.one_of(
        st.builds(TensorShape, st.integers(1, 512)),
        st.builds(TensorShape, st.integers(1, 32),
                  st.integers(1, 6), st.integers(1, 6)),
    ))
    return _resolved(layer, shape, draw(precisions()))


any_compute_layer = st.one_of(conv_layers(), depthwise_layers(),
                              matmul_layers(), fc_layers())


def _fast_and_event(accelerator, lw):
    table = build_layer_table([lw])
    fast = simulate_layers_fast(accelerator, table)[0]
    event = accelerator.simulate_layer(lw)
    return fast, event


class TestEnginesAgreeExactly:
    @given(lw=any_compute_layer)
    def test_every_field_identical_across_engines(self, lw):
        for accelerator in DESIGNS:
            fast, event = _fast_and_event(accelerator, lw)
            for field in dataclasses.fields(LayerResult):
                a, b = getattr(fast, field.name), getattr(event, field.name)
                assert a == b, (
                    f"{accelerator.name}/{lw.name}.{field.name}: "
                    f"fast={a!r} event={b!r}"
                )


class TestResultSanity:
    @given(lw=any_compute_layer)
    def test_counts_non_negative_and_utilization_bounded(self, lw):
        for accelerator in DESIGNS:
            result = accelerator.simulate_layer(lw)
            assert result.cycles >= 0
            assert result.compute_cycles > 0  # every layer does some work
            assert result.memory_cycles >= 0
            assert result.energy_pj >= 0
            assert result.weight_bits_read >= 0
            assert result.activation_bits_read >= 0
            assert result.activation_bits_written >= 0
            assert 0.0 <= result.utilization <= 1.0
            assert result.layer_kind == lw.kind


def _with_precision(lw, activation_bits=None, weight_bits=None):
    precision = LayerPrecision(
        activation_bits=(lw.precision.activation_bits
                         if activation_bits is None else activation_bits),
        weight_bits=(lw.precision.weight_bits
                     if weight_bits is None else weight_bits),
    )
    return LayerWithPrecision(
        layer=lw.layer, input_shape=lw.input_shape,
        output_shape=lw.output_shape, precision=precision,
    )


class TestPrecisionMonotonicity:
    """More precision bits can never make Loom/Stripes faster or cheaper."""

    @given(
        lw=st.one_of(conv_layers(), depthwise_layers(), matmul_layers()),
        lo=st.integers(1, 16),
        hi=st.integers(1, 16),
    )
    def test_loom_monotone_in_activation_precision(self, lw, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        loom = DESIGNS[3]
        low = loom.simulate_layer(_with_precision(lw, activation_bits=lo))
        high = loom.simulate_layer(_with_precision(lw, activation_bits=hi))
        assert low.cycles <= high.cycles
        assert low.energy_pj <= high.energy_pj

    @given(
        lw=st.one_of(conv_layers(), depthwise_layers(), matmul_layers(),
                     fc_layers()),
        lo=st.integers(1, 16),
        hi=st.integers(1, 16),
    )
    def test_loom_monotone_in_weight_precision(self, lw, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        loom = DESIGNS[3]
        low = loom.simulate_layer(_with_precision(lw, weight_bits=lo))
        high = loom.simulate_layer(_with_precision(lw, weight_bits=hi))
        assert low.cycles <= high.cycles
        assert low.energy_pj <= high.energy_pj

    @given(
        lw=st.one_of(conv_layers(), depthwise_layers(), matmul_layers()),
        lo=st.integers(1, 16),
        hi=st.integers(1, 16),
    )
    def test_stripes_monotone_in_activation_precision(self, lw, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        stripes = DESIGNS[1]
        low = stripes.simulate_layer(_with_precision(lw, activation_bits=lo))
        high = stripes.simulate_layer(_with_precision(lw, activation_bits=hi))
        assert low.cycles <= high.cycles
        assert low.energy_pj <= high.energy_pj
