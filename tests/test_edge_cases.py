"""Cross-cutting edge cases and failure-injection tests."""

import numpy as np
import pytest

from repro.accelerators import DPNN, Stripes, AcceleratorConfig
from repro.core import Loom
from repro.core.scheduler import LoomGeometry, schedule_conv_layer
from repro.nn.layers import Conv2D, FullyConnected, TensorShape
from repro.nn.network import LayerWithPrecision, Network
from repro.quant import get_paper_profile
from repro.quant.precision import LayerPrecision, NetworkPrecisionProfile
from repro.sim import run_network


class TestDegenerateLayers:
    def test_one_by_one_network(self):
        """A 1x1x1 network with single-output layers still simulates."""
        net = Network("degenerate", TensorShape(1, 1, 1))
        net.add(Conv2D(name="conv", out_channels=1, kernel=1))
        net.add(FullyConnected(name="fc", out_features=1))
        profile = NetworkPrecisionProfile(
            network="degenerate", accuracy_target="100%",
            conv_layers=[LayerPrecision(1, 1)],
            fc_layers=[LayerPrecision(16, 1)],
        )
        net.attach_profile(profile)
        for accel in (DPNN(), Stripes(), Loom()):
            result = run_network(accel, net)
            assert all(lr.cycles >= 1 for lr in result.layers)
            assert all(np.isfinite(lr.energy_pj) for lr in result.layers)

    def test_single_pixel_spatial_conv(self):
        layer = Conv2D(name="c", out_channels=2048, kernel=1)
        in_shape = TensorShape(64, 1, 1)
        lw = LayerWithPrecision(layer=layer, input_shape=in_shape,
                                output_shape=layer.output_shape(in_shape),
                                precision=LayerPrecision(8, 8))
        # Only one window: Loom's 16 window columns are mostly idle but the
        # schedule must still be valid.
        schedule = schedule_conv_layer(lw, LoomGeometry())
        assert schedule.window_chunks == 1
        assert 0 < schedule.occupancy <= 1.0

    def test_huge_kernel_small_filter_count(self):
        layer = Conv2D(name="c", out_channels=3, kernel=11, stride=4)
        in_shape = TensorShape(3, 227, 227)
        lw = LayerWithPrecision(layer=layer, input_shape=in_shape,
                                output_shape=layer.output_shape(in_shape),
                                precision=LayerPrecision(16, 16))
        assert Loom().compute_cycles(lw) > 0
        assert DPNN().compute_cycles(lw) > 0


class TestConfigurationEdges:
    def test_minimum_configuration(self):
        config = AcceleratorConfig(equivalent_macs=16)
        loom = Loom(config)
        assert loom.geometry.filter_rows == 16
        assert loom.geometry.num_sips == 256
        dpnn = DPNN(config)
        assert dpnn.num_ip_units == 1

    def test_explicit_memory_sizing_overrides_defaults(self):
        config = AcceleratorConfig(am_capacity_bytes=256 * 1024,
                                   wm_capacity_bytes=512 * 1024)
        loom = Loom(config)
        assert loom.hierarchy.activation_memory.capacity_bytes == 256 * 1024
        assert loom.hierarchy.weight_memory.capacity_bytes == 512 * 1024

    def test_small_am_forces_activation_spill(self, vgg19_100):
        config = AcceleratorConfig(am_capacity_bytes=64 * 1024)
        loom = Loom(config)
        conv = vgg19_100.conv_layers()[0]
        weight_bits, act_bits = loom.storage_precisions(conv)
        traffic = loom.hierarchy.layer_traffic(
            weight_count=conv.weight_count,
            input_activations=conv.input_activations,
            output_activations=conv.output_activations,
            weight_bits=weight_bits, activation_bits=act_bits, is_fc=False,
        )
        assert not traffic.activations_fit_on_chip

    def test_window_fanout_must_divide(self):
        with pytest.raises(ValueError):
            Loom(AcceleratorConfig(equivalent_macs=128), window_fanout=5)


class TestProfileMismatches:
    def test_wrong_network_profile_rejected(self):
        net = Network("custom", TensorShape(3, 8, 8))
        net.add(Conv2D(name="only_conv", out_channels=4, kernel=3))
        with pytest.raises(ValueError):
            net.attach_profile(get_paper_profile("alexnet"))

    def test_profile_reattachment_overwrites(self):
        from repro.nn import build_network
        net = build_network("alexnet")
        net.attach_profile(get_paper_profile("alexnet", "100%"))
        first = net.conv_layers()[2].precision.activation_bits
        net.attach_profile(get_paper_profile("alexnet", "99%"))
        second = net.conv_layers()[2].precision.activation_bits
        assert (first, second) == (5, 4)


class TestNumericalRobustness:
    def test_loom_results_finite_across_variants(self, alexnet_100):
        for bits in (1, 2, 4):
            result = run_network(Loom(bits_per_cycle=bits), alexnet_100)
            for lr in result.layers:
                assert np.isfinite(lr.cycles) and lr.cycles > 0
                assert np.isfinite(lr.energy_pj) and lr.energy_pj > 0
                assert np.isfinite(lr.utilization)

    def test_max_precision_profile_is_supported(self, dpnn_default):
        net = Network("max", TensorShape(8, 8, 8))
        net.add(Conv2D(name="c", out_channels=16, kernel=3, padding=1))
        profile = NetworkPrecisionProfile(
            network="max", accuracy_target="100%",
            conv_layers=[LayerPrecision(16, 16)], fc_layers=[],
        )
        net.attach_profile(profile)
        loom_cycles = run_network(Loom(), net).total_cycles()
        dpnn_cycles = run_network(dpnn_default, net).total_cycles()
        assert loom_cycles >= dpnn_cycles * 0.9
