"""Smoke tests: every shipped example must run end to end."""

import pathlib
import subprocess
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    env = {"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"}
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=600, env=env,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Loom-1b" in out and "speedup" in out

    def test_mobile_vision_pipeline(self):
        out = run_example("mobile_vision_pipeline.py")
        assert "pipeline fps" in out and "Loom-1b" in out

    def test_precision_tradeoff(self):
        out = run_example("precision_tradeoff.py")
        assert "bit-serial FC == integer FC" in out
        assert "99%" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "512" in out and "DStripes" in out

    def test_sparsity_extension(self):
        out = run_example("sparsity_extension.py")
        assert "pruning rate" in out and "speedup bound" in out

    def test_design_space_exploration(self):
        out = run_example("design_space_exploration.py")
        assert "Pareto frontier" in out
        assert "coordinate descent" in out
        assert "am_fits_working_set" in out

    def test_serve_quickstart(self):
        out = run_example("serve_quickstart.py")
        assert "bit-identical to in-process fast path" in out
        assert "max executions per key = 1" in out
        assert "shut down gracefully" in out

    def test_cluster_quickstart(self):
        out = run_example("cluster_quickstart.py")
        assert "2 healthy workers" in out
        assert "remote sweep bit-identical to batched engine" in out
        assert "served layer results bit-identical to batched engine" in out
        assert "metrics scrape ok" in out
        assert "cluster shut down gracefully" in out

    def test_peercache_failover(self):
        out = run_example("peercache_failover.py")
        assert "dead-shard keys from the peer cache, bit-identical" in out
        assert "peer-cache /metrics series present" in out
        assert "peer-cache failover OK" in out
