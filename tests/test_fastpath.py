"""Differential validation of the vectorized fast-path engine.

The fast path must be *bit-identical* to the per-layer reference ("event")
engine -- not approximately equal -- because experiment outputs, the result
cache and the Pareto frontiers all hash/compare the raw floats.  These tests
enforce that over the full (network x accelerator x precision-profile)
matrix, on DRAM-attached and scaled configurations, and on the edge cases
(networks with no compute layers, 1-wide tiles), plus the event-engine
anchor: analytical Loom schedules executed callback by callback.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accelerators import AcceleratorConfig, DPNN
from repro.core import Loom
from repro.memory.dram import LPDDR4_4267
from repro.nn import Network, available_networks
from repro.nn.layers import Conv2D, FullyConnected, ReLU, TensorShape
from repro.sim import run_network
from repro.sim.fastpath import (
    ENGINES,
    build_layer_table,
    get_default_engine,
    set_default_engine,
    simulate_network_fast,
    supports_fast_path,
    use_engine,
)
from repro.sim.jobs import AcceleratorSpec, NetworkSpec, SimJob
from repro.sim.jobs.spec import execute_job
from repro.sim.validate import (
    default_accelerator_matrix,
    validate_job,
    validate_tile_level,
    validate_zoo,
)

# Every stock design variant the experiments instantiate.
ACCELERATOR_SPECS = {
    "dpnn": AcceleratorSpec.create("dpnn"),
    "stripes": AcceleratorSpec.create("stripes"),
    "dstripes": AcceleratorSpec.create("dstripes"),
    "loom-1b": AcceleratorSpec.create("loom", bits_per_cycle=1),
    "loom-2b": AcceleratorSpec.create("loom", bits_per_cycle=2),
    "loom-4b": AcceleratorSpec.create("loom", bits_per_cycle=4),
    "loom-effw": AcceleratorSpec.create("loom",
                                        use_effective_weight_precision=True),
    "loom-nocascade": AcceleratorSpec.create("loom", use_cascading=False,
                                             replicate_filters=True),
}

PROFILES = [
    pytest.param("100%", False, id="100"),
    pytest.param("99%", False, id="99"),
    pytest.param("100%", True, id="effective-weights"),
]


def _assert_case_ok(case):
    details = "\n".join(m.describe() for m in case.mismatches[:10])
    assert case.ok, (
        f"fast path diverges from the event-engine reference on "
        f"{case.network}/{case.accelerator}:\n{details}"
    )


class TestZooDifferential:
    """fast == event for every (network, accelerator, profile) combination."""

    @pytest.mark.parametrize("accelerator", sorted(ACCELERATOR_SPECS))
    @pytest.mark.parametrize("accuracy,effective", PROFILES)
    @pytest.mark.parametrize("network", available_networks())
    def test_cycle_exact(self, network, accuracy, effective, accelerator):
        job = SimJob(
            network=NetworkSpec(network, accuracy,
                                with_effective_weights=effective),
            accelerator=ACCELERATOR_SPECS[accelerator],
        )
        case = validate_job(job)
        assert case.layers_compared > 0
        _assert_case_ok(case)

    @pytest.mark.parametrize("equivalent_macs", [32, 256])
    def test_cycle_exact_with_dram_and_scaling(self, equivalent_macs):
        config = AcceleratorConfig(equivalent_macs=equivalent_macs,
                                   dram=LPDDR4_4267,
                                   charge_offchip_energy=False)
        report = validate_zoo(networks=["alexnet", "vgg19"],
                              accuracies=["100%"],
                              include_effective_weights=False,
                              config=config)
        assert report.layers_compared > 0
        assert report.ok, report.summary()

    def test_validator_catches_injected_drift(self, monkeypatch):
        """The harness must actually detect disagreement, not vacuously pass."""
        from repro.core import closed_form

        original = closed_form.loom_conv_cycles_array

        def off_by_one(*args, **kwargs):
            return original(*args, **kwargs) + 1.0

        monkeypatch.setattr(closed_form, "loom_conv_cycles_array", off_by_one)
        job = SimJob(network=NetworkSpec("alexnet"),
                     accelerator=ACCELERATOR_SPECS["loom-1b"])
        case = validate_job(job)
        assert not case.ok
        assert any(m.field in ("cycles", "compute_cycles")
                   for m in case.mismatches)


class TestEventEngineAnchor:
    """Analytical schedules match the event-driven tile simulation exactly."""

    def test_tile_level_checks_pass(self):
        checks = validate_tile_level()
        # conv + fc + matmul anchors for each of LM1b / LM2b / LM4b.
        assert len(checks) == 9
        for check in checks:
            assert check.ok, check.describe()


class TestEdgeCases:
    def test_no_compute_layers(self):
        network = Network("empty", TensorShape(3, 8, 8))
        network.add(ReLU(name="relu"))
        fast = run_network(Loom(), network, engine="fast")
        event = run_network(Loom(), network, engine="event")
        assert fast.layers == [] and event.layers == []
        assert fast.total_cycles() == event.total_cycles() == 0.0

    def test_one_wide_tiles(self):
        """1x1 input, 1 filter, 1 output: every chunk count degenerates to 1."""
        network = Network("onewide", TensorShape(1, 1, 1))
        network.add(Conv2D(name="conv", out_channels=1, kernel=1))
        network.add(FullyConnected(name="fc", out_features=1))
        config = AcceleratorConfig(equivalent_macs=16)
        for accelerator in (Loom(config), Loom(config, bits_per_cycle=4),
                            DPNN(config)):
            fast = run_network(accelerator, network, engine="fast")
            event = run_network(accelerator, network, engine="event")
            assert ([dataclasses.asdict(lr) for lr in fast.layers]
                    == [dataclasses.asdict(lr) for lr in event.layers])
            assert fast.layers[0].cycles >= 1.0

    def test_empty_layer_table(self):
        table = build_layer_table([])
        assert len(table) == 0
        result = simulate_network_fast(Loom(), table, network="empty")
        assert result.layers == []

    def test_result_fields_are_plain_python_scalars(self, alexnet_100):
        result = run_network(Loom(), alexnet_100, engine="fast")
        layer = result.layers[0]
        assert type(layer.cycles) is float
        assert type(layer.energy_pj) is float
        assert type(layer.macs) is int
        assert type(layer.utilization) is float


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("fast", "event", "batched")
        assert get_default_engine() in ENGINES

    def test_set_and_restore(self):
        previous = set_default_engine("event")
        try:
            assert get_default_engine() == "event"
        finally:
            set_default_engine(previous)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("warp")

    def test_use_engine_context(self):
        before = get_default_engine()
        with use_engine("event"):
            assert get_default_engine() == "event"
        assert get_default_engine() == before

    def test_run_network_rejects_unknown_engine(self, alexnet_100, loom_1b):
        with pytest.raises(ValueError, match="unknown engine"):
            run_network(loom_1b, alexnet_100, engine="warp")

    def test_execute_job_rejects_unknown_engine(self):
        job = SimJob(network=NetworkSpec("nin"),
                     accelerator=ACCELERATOR_SPECS["dpnn"])
        with pytest.raises(ValueError, match="unknown engine"):
            execute_job(job, engine="warp")

    def test_custom_subclass_falls_back_to_reference(self, tiny_network):
        class TunedLoom(Loom):
            def compute_cycles(self, layer):
                return super().compute_cycles(layer) * 2.0

        tuned = TunedLoom()
        assert not supports_fast_path(tuned)
        # The fast engine must not silently mis-simulate the subclass: the
        # fallback runs the overridden hooks.
        fast_mode = run_network(tuned, tiny_network, engine="fast")
        reference = run_network(tuned, tiny_network, engine="event")
        assert fast_mode.total_cycles() == reference.total_cycles()
        assert fast_mode.total_cycles() > \
            run_network(Loom(), tiny_network).total_cycles()

    def test_stock_designs_supported(self, dpnn_default, loom_1b,
                                     stripes_default, dstripes_default):
        for accelerator in (dpnn_default, loom_1b, stripes_default,
                            dstripes_default):
            assert supports_fast_path(accelerator)


class TestDefaultMatrix:
    def test_matrix_covers_all_kinds(self):
        kinds = {spec.kind for spec in default_accelerator_matrix()}
        assert kinds == {"dpnn", "stripes", "dstripes", "loom"}


class TestValidateReporting:
    def test_report_summary_verbose_lists_cases(self):
        report = validate_zoo(networks=["nin"], accuracies=["100%"],
                              include_effective_weights=False,
                              accelerators=[AcceleratorSpec.create("dpnn")])
        text = report.summary(verbose=True)
        assert "nin" in text and "cycle-exact" in text
        assert not report.failures()

    def test_report_summary_shows_mismatches(self, monkeypatch):
        from repro.core import closed_form

        original = closed_form.dpnn_conv_cycles_array
        monkeypatch.setattr(closed_form, "dpnn_conv_cycles_array",
                            lambda *a, **k: original(*a, **k) + 1.0)
        report = validate_zoo(networks=["nin"], accuracies=["100%"],
                              include_effective_weights=False,
                              accelerators=[AcceleratorSpec.create("dpnn")])
        assert not report.ok
        text = report.summary()
        assert "ENGINES DISAGREE" in text and "MISMATCH" in text

    def test_cli_validate_quick(self, capsys):
        from repro.cli import main

        assert main(["validate", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "cycle-exact" in out and "event-engine anchor" in out

    def test_cli_engine_flag_round_trip(self, capsys):
        from repro.cli import main

        default_engine = get_default_engine()
        try:
            assert main(["--engine", "event", "networks"]) == 0
            assert main(["--engine", "fast", "networks"]) == 0
        finally:
            set_default_engine(default_engine)


class TestScheduleDelayCoercion:
    """Regression: CycleEngine.schedule silently accepted non-int delays."""

    def test_integral_float_is_coerced(self):
        from repro.sim import CycleEngine

        engine = CycleEngine()
        event = engine.schedule(3.0, lambda: None)
        assert event.cycle == 3 and type(event.cycle) is int
        assert engine.run() == 3

    def test_fractional_float_rejected(self):
        from repro.sim import CycleEngine

        engine = CycleEngine()
        with pytest.raises(ValueError, match="whole number of cycles"):
            engine.schedule(1.5, lambda: None)

    def test_numpy_scalars_accepted(self):
        from repro.sim import CycleEngine

        engine = CycleEngine()
        assert engine.schedule(np.int64(2), lambda: None).cycle == 2
        assert engine.schedule(np.float64(4.0), lambda: None).cycle == 4
        with pytest.raises(ValueError):
            engine.schedule(np.float64(2.5), lambda: None)

    def test_non_numeric_rejected(self):
        from repro.sim import CycleEngine

        engine = CycleEngine()
        with pytest.raises(TypeError, match="integer cycle count"):
            engine.schedule("3", lambda: None)

    def test_negative_still_rejected(self):
        from repro.sim import CycleEngine

        engine = CycleEngine()
        with pytest.raises(ValueError, match=">= 0"):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_accepts_integral_float(self):
        from repro.sim import CycleEngine

        engine = CycleEngine()
        event = engine.schedule_at(5.0, lambda: None)
        assert event.cycle == 5
