"""Tests for the batched sweep engine and its result transport.

The batched engine's whole contract is *bit-exactness at sweep scale*: any
mix of jobs -- ragged network sizes, heterogeneous design points, exotic
fallbacks -- must come back field-for-field equal to running the per-job
fast path (and therefore the event reference) job by job, in submission
order.  The property-based tests generate random job mixes against that
contract; the directed tests pin the edges (empty batch, single job,
cross-design merging, fallback ordering) and the shared-memory transport's
round-trip + degradation behaviour.
"""

from __future__ import annotations

import pytest

from repro.accelerators.base import AcceleratorConfig
from repro.sim.batched import (
    _design_signature,
    simulate_jobs_batched,
    simulate_tables_batched,
    stack_layer_tables,
)
from repro.sim.fastpath import simulate_layers_fast
from repro.sim.jobs import spec as jobs_spec
from repro.sim.jobs.executor import JobExecutor
from repro.sim.jobs.spec import (
    AcceleratorSpec,
    NetworkSpec,
    SimJob,
    build_accelerator,
    execute_job,
)
from repro.sim.jobs.transport import pack_results, unpack_results
from repro.sim.validate import validate_jobs

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def _jobs_equal(batched_results, reference_results):
    """Field-for-field equality across whole result lists."""
    assert len(batched_results) == len(reference_results)
    for batched, reference in zip(batched_results, reference_results):
        assert batched.network == reference.network
        assert batched.accelerator == reference.accelerator
        assert batched.clock_ghz == reference.clock_ghz
        assert len(batched.layers) == len(reference.layers)
        for got, want in zip(batched.layers, reference.layers):
            assert got == want  # dataclass ==: every field, exact floats


def _reference(jobs):
    return [execute_job(job, engine="fast") for job in jobs]


#: Networks with different layer counts and kinds (conv-only, conv+fc,
#: matmul-bearing, effective-weights) -- the ragged/mixed axis.
_NETWORKS = (
    NetworkSpec("alexnet", "100%"),
    NetworkSpec("alexnet", "99%"),
    NetworkSpec("nin", "100%"),
    NetworkSpec("alexnet", "100%", with_effective_weights=True),
    NetworkSpec("tiny_transformer", "100%"),
)

#: Design points across all four stock kinds, Loom serial widths and flag
#: variants, plus scale/memory/clock spreads -- the grouping/merging axis.
_DESIGNS = (
    (AcceleratorSpec.create("dpnn"), AcceleratorConfig()),
    (AcceleratorSpec.create("stripes"), AcceleratorConfig(equivalent_macs=64)),
    (AcceleratorSpec.create("dstripes"), AcceleratorConfig()),
    (AcceleratorSpec.create("loom"), AcceleratorConfig()),
    (AcceleratorSpec.create("loom"),
     AcceleratorConfig(equivalent_macs=256, clock_ghz=1.2)),
    (AcceleratorSpec.create("loom"),
     AcceleratorConfig(am_capacity_bytes=512 * 1024)),
    (AcceleratorSpec.create("loom", bits_per_cycle=2), AcceleratorConfig()),
    (AcceleratorSpec.create("loom", bits_per_cycle=4),
     AcceleratorConfig(equivalent_macs=64)),
    (AcceleratorSpec.create("loom", use_effective_weight_precision=True),
     AcceleratorConfig()),
    (AcceleratorSpec.create("loom", use_cascading=False,
                            replicate_filters=True), AcceleratorConfig()),
)


class TestStacking:
    def test_ragged_stack_shapes(self):
        tables = [
            jobs_spec._spec_layer_table(NetworkSpec("alexnet", "100%")),
            jobs_spec._spec_layer_table(NetworkSpec("nin", "100%")),
        ]
        batched = stack_layer_tables(tables)
        assert batched.jobs == 2
        assert batched.lengths == (len(tables[0]), len(tables[1]))
        assert batched.width == max(batched.lengths)
        assert batched.mask.shape == (2, batched.width)
        assert batched.mask.sum() == sum(batched.lengths)
        # The dense flat view is the member columns concatenated end to end.
        assert len(batched.flat) == sum(batched.lengths)
        assert batched.flat.names == tables[0].names + tables[1].names
        assert len(batched.conv) + len(batched.fc) == len(batched.flat)
        # Padded cells keep the closed forms finite and out of the conv set.
        padded = ~batched.mask.ravel()
        assert not batched.is_conv.ravel()[padded].any()
        assert (batched.outputs.ravel()[padded] == 1).all()

    def test_empty_stack(self):
        batched = stack_layer_tables([])
        assert batched.jobs == 0 and batched.width == 0
        assert len(batched.flat) == 0
        assert simulate_tables_batched(build_accelerator(
            AcceleratorSpec.create("loom"), AcceleratorConfig()), []) == []

    def test_tables_pass_equals_per_table_fast_path(self):
        tables = [jobs_spec._spec_layer_table(spec) for spec in _NETWORKS[:3]]
        accelerator = build_accelerator(AcceleratorSpec.create("loom"),
                                        AcceleratorConfig())
        batched_lists = simulate_tables_batched(accelerator, tables)
        for table, layers in zip(tables, batched_lists):
            assert layers == simulate_layers_fast(accelerator, table)


class TestBatchedVsPerJob:
    def test_empty_batch(self):
        assert simulate_jobs_batched([]) == []

    def test_single_job_batch(self):
        job = SimJob(network=_NETWORKS[0], accelerator=_DESIGNS[3][0],
                     config=_DESIGNS[3][1])
        _jobs_equal(simulate_jobs_batched([job]), _reference([job]))

    def test_full_design_matrix_bit_exact(self):
        jobs = [SimJob(network=network, accelerator=spec, config=config)
                for network in _NETWORKS
                for spec, config in _DESIGNS]
        _jobs_equal(simulate_jobs_batched(jobs), _reference(jobs))

    def test_duplicate_jobs_allowed(self):
        job = SimJob(network=_NETWORKS[2], accelerator=_DESIGNS[6][0],
                     config=_DESIGNS[6][1])
        _jobs_equal(simulate_jobs_batched([job, job, job]),
                    _reference([job, job, job]))

    @settings(max_examples=25, deadline=None)
    @given(picks=st.lists(
        st.tuples(st.integers(0, len(_NETWORKS) - 1),
                  st.integers(0, len(_DESIGNS) - 1)),
        min_size=0, max_size=8,
    ))
    def test_random_ragged_mixes_scatter_exactly(self, picks):
        jobs = [
            SimJob(network=_NETWORKS[n], accelerator=_DESIGNS[d][0],
                   config=_DESIGNS[d][1])
            for n, d in picks
        ]
        _jobs_equal(simulate_jobs_batched(jobs), _reference(jobs))

    def test_exotic_subclass_falls_back_in_order(self, monkeypatch):
        from repro.core import Loom

        class TunedLoom(Loom):
            def compute_cycles(self, layer):
                return super().compute_cycles(layer) * 2.0

        monkeypatch.setitem(jobs_spec.ACCELERATOR_KINDS, "tunedloom",
                            lambda config, options: TunedLoom(config))
        monkeypatch.setitem(jobs_spec._KIND_CLASSES, "tunedloom",
                            ("repro.core", "Loom"))
        exotic = SimJob(network=_NETWORKS[0],
                        accelerator=AcceleratorSpec("tunedloom"))
        stock = SimJob(network=_NETWORKS[0], accelerator=_DESIGNS[3][0],
                       config=_DESIGNS[3][1])
        jobs = [stock, exotic, stock]
        results = simulate_jobs_batched(jobs)
        _jobs_equal(results, _reference(jobs))
        # The exotic result really ran the overridden hook (2x cycles).
        assert results[1].total_cycles() == pytest.approx(
            2.0 * results[0].total_cycles())


class TestDesignSignatures:
    def test_scale_variants_share_a_plane(self):
        spec = AcceleratorSpec.create("loom")
        small = build_accelerator(spec, AcceleratorConfig(equivalent_macs=64))
        large = build_accelerator(spec, AcceleratorConfig(equivalent_macs=512))
        assert _design_signature(small) == _design_signature(large)

    def test_serial_width_variants_do_not(self):
        one = build_accelerator(AcceleratorSpec.create("loom"),
                                AcceleratorConfig())
        two = build_accelerator(AcceleratorSpec.create("loom",
                                                       bits_per_cycle=2),
                                AcceleratorConfig())
        assert _design_signature(one) != _design_signature(two)

    def test_kind_variants_do_not(self):
        loom = build_accelerator(AcceleratorSpec.create("loom"),
                                 AcceleratorConfig())
        stripes = build_accelerator(AcceleratorSpec.create("stripes"),
                                    AcceleratorConfig())
        assert _design_signature(loom) != _design_signature(stripes)


class TestValidateJobs:
    def test_batched_candidate_against_event_reference(self):
        jobs = [SimJob(network=_NETWORKS[0], accelerator=spec, config=config)
                for spec, config in _DESIGNS[:4]]
        report = validate_jobs(jobs, engine="batched")
        assert report.ok
        assert len(report.cases) == len(jobs)
        assert report.layers_compared == sum(
            len(r.layers) for r in _reference(jobs))

    def test_empty_job_list(self):
        report = validate_jobs([], engine="batched")
        assert report.ok and report.cases == []


class TestTransport:
    def _results(self):
        jobs = [SimJob(network=network, accelerator=_DESIGNS[3][0],
                       config=_DESIGNS[3][1])
                for network in _NETWORKS[:3]]
        return _reference(jobs)

    def test_shm_round_trip_is_bit_identical(self):
        results = self._results()
        payload = pack_results(results)
        unpacked, used_shm = unpack_results(payload)
        _jobs_equal(unpacked, results)
        if payload["format"] == "shm":  # shared memory available here
            assert used_shm
            # The parent unlinked the block; a second attach must fail.
            from multiprocessing import shared_memory
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=payload["shm_name"])

    def test_extra_fields_force_pickle_fallback(self):
        results = self._results()
        results[0].layers[0].extra["note"] = 1.0
        try:
            payload = pack_results(results)
            assert payload["format"] == "pickle"
            unpacked, used_shm = unpack_results(payload)
            assert not used_shm
            _jobs_equal(unpacked, results)
            assert unpacked[0].layers[0].extra == {"note": 1.0}
        finally:
            results[0].layers[0].extra.clear()

    def test_unavailable_shm_degrades_to_pickle(self, monkeypatch):
        import repro.sim.jobs.transport as transport

        monkeypatch.setattr(transport, "_try_create_shm", lambda n: None)
        results = self._results()
        payload = pack_results(results)
        assert payload["format"] == "pickle"
        unpacked, used_shm = unpack_results(payload)
        assert not used_shm
        _jobs_equal(unpacked, results)

    def test_empty_result_list(self):
        payload = pack_results([])
        unpacked, _ = unpack_results(payload)
        assert unpacked == []


class TestExecutorIntegration:
    def _jobs(self):
        # alexnet vs nin (not the 100%/99% pair: DPNN ignores precision
        # profiles, so those two would collapse to one cache key).
        return [SimJob(network=network, accelerator=spec, config=config)
                for network in (_NETWORKS[0], _NETWORKS[2])
                for spec, config in _DESIGNS[:5]]

    def test_batched_engine_serial(self):
        jobs = self._jobs()
        with JobExecutor(engine="batched") as executor:
            _jobs_equal(executor.run(jobs), _reference(jobs))
            assert executor.stats.batched_jobs == len(jobs)

    def test_batched_engine_parallel_uses_shm_transport(self):
        jobs = self._jobs()
        with JobExecutor(workers=2, engine="batched") as executor:
            _jobs_equal(executor.run(jobs), _reference(jobs))
            stats = executor.stats.to_dict()
            assert stats["batched_jobs"] == len(jobs)
            # One packed payload per worker chunk (pickle fallback would
            # leave this at 0 on platforms without shared memory).
            assert stats["shm_transports"] in (0, 2)

    def test_per_job_parallel_uses_shm_transport(self):
        jobs = self._jobs()
        with JobExecutor(workers=2) as executor:
            _jobs_equal(executor.run(jobs), _reference(jobs))
            assert executor.stats.batched_jobs == 0
            assert executor.stats.shm_transports >= 0  # platform-dependent

    def test_run_engine_overrides_executor_engine(self):
        jobs = self._jobs()
        with JobExecutor(engine="event") as executor:
            executor.run(jobs, engine="batched")
            assert executor.stats.batched_jobs == len(jobs)

    def test_cache_answers_second_batched_run(self):
        jobs = self._jobs()
        with JobExecutor(engine="batched") as executor:
            executor.run(jobs)
            executor.run(jobs)
            assert executor.stats.executed == len(jobs)
            assert executor.stats.cache_hits == len(jobs)
            assert executor.stats.max_executions_per_key == 1

    def test_stats_dict_exposes_new_counters(self):
        stats = JobExecutor().stats.to_dict()
        for key in ("batched_jobs", "shm_transports",
                    "layer_table_hits", "layer_table_builds"):
            assert key in stats

    def test_unknown_engine_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown engine"):
            JobExecutor(engine="warp")
        with JobExecutor() as executor:
            with pytest.raises(ValueError, match="unknown engine"):
                executor.run([], engine="warp")


class TestCLIEngineSelection:
    def test_validate_accepts_batched_engine(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["validate", "--engine", "batched"])
        assert args.validate_engine == "batched"

    def test_validate_rejects_unknown_engine(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["validate", "--engine", "warp"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'warp'" in capsys.readouterr().err

    def test_global_engine_accepts_batched(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--engine", "batched", "networks"])
        assert args.engine == "batched"

    def test_global_engine_rejects_unknown(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--engine", "warp", "networks"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'warp'" in capsys.readouterr().err
