"""Tests for the technology, power and area models (repro.energy)."""

import dataclasses

import pytest

from repro.energy.area import DatapathArea, AreaModel
from repro.energy.power import DatapathPower, PowerModel
from repro.energy.tech import TSMC_65NM


class TestTechnologyParameters:
    def test_default_is_65nm_1ghz(self):
        assert TSMC_65NM.feature_nm == 65.0
        assert TSMC_65NM.clock_ghz == 1.0

    def test_all_parameters_positive(self):
        for field in dataclasses.fields(TSMC_65NM):
            value = getattr(TSMC_65NM, field.name)
            if isinstance(value, float):
                assert value > 0, field.name

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TSMC_65NM, mult16_energy_pj=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(TSMC_65NM, activity_factor=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(TSMC_65NM, activity_factor=1.5)


class TestDatapathPower:
    power = DatapathPower()

    def test_dpnn_unit_dominated_by_multipliers(self):
        unit = self.power.dpnn_ip_unit_pj()
        multipliers = 16 * TSMC_65NM.mult16_energy_pj
        assert multipliers / unit > 0.8

    def test_loom_sip_much_cheaper_than_ip_unit(self):
        assert self.power.loom_sip_pj(1) < self.power.dpnn_ip_unit_pj() / 50

    def test_design_power_ratios_match_paper_calibration(self):
        """The paper's Perf/Eff ratios imply Loom-1b burns ~1.2x DPNN power,
        Loom-2b ~1.05x, Loom-4b ~1x and Stripes ~1.15x."""
        dpnn = self.power.dpnn_pj_per_cycle(128)
        lm1 = self.power.loom_pj_per_cycle(128, 1)
        lm2 = self.power.loom_pj_per_cycle(128, 2)
        lm4 = self.power.loom_pj_per_cycle(128, 4)
        stripes = self.power.stripes_pj_per_cycle(128)
        assert 1.15 <= lm1 / dpnn <= 1.32
        assert 1.00 <= lm2 / dpnn <= 1.15
        assert 0.90 <= lm4 / dpnn <= 1.08
        assert 1.05 <= stripes / dpnn <= 1.25
        assert lm1 > lm2 > lm4

    def test_power_scales_linearly_with_macs(self):
        assert self.power.dpnn_pj_per_cycle(256) == pytest.approx(
            2 * self.power.dpnn_pj_per_cycle(128))
        lm_128 = self.power.loom_pj_per_cycle(128, 1, dynamic_precision=False)
        lm_256 = self.power.loom_pj_per_cycle(256, 1, dynamic_precision=False)
        assert lm_256 == pytest.approx(2 * lm_128)

    def test_dynamic_precision_adds_small_overhead(self):
        with_dp = self.power.loom_pj_per_cycle(128, 1, dynamic_precision=True)
        without = self.power.loom_pj_per_cycle(128, 1, dynamic_precision=False)
        assert without < with_dp < without * 1.02

    def test_dstripes_costs_more_than_stripes(self):
        assert self.power.stripes_pj_per_cycle(128, dynamic_precision=True) > \
            self.power.stripes_pj_per_cycle(128, dynamic_precision=False)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            self.power.dpnn_pj_per_cycle(100)
        with pytest.raises(ValueError):
            self.power.loom_pj_per_cycle(8)
        with pytest.raises(ValueError):
            self.power.loom_pj_per_cycle(128, bits_per_cycle=3)
        with pytest.raises(ValueError):
            self.power.loom_sip_pj(0)


class TestPowerModel:
    def test_layer_energy_composition(self):
        model = PowerModel()
        assert model.layer_energy_pj(100, 2.0, 50.0) == pytest.approx(250.0)

    def test_validation(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.layer_energy_pj(-1, 2.0, 1.0)
        with pytest.raises(ValueError):
            model.layer_energy_pj(1, -2.0, 1.0)


class TestDatapathArea:
    area = DatapathArea()

    def test_core_area_ratios_match_section_4_4(self):
        dpnn = self.area.dpnn_core_mm2(128)
        lm1 = self.area.loom_core_mm2(128, 1)
        lm2 = self.area.loom_core_mm2(128, 2)
        lm4 = self.area.loom_core_mm2(128, 4)
        assert 1.25 <= lm1 / dpnn <= 1.45      # paper: 1.34
        assert 1.15 <= lm2 / dpnn <= 1.35      # paper: 1.25
        assert 1.05 <= lm4 / dpnn <= 1.30      # paper: 1.16
        assert lm1 > lm2 > lm4

    def test_area_scales_with_macs(self):
        assert self.area.dpnn_core_mm2(256) == pytest.approx(
            2 * self.area.dpnn_core_mm2(128))

    def test_stripes_area_between_dpnn_and_absurd(self):
        dpnn = self.area.dpnn_core_mm2(128)
        stripes = self.area.stripes_core_mm2(128)
        assert dpnn < stripes < 3 * dpnn

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            self.area.dpnn_core_mm2(8)
        with pytest.raises(ValueError):
            self.area.loom_core_mm2(128, bits_per_cycle=5)
        with pytest.raises(ValueError):
            self.area.loom_sip_um2(0)


class TestAreaModel:
    def test_total_includes_memory(self):
        from repro.accelerators import DPNN
        dpnn = DPNN()
        model = AreaModel()
        core = dpnn.core_area_mm2()
        assert model.total_mm2(core, dpnn.hierarchy) > core
        assert model.total_mm2(core, None) == core

    def test_relative_core_area(self):
        model = AreaModel()
        assert model.relative_core_area(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            model.relative_core_area(1.0, 0.0)
        with pytest.raises(ValueError):
            model.total_mm2(-1.0)
