"""Tests for the experiment harnesses: the paper's tables and figures.

These assert the *shape* of the reproduced results: who wins, by roughly what
factor, and where crossovers fall, mirroring the claims the paper makes.
Absolute equality with the paper's numbers is not expected (see
EXPERIMENTS.md); loose per-cell tolerances are asserted only for the
geometric means.
"""

import pytest

from repro.experiments import area, figure4, figure5, table1, table2, table3, table4
from repro.experiments.common import (
    ExperimentResult,
    build_profiled_network,
    default_designs,
    format_ratio_table,
)
from repro.quant import paper_networks


# Experiment runs are expensive; share them across this module's tests.
@pytest.fixture(scope="module")
def table2_result():
    return table2.run(accuracies=("100%",))


@pytest.fixture(scope="module")
def figure4_result():
    return figure4.run()


@pytest.fixture(scope="module")
def figure5_result():
    return figure5.run(configs=(32, 128, 512))


@pytest.fixture(scope="module")
def table4_result():
    return table4.run()


class TestCommonHelpers:
    def test_build_profiled_network(self):
        net = build_profiled_network("alexnet", "99%")
        assert net.profile.accuracy_target == "99%"

    def test_default_designs_contains_baseline_and_variants(self):
        designs = default_designs()
        assert {"dpnn", "stripes", "loom-1b", "loom-2b", "loom-4b"} <= set(designs)
        assert "dstripes" not in designs
        assert "dstripes" in default_designs(include_dstripes=True)

    def test_format_ratio_table(self):
        result = ExperimentResult(name="demo", columns=["a", "b"])
        result.add_row("net", {"a": 1.234})
        text = format_ratio_table(result)
        assert "demo" in text and "1.23" in text and "n/a" in text


class TestTable1:
    def test_rows_cover_all_networks_and_accuracies(self):
        rows = table1.run()
        assert len(rows) == 12
        assert {r.network for r in rows} == set(paper_networks())

    def test_alexnet_row_matches_paper(self):
        rows = {(r.network, r.accuracy): r for r in table1.run()}
        alexnet = rows[("alexnet", "100%")]
        assert alexnet.conv_activation_string() == "9-8-5-5-7"
        assert alexnet.conv_weight_bits == 11
        assert alexnet.fc_weight_string() == "10-9-9"

    def test_nin_has_no_fc_entry(self):
        rows = {(r.network, r.accuracy): r for r in table1.run()}
        assert rows[("nin", "100%")].fc_weight_string() == "N/A"

    def test_format_contains_all_networks(self):
        text = table1.format_table()
        for name in paper_networks():
            assert name in text

    def test_derived_profile_on_tiny_network(self, tiny_network):
        profile = table1.derive_profile_for_network(tiny_network, batch=2, seed=1)
        assert profile.num_conv_layers == 2
        assert profile.num_fc_layers == 1
        assert all(1 <= lp.activation_bits <= 16 for lp in profile.conv_layers)


class TestTable2:
    def test_all_cells_present(self, table2_result):
        cells = table2_result.cells["100%"]
        assert set(cells["conv"]) == set(paper_networks())
        # NiN has no FC layers.
        assert set(cells["fc"]) == set(paper_networks()) - {"nin"}

    def test_loom_beats_stripes_on_convs(self, table2_result):
        for network, designs in table2_result.cells["100%"]["conv"].items():
            assert designs["loom-1b"][0] > designs["stripes"][0]

    def test_stripes_gets_no_fc_speedup(self, table2_result):
        for network, designs in table2_result.cells["100%"]["fc"].items():
            assert designs["stripes"][0] == pytest.approx(1.0, abs=0.02)
            assert designs["stripes"][1] < 1.0

    def test_loom_fc_speedup_close_to_paper(self, table2_result):
        paper = table2.PAPER_TABLE2["100%"]["fc"]
        for network, designs in table2_result.cells["100%"]["fc"].items():
            measured = designs["loom-1b"][0]
            expected = paper[network]["loom-1b"][0]
            assert measured == pytest.approx(expected, rel=0.05)

    def test_conv_geomeans_within_15_percent_of_paper(self, table2_result):
        means = table2_result.geomeans("100%", "conv")
        paper_geomeans = {"stripes": (1.84, 1.61), "loom-1b": (3.25, 2.63),
                         "loom-2b": (3.10, 2.92), "loom-4b": (2.78, 2.92)}
        for design, (paper_perf, paper_eff) in paper_geomeans.items():
            perf, eff = means[design]
            assert perf == pytest.approx(paper_perf, rel=0.15)
            assert eff == pytest.approx(paper_eff, rel=0.15)

    def test_variant_ordering_on_convs(self, table2_result):
        means = table2_result.geomeans("100%", "conv")
        assert means["loom-1b"][0] > means["loom-2b"][0] > means["loom-4b"][0]

    def test_99_profile_is_at_least_as_fast(self):
        result99 = table2.run(accuracies=("99%",), networks=("alexnet",))
        result100 = table2.run(accuracies=("100%",), networks=("alexnet",))
        perf99 = result99.cells["99%"]["conv"]["alexnet"]["loom-1b"][0]
        perf100 = result100.cells["100%"]["conv"]["alexnet"]["loom-1b"][0]
        assert perf99 >= perf100

    def test_format_table_runs(self, table2_result):
        text = table2.format_table(table2_result)
        assert "CONVOLUTIONAL" in text and "geomean" in text


class TestFigure4:
    def test_headline_claims(self, figure4_result):
        geomean_perf = figure4_result.performance["geomean"]
        geomean_eff = figure4_result.efficiency["geomean"]
        # "LM1b outperforms DPNN by more than 3x ... more than 2.5x energy
        # efficient" (paper: 3.19x / 2.59x).
        assert geomean_perf["loom-1b"] > 2.7
        assert geomean_eff["loom-1b"] > 2.2
        # LM1b consistently outperforms Stripes and DStripes.
        for network in paper_networks():
            row = figure4_result.performance[network]
            assert row["loom-1b"] > row["stripes"]
            assert row["loom-1b"] > row["dstripes"]

    def test_loom_more_efficient_than_stripes(self, figure4_result):
        for network in paper_networks():
            row = figure4_result.efficiency[network]
            assert row["loom-1b"] > row["stripes"]

    def test_format_figure(self, figure4_result):
        text = figure4.format_figure(figure4_result)
        assert "Figure 4a" in text and "Figure 4b" in text and "geomean" in text


class TestArea:
    def test_ratios_match_paper(self):
        result = area.run()
        assert result.area_ratio["loom-1b"] == pytest.approx(1.34, abs=0.08)
        assert result.area_ratio["loom-2b"] == pytest.approx(1.25, abs=0.08)
        assert result.area_ratio["loom-4b"] == pytest.approx(1.16, abs=0.10)
        # Performance per area beats DPNN (whose value is 1.0 by definition).
        for design in ("loom-1b", "loom-2b", "loom-4b"):
            assert result.performance_per_area(design) > 1.0

    def test_format_table(self):
        text = area.format_table()
        assert "area ratio" in text and "loom-4b" in text


class TestFigure5:
    def test_weight_memory_matches_paper(self, figure5_result):
        assert figure5_result.point(32).loom_weight_memory_mb == 0.5
        assert figure5_result.point(128).loom_weight_memory_mb == 2.0
        assert figure5_result.point(512).loom_weight_memory_mb == 8.0

    def test_loom_advantage_shrinks_with_scale(self, figure5_result):
        perfs = figure5_result.series("loom_rel_perf_all")
        assert perfs[0] > perfs[1] > perfs[2]

    def test_dstripes_advantage_roughly_flat(self, figure5_result):
        ds = figure5_result.series("dstripes_rel_perf_conv")
        assert max(ds) / min(ds) < 1.6

    def test_crossover_at_large_configs(self, figure5_result):
        # "At 512 [DStripes] performs better" -- Loom ahead at 32, behind or
        # equal at 512 (convolutional layers).
        p32 = figure5_result.point(32)
        p512 = figure5_result.point(512)
        assert p32.loom_rel_perf_conv > p32.dstripes_rel_perf_conv
        assert p512.loom_rel_perf_conv <= p512.dstripes_rel_perf_conv * 1.05

    def test_fps_increases_with_scale(self, figure5_result):
        fps = figure5_result.series("loom_fps_all")
        assert fps[0] < fps[1] < fps[2]

    def test_loom_outperforms_dpnn_everywhere(self, figure5_result):
        assert all(p > 1.0 for p in figure5_result.series("loom_rel_perf_all"))

    def test_area_ratio_grows_with_scale(self, figure5_result):
        ratios = figure5_result.series("loom_area_ratio")
        assert ratios[0] < ratios[1] < ratios[2]

    def test_energy_efficiency_declines_with_scale(self, figure5_result):
        eff = figure5_result.series("loom_energy_efficiency")
        assert eff[0] > eff[1] > eff[2]

    def test_fps_annotations_in_paper_ballpark_at_small_configs(self,
                                                                figure5_result):
        # The paper reports 53 fps (conv) at the 32 configuration.
        assert figure5_result.point(32).loom_fps_conv == pytest.approx(53, rel=0.2)

    def test_format_figure(self, figure5_result):
        text = figure5.format_figure(figure5_result)
        assert "Loom rel perf (all)" in text and "(paper)" in text


class TestTable3:
    def test_paper_values_returned(self):
        result = table3.run(include_synthetic=False)
        assert result.paper["alexnet"] == pytest.approx(
            (8.36, 7.62, 7.62, 7.44, 7.55))
        assert not result.measured

    def test_synthetic_measurement_below_profile(self):
        measured = table3.measure_synthetic_effective_precisions(
            "alexnet", weights_per_layer=2048, seed=0)
        assert len(measured) == 5
        assert all(m < 11.0 for m in measured)
        assert all(m >= 1.0 for m in measured)

    def test_format_table(self):
        text = table3.format_table(table3.run(include_synthetic=False))
        assert "Table 3" in text and "alexnet" in text


class TestTable4:
    def test_geomeans_close_to_paper(self, table4_result):
        measured = table4_result.cells["geomean"]
        paper = table4.PAPER_TABLE4["geomean"]
        for design in ("loom-1b", "loom-2b", "loom-4b"):
            assert measured[design][0] == pytest.approx(paper[design][0], rel=0.15)
            assert measured[design][1] == pytest.approx(paper[design][1], rel=0.15)

    def test_per_group_mode_beats_table2_mode(self, table4_result, table2_result):
        # Exploiting per-group weight precisions must improve on the
        # profile-only speedups for every network.
        for network in paper_networks():
            conv_perf_profile = table2_result.cells["100%"]["conv"][network][
                "loom-1b"][0]
            all_perf_group = table4_result.cells[network]["loom-1b"][0]
            assert all_perf_group > 0.9 * conv_perf_profile

    def test_format_table(self, table4_result):
        text = table4.format_table(table4_result)
        assert "Table 4" in text and "geomean" in text
