"""Tests for the dynamic precision model (repro.quant.dynamic)."""

import numpy as np
import pytest

from repro.core.dynamic_precision import (
    DynamicPrecisionModel,
    measure_network_dynamic_precisions,
)
from repro.workloads.datasets import synthetic_image
from repro.workloads.synthetic import SyntheticTensorGenerator


class TestAnalyticalMode:
    def test_disabled_returns_profile_bits(self):
        model = DynamicPrecisionModel(enabled=False)
        assert model.effective_activation_bits(9) == 9.0
        assert model.effective_activation_bits(9, bits_per_cycle=2) == 10.0
        assert model.effective_activation_bits(9, bits_per_cycle=4) == 12.0

    def test_enabled_reduces_precision(self):
        model = DynamicPrecisionModel(activation_reduction=0.78)
        assert model.effective_activation_bits(10) == pytest.approx(7.8)

    def test_never_below_one_bit(self):
        model = DynamicPrecisionModel(activation_reduction=0.5)
        assert model.effective_activation_bits(1) >= 1.0

    def test_never_above_rounded_profile(self):
        model = DynamicPrecisionModel(activation_reduction=1.0)
        assert model.effective_activation_bits(9, bits_per_cycle=4) <= 12.0
        assert model.effective_activation_bits(9) == pytest.approx(9.0)

    def test_multi_bit_rounding_penalty(self):
        model = DynamicPrecisionModel(activation_reduction=0.78)
        one_bit = model.effective_activation_bits(10, bits_per_cycle=1)
        two_bit = model.effective_activation_bits(10, bits_per_cycle=2)
        four_bit = model.effective_activation_bits(10, bits_per_cycle=4)
        assert one_bit < two_bit < four_bit

    def test_effective_weight_bits_clamped(self):
        model = DynamicPrecisionModel()
        assert model.effective_weight_bits(7.55) == pytest.approx(7.55)
        assert model.effective_weight_bits(0.5) == 1.0
        assert model.effective_weight_bits(20.0) == 16.0
        with pytest.raises(ValueError):
            model.effective_weight_bits(0.0)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            DynamicPrecisionModel(activation_reduction=0.0)
        with pytest.raises(ValueError):
            DynamicPrecisionModel(activation_reduction=1.5)

    def test_invalid_arguments(self):
        model = DynamicPrecisionModel()
        with pytest.raises(ValueError):
            model.effective_activation_bits(0)
        with pytest.raises(ValueError):
            model.effective_activation_bits(8, bits_per_cycle=0)


class TestMeasuredMode:
    def test_measured_matches_group_computation(self):
        model = DynamicPrecisionModel()
        codes = np.full(512, 3)  # every group needs 2 bits
        measured = model.measured_activation_bits(codes, profile_bits=8,
                                                  group_size=256)
        assert measured == pytest.approx(2.0)

    def test_measured_disabled_returns_profile(self):
        model = DynamicPrecisionModel(enabled=False)
        codes = np.full(512, 3)
        assert model.measured_activation_bits(codes, profile_bits=8) == 8.0

    def test_measured_never_exceeds_profile(self):
        generator = SyntheticTensorGenerator(seed=3)
        codes = generator.activations(4096, precision_bits=9)
        model = DynamicPrecisionModel()
        measured = model.measured_activation_bits(codes, profile_bits=9)
        assert 1.0 <= measured <= 9.0

    def test_measured_reduces_for_skewed_data(self):
        generator = SyntheticTensorGenerator(seed=5, tail_exponent=4.0)
        codes = generator.activations(8192, precision_bits=10)
        model = DynamicPrecisionModel()
        measured = model.measured_activation_bits(codes, profile_bits=10)
        assert measured < 10.0

    def test_measured_weight_bits(self):
        generator = SyntheticTensorGenerator(seed=1)
        codes = generator.weights(4096, precision_bits=11)
        model = DynamicPrecisionModel()
        measured = model.measured_weight_bits(codes, profile_bits=11)
        assert 1.0 <= measured < 11.0


class TestNetworkMeasurement:
    def test_measurement_covers_all_compute_layers(self, tiny_network, rng):
        from repro.quant import NetworkPrecisionProfile, LayerPrecision
        profile = NetworkPrecisionProfile(
            network="tiny", accuracy_target="100%",
            conv_layers=[LayerPrecision(8, 8), LayerPrecision(8, 8)],
            fc_layers=[LayerPrecision(16, 8)],
        )
        tiny_network.attach_profile(profile)
        image = synthetic_image(tiny_network.input_shape, seed=0)
        measured = measure_network_dynamic_precisions(tiny_network, image, rng=rng)
        names = {lw.name for lw in tiny_network.compute_layers()}
        assert set(measured) == names
        for lw in tiny_network.compute_layers():
            assert 1.0 <= measured[lw.name] <= lw.precision.activation_bits
