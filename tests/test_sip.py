"""Tests for the functional SIP model (repro.core.sip)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sip import SIP
from repro.quant.bitops import bit_decompose


class TestSIPBasics:
    def test_initial_state(self):
        sip = SIP()
        assert sip.output == 0
        assert sip.cycles == 0
        assert sip.max_output is None

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            SIP(lanes=0)

    def test_load_weights_validation(self):
        sip = SIP(lanes=4)
        with pytest.raises(ValueError):
            sip.load_weights([1, 0, 1], bit_index=0)
        with pytest.raises(ValueError):
            sip.load_weights([1, 0, 2, 0], bit_index=0)
        with pytest.raises(ValueError):
            sip.load_weights([1, 0, 1, 0], bit_index=-1)

    def test_step_validation(self):
        sip = SIP(lanes=4)
        sip.load_weights([1, 1, 1, 1], bit_index=0)
        with pytest.raises(ValueError):
            sip.step([1, 0, 1], bit_index=0)
        with pytest.raises(ValueError):
            sip.step([1, 0, 3, 0], bit_index=0)

    def test_single_cycle_and_gate_behaviour(self):
        sip = SIP(lanes=4)
        sip.load_weights([1, 0, 1, 1], bit_index=0)
        partial = sip.step([1, 1, 0, 1], bit_index=0)
        assert partial == 2  # lanes 0 and 3 have both bits set
        sip.commit_weight_plane()
        assert sip.output == 2
        assert sip.cycles == 1


class TestSIPInnerProduct:
    def test_unsigned_times_signed(self):
        sip = SIP(lanes=16)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2 ** 8, size=16)
        w = rng.integers(-2 ** 7, 2 ** 7, size=16)
        result = sip.run_inner_product(a, w, act_bits=8, weight_bits=8)
        assert result == int(np.dot(a, w))
        assert sip.cycles == 64

    def test_signed_times_signed(self):
        sip = SIP(lanes=8)
        a = np.array([-3, 5, -7, 2, 0, 1, -1, 4])
        w = np.array([2, -2, 3, -3, 5, -5, 7, -7])
        result = sip.run_inner_product(a, w, act_bits=5, weight_bits=5,
                                       act_signed=True, weight_signed=True)
        assert result == int(np.dot(a, w))

    def test_one_bit_weights(self):
        sip = SIP(lanes=4)
        a = np.array([3, 2, 1, 0])
        w = np.array([1, 0, 1, 1])
        result = sip.run_inner_product(a, w, act_bits=2, weight_bits=1,
                                       weight_signed=False)
        assert result == 4

    def test_reset_clears_state(self):
        sip = SIP(lanes=4)
        sip.run_inner_product([1, 1, 1, 1], [1, 1, 1, 1], 2, 2,
                              weight_signed=False)
        assert sip.output != 0
        sip.reset()
        assert sip.output == 0
        assert sip.max_output is None

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=2, max_value=8))
    @settings(max_examples=40)
    def test_matches_numpy_dot(self, seed, act_bits, weight_bits):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << act_bits, size=16)
        w = rng.integers(-(1 << (weight_bits - 1)), 1 << (weight_bits - 1), size=16)
        sip = SIP()
        result = sip.run_inner_product(a, w, act_bits, weight_bits)
        assert result == int(np.dot(a, w))


class TestSIPSchedule:
    def test_manual_weight_plane_streaming(self):
        """Drive the SIP exactly as the CVL schedule does: weight plane held
        for Pa cycles, activation planes streamed LSB first."""
        a = np.array([5, 3, 7, 1, 0, 2, 6, 4] * 2)
        w = np.array([3, -2, 1, 0, -4, 2, -1, 3] * 2)
        act_bits, weight_bits = 3, 4
        a_planes = bit_decompose(a, act_bits, signed=False)
        w_planes = bit_decompose(w, weight_bits, signed=True)
        sip = SIP()
        for wi in range(weight_bits):
            sip.load_weights(w_planes[wi], bit_index=wi,
                             is_sign_plane=(wi == weight_bits - 1))
            for ai in range(act_bits):
                sip.step(a_planes[ai], bit_index=ai)
            sip.commit_weight_plane()
        assert sip.output == int(np.dot(a, w))
        assert sip.cycles == act_bits * weight_bits


class TestSIPCascadeAndMax:
    def test_cascade_accumulates_partial_outputs(self):
        a = np.arange(16)
        w = np.arange(16) - 8
        full = SIP().run_inner_product(a, w, act_bits=5, weight_bits=5)
        # Slice the inner product across two SIPs and cascade.
        first = SIP(lanes=8).run_inner_product(a[:8], w[:8], 5, 5)
        second = SIP(lanes=8)
        second.run_inner_product(a[8:], w[8:], 5, 5)
        second.cascade_in(first)
        assert second.output == full

    def test_max_pooling_support(self):
        sip = SIP(lanes=4)
        # run_inner_product resets state, so compute first, then track maxima.
        sip.run_inner_product([1, 1, 1, 1], [1, 1, 1, 1], 1, 1,
                              weight_signed=False)
        assert sip.max_update() == sip.output == 4
        assert sip.max_update(9) == 9
        assert sip.max_update(3) == 9
        assert sip.max_output == 9
