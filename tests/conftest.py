"""Shared fixtures for the test suite.

Networks and network-level simulation results are expensive enough (GoogLeNet
has 57 convolutions) that they are built once per session and shared.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import DPNN, DStripes, Stripes
from repro.core import Loom
from repro.nn import Network, build_network
from repro.nn.layers import Conv2D, FullyConnected, Pool2D, ReLU, TensorShape
from repro.quant import get_paper_profile
from repro.sim import run_network


@pytest.fixture(scope="session")
def alexnet_100() -> Network:
    """AlexNet with the 100% accuracy profile attached."""
    network = build_network("alexnet")
    network.attach_profile(get_paper_profile("alexnet", "100%"))
    return network


@pytest.fixture(scope="session")
def googlenet_100() -> Network:
    network = build_network("googlenet")
    network.attach_profile(get_paper_profile("googlenet", "100%"))
    return network


@pytest.fixture(scope="session")
def vgg19_100() -> Network:
    network = build_network("vgg19")
    network.attach_profile(get_paper_profile("vgg19", "100%"))
    return network


@pytest.fixture
def tiny_network() -> Network:
    """A small CNN that runs through the reference model in milliseconds."""
    net = Network("tiny", TensorShape(3, 16, 16))
    net.add(Conv2D(name="conv1", out_channels=8, kernel=3, padding=1))
    net.add(ReLU(name="relu1"))
    net.add(Pool2D(name="pool1", kernel=2, stride=2))
    net.add(Conv2D(name="conv2", out_channels=16, kernel=3, padding=1))
    net.add(ReLU(name="relu2"))
    net.add(Pool2D(name="pool2", kernel=2, stride=2))
    net.add(FullyConnected(name="fc1", out_features=10))
    return net


@pytest.fixture(scope="session")
def dpnn_default() -> DPNN:
    return DPNN()


@pytest.fixture(scope="session")
def loom_1b() -> Loom:
    return Loom(bits_per_cycle=1)


@pytest.fixture(scope="session")
def loom_2b() -> Loom:
    return Loom(bits_per_cycle=2)


@pytest.fixture(scope="session")
def loom_4b() -> Loom:
    return Loom(bits_per_cycle=4)


@pytest.fixture(scope="session")
def stripes_default() -> Stripes:
    return Stripes()


@pytest.fixture(scope="session")
def dstripes_default() -> DStripes:
    return DStripes()


@pytest.fixture(scope="session")
def alexnet_results(alexnet_100, dpnn_default, loom_1b, loom_2b, loom_4b,
                    stripes_default, dstripes_default):
    """Simulation results of every design on AlexNet (100% profile)."""
    return {
        "dpnn": run_network(dpnn_default, alexnet_100),
        "loom-1b": run_network(loom_1b, alexnet_100),
        "loom-2b": run_network(loom_2b, alexnet_100),
        "loom-4b": run_network(loom_4b, alexnet_100),
        "stripes": run_network(stripes_default, alexnet_100),
        "dstripes": run_network(dstripes_default, alexnet_100),
    }


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
