"""Tests for the event-driven tile simulator (repro.core.tile).

The event-driven model and the analytical schedules must agree on the cycle
counts: that cross-check is what the paper's custom cycle-accurate simulator
provided, and it is asserted here on small layers where event-by-event
simulation is cheap.
"""

import pytest

from repro.core.scheduler import LoomGeometry, schedule_conv_layer, schedule_fc_layer
from repro.core.tile import LoomTileSimulator
from repro.nn.layers import Conv2D, FullyConnected, TensorShape
from repro.nn.network import LayerWithPrecision
from repro.quant.precision import LayerPrecision


def small_conv(act_bits=3, weight_bits=4, out_channels=32, spatial=6):
    layer = Conv2D(name="conv", out_channels=out_channels, kernel=3, padding=1)
    in_shape = TensorShape(16, spatial, spatial)
    return LayerWithPrecision(
        layer=layer, input_shape=in_shape,
        output_shape=layer.output_shape(in_shape),
        precision=LayerPrecision(activation_bits=act_bits, weight_bits=weight_bits),
    )


def small_fc(out_features=64, in_features=96, weight_bits=5):
    layer = FullyConnected(name="fc", out_features=out_features)
    in_shape = TensorShape(in_features)
    return LayerWithPrecision(
        layer=layer, input_shape=in_shape,
        output_shape=layer.output_shape(in_shape),
        precision=LayerPrecision(activation_bits=16, weight_bits=weight_bits),
    )


# A small grid keeps the event counts manageable while exercising the same
# scheduling structure as the full 128x16 configuration.
SMALL_GEOMETRY = LoomGeometry(equivalent_macs=16, bits_per_cycle=1)


class TestConvTileSimulation:
    @pytest.mark.parametrize("act_bits,weight_bits", [(1, 1), (3, 4), (5, 2)])
    def test_matches_analytical_cycles(self, act_bits, weight_bits):
        schedule = schedule_conv_layer(small_conv(act_bits, weight_bits),
                                       SMALL_GEOMETRY)
        sim = LoomTileSimulator().run_conv(schedule)
        assert sim.cycles == pytest.approx(schedule.total_cycles)

    def test_weight_plane_loads_counted(self):
        schedule = schedule_conv_layer(small_conv(2, 3), SMALL_GEOMETRY)
        sim = LoomTileSimulator().run_conv(schedule)
        assert sim.weight_plane_loads == schedule.passes * 3
        assert sim.compute_steps == schedule.passes * 3 * 2

    def test_fractional_precision_rejected(self):
        schedule = schedule_conv_layer(small_conv(), SMALL_GEOMETRY,
                                       activation_serial_bits=2.5)
        with pytest.raises(ValueError):
            LoomTileSimulator().run_conv(schedule)

    def test_multibit_variant(self):
        geometry = LoomGeometry(equivalent_macs=16, bits_per_cycle=2)
        schedule = schedule_conv_layer(small_conv(act_bits=6, weight_bits=3),
                                       geometry)
        sim = LoomTileSimulator().run_conv(schedule)
        assert sim.cycles == pytest.approx(schedule.total_cycles)


class TestFCTileSimulation:
    @pytest.mark.parametrize("weight_bits", [2, 5, 9])
    def test_matches_analytical_cycles(self, weight_bits):
        schedule = schedule_fc_layer(small_fc(weight_bits=weight_bits),
                                     SMALL_GEOMETRY)
        sim = LoomTileSimulator().run_fc(schedule)
        assert sim.cycles == pytest.approx(schedule.total_cycles)

    def test_cascaded_fc_matches_analytical(self):
        # 64 outputs on a 256-SIP grid -> cascading kicks in.
        schedule = schedule_fc_layer(small_fc(out_features=64, in_features=128),
                                     SMALL_GEOMETRY)
        assert schedule.cascade_slices > 1
        sim = LoomTileSimulator().run_fc(schedule)
        assert sim.cycles == pytest.approx(schedule.total_cycles)

    def test_stagger_appears_in_event_simulation(self):
        schedule = schedule_fc_layer(small_fc(out_features=1024, in_features=64,
                                              weight_bits=3), SMALL_GEOMETRY)
        sim = LoomTileSimulator().run_fc(schedule)
        # The last column finishes window_columns - 1 cycles after the first.
        assert sim.cycles >= (schedule.output_chunks * schedule.term_chunks
                              * schedule.cycles_per_chunk)

    def test_weight_bus_single_load_per_cycle(self):
        schedule = schedule_fc_layer(small_fc(weight_bits=4), SMALL_GEOMETRY)
        sim = LoomTileSimulator().run_fc(schedule)
        # Total loads = columns x chunks x weight bits; the bus issues at most
        # one per cycle, so the simulated time is at least the load count
        # divided across the columns.
        assert sim.weight_plane_loads >= schedule.term_chunks * 4
        assert sim.cycles >= sim.weight_plane_loads / SMALL_GEOMETRY.window_columns

    def test_fractional_precision_rejected(self):
        schedule = schedule_fc_layer(small_fc(), SMALL_GEOMETRY,
                                     weight_serial_bits=4.5)
        with pytest.raises(ValueError):
            LoomTileSimulator().run_fc(schedule)
