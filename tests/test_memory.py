"""Tests for the memory-system substrate (SRAM, eDRAM, DRAM, layouts, hierarchy)."""

import numpy as np
import pytest

from repro.memory.dram import DRAMChannel, LPDDR4_4267
from repro.memory.edram import EDRAMMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layout import (
    BitInterleavedLayout,
    BitParallelLayout,
    Transposer,
    footprint_bits,
)
from repro.memory.sram import SRAMBuffer


class TestSRAMBuffer:
    def test_basic_properties(self):
        buf = SRAMBuffer("ABin", capacity_bytes=8 * 1024, width_bits=256)
        assert buf.capacity_bits == 8 * 1024 * 8
        assert buf.rows == buf.capacity_bits // 256
        assert buf.area_mm2 > 0
        assert buf.leakage_mw > 0

    def test_energy_scales_with_bits(self):
        buf = SRAMBuffer("b", 4096, 256)
        assert buf.read_energy_pj(512) == pytest.approx(2 * buf.read_energy_pj(256))
        assert buf.write_energy_pj() > buf.read_energy_pj()

    def test_energy_grows_with_capacity(self):
        small = SRAMBuffer("s", 2048, 256)
        large = SRAMBuffer("l", 64 * 1024, 256)
        assert large.read_energy_pj() > small.read_energy_pj()

    def test_accesses_for_bits(self):
        buf = SRAMBuffer("b", 4096, 256)
        assert buf.accesses_for_bits(0) == 0
        assert buf.accesses_for_bits(1) == 1
        assert buf.accesses_for_bits(257) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMBuffer("b", 0, 256)
        with pytest.raises(ValueError):
            SRAMBuffer("b", 256, 0)
        with pytest.raises(ValueError):
            SRAMBuffer("b", 256, 8).read_energy_pj(-1)


class TestEDRAMMemory:
    def test_capacity_accessors(self):
        mem = EDRAMMemory("AM", 2 * 1024 * 1024, width_bits=256)
        assert mem.capacity_mb == pytest.approx(2.0)
        assert mem.fits(2 * 1024 * 1024 * 8)
        assert not mem.fits(2 * 1024 * 1024 * 8 + 1)

    def test_energy_and_area_scale(self):
        small = EDRAMMemory("m", 1024 * 1024, 256)
        large = EDRAMMemory("m", 8 * 1024 * 1024, 256)
        assert large.area_mm2 > small.area_mm2
        assert large.refresh_power_mw > small.refresh_power_mw
        assert large.access_energy_pj(256) >= small.access_energy_pj(256)

    def test_accesses_for_bits(self):
        mem = EDRAMMemory("m", 1024, 128)
        assert mem.accesses_for_bits(129) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            EDRAMMemory("m", 0, 256)
        with pytest.raises(ValueError):
            EDRAMMemory("m", 1024, 256).access_energy_pj(-5)


class TestDRAMChannel:
    def test_lpddr4_bandwidth(self):
        # 4267 MT/s x 32 bits = ~17 GB/s peak.
        assert LPDDR4_4267.peak_bandwidth_gb_per_s == pytest.approx(17.07, rel=0.01)
        assert LPDDR4_4267.sustained_bandwidth_gbps < LPDDR4_4267.peak_bandwidth_gbps

    def test_transfer_cycles_at_1ghz(self):
        channel = DRAMChannel("test", transfer_rate_mts=1000, interface_bits=16,
                              efficiency=1.0)
        # 16 Gb/s at 1 GHz -> 16 bits per cycle.
        assert channel.bits_per_cycle(1.0) == pytest.approx(16.0)
        assert channel.transfer_cycles(160, 1.0) == pytest.approx(10.0)

    def test_transfer_energy(self):
        assert LPDDR4_4267.transfer_energy_pj(100) == pytest.approx(
            100 * LPDDR4_4267.energy_pj_per_bit)

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMChannel("bad", transfer_rate_mts=0)
        with pytest.raises(ValueError):
            DRAMChannel("bad", transfer_rate_mts=100, efficiency=0.0)
        with pytest.raises(ValueError):
            LPDDR4_4267.transfer_cycles(-1)
        with pytest.raises(ValueError):
            LPDDR4_4267.bits_per_cycle(0)


class TestLayouts:
    def test_footprint_bits_parallel_ignores_precision(self):
        assert footprint_bits(100, 5, bit_interleaved=False) == 1600
        assert footprint_bits(100, 16, bit_interleaved=False) == 1600

    def test_footprint_bits_interleaved_scales(self):
        assert footprint_bits(100, 5, bit_interleaved=True) == 500
        assert footprint_bits(100, 16, bit_interleaved=True) == 1600

    def test_footprint_validation(self):
        with pytest.raises(ValueError):
            footprint_bits(-1, 5, True)
        with pytest.raises(ValueError):
            footprint_bits(10, 0, True)
        with pytest.raises(ValueError):
            footprint_bits(10, 17, True)

    def test_reduction_vs_parallel(self):
        layout = BitInterleavedLayout()
        assert layout.reduction_vs_parallel(10) == pytest.approx(6 / 16)
        assert layout.reduction_vs_parallel(16) == 0.0

    def test_rows_accounting(self):
        parallel = BitParallelLayout()
        interleaved = BitInterleavedLayout(group_size=256)
        assert parallel.rows(256, 10, row_bits=256) == 16  # 256*16/256
        # 256 values, 10 planes, one row of 256 bits per plane.
        assert interleaved.rows(256, 10, row_bits=256) == 10

    def test_interleaved_pack_roundtrip(self):
        layout = BitInterleavedLayout()
        codes = np.arange(-50, 50)
        rows = layout.pack(codes, precision_bits=8, row_bits=32)
        assert np.array_equal(layout.unpack(rows, 8, 100), codes)

    def test_transposer(self):
        transposer = Transposer(width=16)
        assert transposer.cycles(0) == 0
        assert transposer.cycles(17) == 2
        assert transposer.energy_pj(10) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            transposer.cycles(-1)


class TestMemoryHierarchy:
    def make_hierarchy(self, interleaved=True, dram=None, am_bytes=1024 * 1024):
        layout = BitInterleavedLayout() if interleaved else BitParallelLayout()
        return MemoryHierarchy(
            activation_memory=EDRAMMemory("AM", am_bytes, 256),
            weight_memory=EDRAMMemory("WM", 2 * 1024 * 1024, 2048),
            abin=SRAMBuffer("ABin", 8192, 256),
            about=SRAMBuffer("ABout", 8192, 256),
            activation_layout=layout,
            weight_layout=layout,
            dram=dram,
            transposer=Transposer() if interleaved else None,
        )

    def test_traffic_precision_scaling(self):
        hierarchy = self.make_hierarchy(interleaved=True)
        traffic = hierarchy.layer_traffic(
            weight_count=1000, input_activations=500, output_activations=200,
            weight_bits=10, activation_bits=8, is_fc=False,
        )
        assert traffic.weight_bits == 10000
        assert traffic.activation_in_bits == 4000
        assert traffic.activation_out_bits == 1600

    def test_parallel_layout_ignores_precision(self):
        hierarchy = self.make_hierarchy(interleaved=False)
        traffic = hierarchy.layer_traffic(
            weight_count=1000, input_activations=500, output_activations=200,
            weight_bits=10, activation_bits=8, is_fc=False,
        )
        assert traffic.weight_bits == 16000
        assert traffic.activation_in_bits == 8000

    def test_activation_spill_detection(self):
        hierarchy = self.make_hierarchy(am_bytes=1024)  # 8 Kb AM
        traffic = hierarchy.layer_traffic(
            weight_count=10, input_activations=10_000, output_activations=10_000,
            weight_bits=8, activation_bits=8, is_fc=False,
        )
        assert not traffic.activations_fit_on_chip
        assert traffic.offchip_bits > traffic.weight_bits

    def test_fc_weights_marked_streaming(self):
        hierarchy = self.make_hierarchy()
        conv = hierarchy.layer_traffic(1000, 100, 100, 8, 8, is_fc=False)
        fc = hierarchy.layer_traffic(1000, 100, 100, 8, 8, is_fc=True)
        assert conv.weights_fit_on_chip
        assert not fc.weights_fit_on_chip

    def test_memory_cycles_zero_without_dram(self):
        hierarchy = self.make_hierarchy(dram=None)
        traffic = hierarchy.layer_traffic(1000, 100, 100, 8, 8, is_fc=True)
        assert hierarchy.memory_cycles(traffic) == 0.0

    def test_memory_cycles_with_dram(self):
        hierarchy = self.make_hierarchy(dram=LPDDR4_4267)
        traffic = hierarchy.layer_traffic(10_000_000, 100, 100, 16, 16, is_fc=True)
        cycles = hierarchy.memory_cycles(traffic)
        assert cycles == pytest.approx(
            LPDDR4_4267.transfer_cycles(traffic.offchip_bits, 1.0))
        assert cycles > 0

    def test_energy_positive_and_monotonic_in_traffic(self):
        hierarchy = self.make_hierarchy()
        small = hierarchy.layer_traffic(100, 100, 100, 8, 8, is_fc=False)
        large = hierarchy.layer_traffic(10_000, 10_000, 10_000, 8, 8, is_fc=False)
        assert 0 < hierarchy.memory_energy_pj(small) < hierarchy.memory_energy_pj(large)

    def test_offchip_energy_toggle(self):
        charged = self.make_hierarchy(dram=LPDDR4_4267)
        uncharged = MemoryHierarchy(
            activation_memory=charged.activation_memory,
            weight_memory=charged.weight_memory,
            abin=charged.abin, about=charged.about,
            activation_layout=charged.activation_layout,
            weight_layout=charged.weight_layout,
            dram=LPDDR4_4267, charge_offchip_energy=False,
        )
        traffic = charged.layer_traffic(100_000, 1000, 1000, 16, 16, is_fc=True)
        assert charged.memory_energy_pj(traffic) > uncharged.memory_energy_pj(traffic)

    def test_describe_mentions_capacities(self):
        text = self.make_hierarchy(dram=LPDDR4_4267).describe()
        assert "AM" in text and "WM" in text and "LPDDR4" in text

    def test_total_onchip_area(self):
        hierarchy = self.make_hierarchy()
        assert hierarchy.total_onchip_area_mm2 > 0
