"""Unit tests for the cluster's building blocks (no sockets, no servers).

Covers the consistent-hash ring (stable routing, minimal disruption on
exclusion), the token-bucket rate limiter (deterministic via an injected
clock), the Prometheus text renderer, the capped-exponential-backoff
helper the retry paths share, and the satellites that ride along with the
cluster PR: backoff-with-jitter in :class:`RemoteExecutor`, the store's
``busy_timeout`` / ``inspect()`` lock retries, and the executor's
pickle-fallback transport counter.
"""

import re
import sqlite3

import pytest

from repro.cluster import (
    ConsistentHashRing,
    MetricsRegistry,
    RateLimiter,
    TokenBucket,
)
from repro.serve import RemoteExecutor, SQLiteResultStore, ServeError
from repro.serve.client import compute_backoff
from repro.sim.jobs import ExecutorStats, JobExecutor


class TestConsistentHashRing:
    def test_routing_is_deterministic_and_total(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(200)]
        owners = [ring.node_for(k) for k in keys]
        assert all(owner in ("a", "b", "c") for owner in owners)
        assert owners == [ring.node_for(k) for k in keys]  # stable

    def test_every_node_owns_some_keyspace(self):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=64)
        keys = [f"key-{i}" for i in range(600)]
        assignment = ring.assign(keys)
        assert set(assignment) == {"a", "b", "c"}
        assert sum(len(v) for v in assignment.values()) == len(keys)
        # Virtual nodes keep the split from degenerating.
        assert all(len(v) > len(keys) // 10 for v in assignment.values())

    def test_exclusion_moves_only_the_dead_nodes_keys(self):
        # The failover property: routing around a dead shard must not
        # reshuffle keys owned by the survivors.
        ring = ConsistentHashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.node_for(k) for k in keys}
        after = {k: ring.node_for(k, exclude={"b"}) for k in keys}
        for key in keys:
            if before[key] != "b":
                assert after[key] == before[key]
            else:
                assert after[key] in ("a", "c")

    def test_no_eligible_node_returns_none(self):
        ring = ConsistentHashRing(["a", "b"])
        assert ring.node_for("k", exclude={"a", "b"}) is None
        assert ConsistentHashRing([]).node_for("k") is None

    def test_add_remove_membership(self):
        ring = ConsistentHashRing(["a"])
        ring.add("b")
        ring.add("b")  # idempotent
        assert len(ring) == 2 and "b" in ring
        ring.remove("a")
        assert ring.node_for("anything") == "b"
        ring.remove("a")  # idempotent


class TestRateLimiter:
    def test_burst_then_refusal_with_retry_hint(self):
        clock = [0.0]
        limiter = RateLimiter(rate=2.0, burst=3, clock=lambda: clock[0])
        assert all(limiter.check("c").allowed for _ in range(3))
        refused = limiter.check("c")
        assert not refused.allowed
        assert refused.reason == "rate"
        assert refused.retry_after_s == pytest.approx(0.5)
        # After the hinted wait the bucket holds a token again.
        clock[0] += refused.retry_after_s
        assert limiter.check("c").allowed

    def test_clients_are_independent(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: clock[0])
        assert limiter.check("one").allowed
        assert not limiter.check("one").allowed
        assert limiter.check("two").allowed
        assert limiter.refused == 1

    def test_quota_refusal_says_waiting_is_futile(self):
        limiter = RateLimiter(rate=1000.0, burst=1000, quota=2)
        assert limiter.check("c").allowed
        assert limiter.check("c").allowed
        refused = limiter.check("c")
        assert not refused.allowed
        assert refused.reason == "quota"
        assert refused.retry_after_s is None

    def test_stats_dict(self):
        limiter = RateLimiter(rate=1000.0, burst=10, quota=5)
        limiter.check("a")
        limiter.check("b")
        stats = limiter.stats_dict()
        assert stats["clients"] == 2
        assert stats["admitted"] == 2
        assert stats["refused"] == 0

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)
        with pytest.raises(ValueError):
            RateLimiter(quota=0)

    def test_rate_and_burst_are_validated_eagerly(self):
        # Regression: a bad rate/burst used to pass __init__ and only
        # explode at the first client's request, when the lazy per-client
        # TokenBucket was built deep inside the request path.
        with pytest.raises(ValueError, match="rate"):
            RateLimiter(rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            RateLimiter(rate=-5.0)
        with pytest.raises(ValueError, match="burst"):
            RateLimiter(rate=1.0, burst=0)


class TestMetrics:
    def test_counter_renders_labelled_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "Requests.",
                                   labelnames=("path", "status"))
        counter.inc(path="/jobs", status="200")
        counter.inc(2, path="/jobs", status="200")
        counter.inc(path="/stats", status="200")
        text = registry.render()
        assert '# TYPE reqs_total counter' in text
        assert 'reqs_total{path="/jobs",status="200"} 3' in text
        assert 'reqs_total{path="/stats",status="200"} 1' in text
        assert counter.value(path="/jobs", status="200") == 3

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c_total", "C.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_callback_gauge_pulls_at_render(self):
        registry = MetricsRegistry()
        value = [7]
        registry.gauge("depth", "Queue depth.", collect=lambda: value[0])
        assert "depth 7" in registry.render()
        value[0] = 3
        assert "depth 3" in registry.render()

    def test_raising_callback_does_not_kill_the_scrape(self):
        registry = MetricsRegistry()
        registry.gauge("broken", "Boom.",
                       collect=lambda: (_ for _ in ()).throw(RuntimeError))
        registry.counter("fine_total", "Fine.").inc()
        text = registry.render()
        assert "broken NaN" in text
        assert "fine_total 1" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "Latency.",
                                       buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_duplicate_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "One.")
        with pytest.raises(ValueError):
            registry.gauge("dup_total", "Two.")

    def test_render_is_sorted_and_newline_terminated(self):
        registry = MetricsRegistry()
        registry.counter("zz_total", "Last.")
        registry.counter("aa_total", "First.")
        text = registry.render()
        assert text.endswith("\n")
        assert text.index("aa_total") < text.index("zz_total")


class _FixedRandom:
    """random.Random stand-in returning a fixed uniform sample."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


class TestComputeBackoff:
    def test_exponential_growth_capped(self):
        rng = _FixedRandom(1.0)  # jitter factor 1.0: the raw schedule
        delays = [compute_backoff(a, base_s=0.05, cap_s=5.0, rng=rng)
                  for a in range(10)]
        assert delays[:4] == pytest.approx([0.05, 0.1, 0.2, 0.4])
        assert delays[-1] == pytest.approx(5.0)  # capped
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    def test_jitter_spans_half_to_full(self):
        low = compute_backoff(3, rng=_FixedRandom(0.0))
        high = compute_backoff(3, rng=_FixedRandom(1.0))
        assert low == pytest.approx(high / 2)
        for _ in range(50):
            delay = compute_backoff(3)
            assert low <= delay <= high

    def test_retry_after_is_a_floor_not_a_ceiling(self):
        # Early attempts obey the server's hint...
        assert compute_backoff(0, retry_after_s=2.0,
                               rng=_FixedRandom(1.0)) == pytest.approx(2.0)
        # ...but a longer computed backoff is not shortened by it.
        assert compute_backoff(9, retry_after_s=2.0, cap_s=5.0,
                               rng=_FixedRandom(1.0)) == pytest.approx(5.0)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            compute_backoff(-1)


class _Refusing:
    """ServeClient stand-in: refuses with ``status`` N times, then answers."""

    def __init__(self, refusals: int, retry_after_s=None) -> None:
        self.refusals = refusals
        self.retry_after_s = retry_after_s
        self.status = 429
        self.calls = 0

    def submit_points(self, chunk):
        self.calls += 1
        if self.calls <= self.refusals:
            raise ServeError(self.status, "refused",
                             retry_after_s=self.retry_after_s)
        return []


class TestRemoteExecutorBackoff:
    """Pins the satellite: capped exponential backoff + jitter, honouring
    Retry-After, instead of the old fixed ``sleep(retry_after or 1)``."""

    def test_backoff_schedule_is_exponential(self):
        client = _Refusing(4, retry_after_s=None)
        executor = RemoteExecutor(client)
        executor._rng = _FixedRandom(1.0)
        sleeps = []
        executor._sleep = sleeps.append
        assert executor._submit_with_retry([{"network": "alexnet"}]) == []
        assert executor.backpressure_retries == 4
        assert sleeps == pytest.approx([0.05, 0.1, 0.2, 0.4])

    def test_retry_after_floors_every_delay(self):
        client = _Refusing(3, retry_after_s=1)
        executor = RemoteExecutor(client)
        executor._rng = _FixedRandom(0.0)
        sleeps = []
        executor._sleep = sleeps.append
        executor._submit_with_retry([{"network": "alexnet"}])
        assert all(delay >= 1.0 for delay in sleeps)

    def test_gives_up_after_max_retries(self):
        client = _Refusing(100)
        executor = RemoteExecutor(client, max_retries=2)
        executor._sleep = lambda _ : None
        with pytest.raises(ServeError):
            executor._submit_with_retry([{"network": "alexnet"}])
        assert client.calls == 3

    def test_transport_503_is_retried_with_backoff(self):
        # Regression: a connection-level failure (now surfaced as
        # ServeError 503 by the client) used to escape the retry loop raw,
        # so a shard restart failed the whole sweep instead of backing off.
        client = _Refusing(2)
        client.status = 503
        executor = RemoteExecutor(client)
        sleeps = []
        executor._sleep = sleeps.append
        assert executor._submit_with_retry([{"network": "alexnet"}]) == []
        assert executor.transport_retries == 2
        assert executor.backpressure_retries == 0
        assert len(sleeps) == 2

    def test_non_retryable_statuses_still_raise_immediately(self):
        client = _Refusing(100)
        client.status = 400
        executor = RemoteExecutor(client)
        executor._sleep = lambda _: None
        with pytest.raises(ServeError):
            executor._submit_with_retry([{"network": "alexnet"}])
        assert client.calls == 1


class TestStoreContention:
    def test_busy_timeout_pragma_is_set(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "store.db", timeout_s=7.0)
        try:
            (timeout_ms,) = store._conn.execute(
                "PRAGMA busy_timeout").fetchone()
            assert timeout_ms == 7000
        finally:
            store.close()

    def test_inspect_retries_through_lock_contention(self, tmp_path,
                                                     monkeypatch):
        path = tmp_path / "store.db"
        SQLiteResultStore(path).close()
        real_connect = sqlite3.connect
        failures = [2]  # first two opens hit the writer lock

        def flaky_connect(*args, **kwargs):
            if failures[0] > 0:
                failures[0] -= 1
                raise sqlite3.OperationalError("database is locked")
            return real_connect(*args, **kwargs)

        monkeypatch.setattr(sqlite3, "connect", flaky_connect)
        payload = SQLiteResultStore.inspect(path, lock_retry_delay_s=0.0)
        assert payload["lock_retries"] == 2
        assert payload["compatible"] is True

    def test_inspect_surfaces_zero_retries_when_uncontended(self, tmp_path):
        path = tmp_path / "store.db"
        SQLiteResultStore(path).close()
        assert SQLiteResultStore.inspect(path)["lock_retries"] == 0

    def test_inspect_still_raises_on_persistent_lock(self, tmp_path,
                                                     monkeypatch):
        path = tmp_path / "store.db"
        SQLiteResultStore(path).close()

        def always_locked(*args, **kwargs):
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(sqlite3, "connect", always_locked)
        with pytest.raises(ValueError):
            SQLiteResultStore.inspect(path, lock_retries=2,
                                      lock_retry_delay_s=0.0)


class TestTransportCounters:
    def test_pickle_fallbacks_surface_in_stats(self, monkeypatch):
        executor = JobExecutor()
        import repro.sim.jobs.transport as transport
        outcomes = iter([True, False, False])
        monkeypatch.setattr(transport, "unpack_results",
                            lambda payload: ([], next(outcomes)))
        list(executor._unpack_payloads([object(), object(), object()]))
        assert executor.stats.shm_transports == 1
        assert executor.stats.pickle_transports == 2
        stats = executor.stats.to_dict()
        assert stats["shm_transports"] == 1
        assert stats["pickle_transports"] == 2

    def test_to_dict_reports_zero_by_default(self):
        stats = ExecutorStats().to_dict()
        assert stats["pickle_transports"] == 0


def test_metric_names_follow_prometheus_conventions():
    # Guard rail for the CONTRIBUTING recipe: all series names we emit are
    # valid Prometheus identifiers.
    from repro.cluster import ClusterWorker

    worker = ClusterWorker()
    pattern = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    for name in worker.metrics._instruments:
        assert pattern.match(name), name
    worker.core.close()
