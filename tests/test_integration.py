"""Cross-module integration tests: the paper's headline claims end to end."""

import pytest

from repro import (
    DPNN,
    DStripes,
    Loom,
    Stripes,
    AcceleratorConfig,
    build_network,
    compare,
    geomean,
    get_paper_profile,
    paper_networks,
    run_network,
)
from repro.core.scheduler import schedule_conv_layer, schedule_fc_layer
from repro.core.tile import LoomTileSimulator
from repro.quant.dynamic import DynamicPrecisionModel


@pytest.fixture(scope="module")
def all_network_results():
    """DPNN and Loom-1b results for every network (100% profiles)."""
    dpnn, loom = DPNN(), Loom()
    results = {}
    for name in paper_networks():
        network = build_network(name)
        network.attach_profile(get_paper_profile(name, "100%"))
        results[name] = {
            "dpnn": run_network(dpnn, network),
            "loom-1b": run_network(loom, network),
        }
    return results


class TestHeadlineClaims:
    def test_loom_faster_and_more_efficient_everywhere(self, all_network_results):
        for name, results in all_network_results.items():
            comp = compare(results["loom-1b"], results["dpnn"])
            assert comp.speedup > 1.5, name
            assert comp.energy_efficiency > 1.3, name

    def test_geomean_speedup_in_paper_range(self, all_network_results):
        speedups = [compare(r["loom-1b"], r["dpnn"]).speedup
                    for r in all_network_results.values()]
        efficiencies = [compare(r["loom-1b"], r["dpnn"]).energy_efficiency
                        for r in all_network_results.values()]
        # Paper: 3.19x speedup, 2.59x energy efficiency (all layers, 100%).
        assert geomean(speedups) == pytest.approx(3.19, rel=0.15)
        assert geomean(efficiencies) == pytest.approx(2.59, rel=0.15)

    def test_traffic_reduction_tracks_precision(self, all_network_results):
        # Loom moves (Pw/16, Pa/16) of DPNN's weight/activation bits.
        for name, results in all_network_results.items():
            loom_bits = sum(lr.total_traffic_bits
                            for lr in results["loom-1b"].layers)
            dpnn_bits = sum(lr.total_traffic_bits
                            for lr in results["dpnn"].layers)
            assert loom_bits < dpnn_bits * 0.85, name


class TestCycleModelConsistency:
    """The analytical Loom model and the event-driven tile simulator agree on
    real network layers (static precisions, scaled-down grid)."""

    def test_alexnet_conv_layers(self, alexnet_100):
        from repro.core.scheduler import LoomGeometry
        geometry = LoomGeometry(equivalent_macs=16)
        simulator = LoomTileSimulator()
        # Use the two smallest conv layers to keep event counts reasonable.
        layers = sorted(alexnet_100.conv_layers(), key=lambda lw: lw.macs)[:2]
        for lw in layers:
            schedule = schedule_conv_layer(lw, geometry)
            sim = simulator.run_conv(schedule)
            assert sim.cycles == pytest.approx(schedule.total_cycles)

    def test_alexnet_fc_layer(self, alexnet_100):
        from repro.core.scheduler import LoomGeometry
        geometry = LoomGeometry(equivalent_macs=16)
        fc8 = alexnet_100.fc_layers()[-1]
        schedule = schedule_fc_layer(fc8, geometry)
        sim = LoomTileSimulator().run_fc(schedule)
        assert sim.cycles == pytest.approx(schedule.total_cycles)


class TestAblation:
    def test_dynamic_precision_contribution(self, alexnet_100, dpnn_default):
        """Dynamic precision reduction is worth a measurable chunk of Loom's
        convolutional speedup (the Stripes -> DStripes gap of the paper)."""
        base = run_network(dpnn_default, alexnet_100)
        static = run_network(
            Loom(dynamic_precision=DynamicPrecisionModel(enabled=False)),
            alexnet_100)
        dynamic = run_network(Loom(), alexnet_100)
        static_speedup = compare(static, base, kind="conv").speedup
        dynamic_speedup = compare(dynamic, base, kind="conv").speedup
        assert dynamic_speedup > static_speedup * 1.1

    def test_bit_interleaved_storage_contribution(self, alexnet_100):
        """Storing data bit-interleaved is what shrinks traffic; Stripes only
        gets the activation share, Loom gets both."""
        stripes = run_network(Stripes(), alexnet_100)
        loom = run_network(Loom(), alexnet_100)
        assert sum(lr.weight_bits_read for lr in loom.layers) < \
            sum(lr.weight_bits_read for lr in stripes.layers)

    def test_cascading_contribution_on_googlenet(self, googlenet_100,
                                                 dpnn_default):
        base = run_network(dpnn_default, googlenet_100)
        with_cascade = run_network(Loom(use_cascading=True), googlenet_100)
        without = run_network(Loom(use_cascading=False), googlenet_100)
        assert compare(with_cascade, base, kind="fc").speedup > \
            1.8 * compare(without, base, kind="fc").speedup

    def test_window_fanout_tiling_at_512(self, googlenet_100):
        config = AcceleratorConfig(equivalent_macs=512)
        base = run_network(DPNN(config), googlenet_100)
        rigid = run_network(Loom(config), googlenet_100)
        fanned = run_network(Loom(config, window_fanout=4), googlenet_100)
        assert compare(fanned, base, kind="conv").speedup > \
            compare(rigid, base, kind="conv").speedup


class TestScalingStory:
    def test_dstripes_overtakes_loom_only_at_large_configs(self, vgg19_100,
                                                           googlenet_100):
        """The Figure 5 crossover: at 128 Loom-conv wins, at 512 DStripes is
        at least on par (geomean over two representative networks)."""
        for macs, loom_should_win in ((128, True), (512, False)):
            config = AcceleratorConfig(equivalent_macs=macs)
            dpnn = DPNN(config)
            loom = Loom(config)
            dstripes = DStripes(config)
            loom_speedups, ds_speedups = [], []
            for network in (vgg19_100, googlenet_100):
                base = run_network(dpnn, network)
                loom_speedups.append(
                    compare(run_network(loom, network), base, kind="conv").speedup)
                ds_speedups.append(
                    compare(run_network(dstripes, network), base,
                            kind="conv").speedup)
            if loom_should_win:
                assert geomean(loom_speedups) > geomean(ds_speedups)
            else:
                assert geomean(loom_speedups) <= geomean(ds_speedups) * 1.1
