"""Tests for the reporting utilities (repro.sim.report)."""

import csv
import io

import pytest

from repro.accelerators import DPNN, AcceleratorConfig
from repro.memory.dram import LPDDR4_4267
from repro.sim import run_network
from repro.sim.report import (
    bottleneck_summary,
    comparison_table,
    layer_breakdown,
    markdown_table,
    to_csv,
)
from repro.sim.results import LayerResult, NetworkResult


class TestLayerBreakdown:
    def test_contains_all_layers_and_total(self, alexnet_results):
        text = layer_breakdown(alexnet_results["dpnn"])
        for lr in alexnet_results["dpnn"].layers:
            assert lr.layer_name in text
        assert "TOTAL" in text and "100.0%" in text

    def test_top_n_limits_rows(self, alexnet_results):
        text = layer_breakdown(alexnet_results["dpnn"], top=2)
        # header + 2 layers + total + title = 5 lines
        assert len(text.splitlines()) == 5

    def test_top_must_be_positive(self, alexnet_results):
        with pytest.raises(ValueError):
            layer_breakdown(alexnet_results["dpnn"], top=0)

    def test_layers_sorted_by_cycles(self, alexnet_results):
        text = layer_breakdown(alexnet_results["dpnn"], top=1)
        heaviest = max(alexnet_results["dpnn"].layers, key=lambda lr: lr.cycles)
        assert heaviest.layer_name in text


def _degenerate_result() -> NetworkResult:
    """A tiny synthetic result whose only layer took zero cycles."""
    result = NetworkResult(network="tiny", accelerator="DPNN")
    result.add(LayerResult(layer_name="conv0", layer_kind="conv", cycles=0.0))
    return result


class TestZeroCycleGuards:
    def test_layer_breakdown_prints_na_instead_of_raising(self):
        text = layer_breakdown(_degenerate_result())
        assert "n/a" in text and "TOTAL" in text
        assert "ZeroDivision" not in text

    def test_cli_summary_prints_na_for_zero_cycle_layers(self):
        from repro.cli import _summary

        class StubExecutor:
            def run(self, jobs):
                return [_degenerate_result(), _degenerate_result()]

        text = _summary("tiny", "100%", StubExecutor())
        assert "n/a" in text and "TOTAL" in text


class TestMarkdownTable:
    def test_shape_and_alignment(self):
        text = markdown_table(["name", "value"], [["a", 1], ["b", 2]])
        lines = text.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "| :--- | ---: |"
        assert lines[2] == "| a | 1 |"
        assert len(lines) == 4

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            markdown_table(["a", "b"], [["only-one"]])
        with pytest.raises(ValueError):
            markdown_table([], [])


class TestComparisonTable:
    def test_columns_for_each_kind(self, alexnet_results):
        text = comparison_table(
            alexnet_results["dpnn"],
            {"loom-1b": alexnet_results["loom-1b"],
             "stripes": alexnet_results["stripes"]},
        )
        assert "conv perf" in text and "fc perf" in text and "all perf" in text
        assert "loom-1b" in text and "stripes" in text

    def test_missing_kind_shows_na(self, googlenet_100, dpnn_default, loom_1b):
        # NiN-style check: build a conv-only selection by comparing only convs
        # of a network without FC results is covered elsewhere; here check the
        # n/a path via a zero-cycle kind by comparing a conv-only network.
        from repro.experiments.common import build_profiled_network
        nin = build_profiled_network("nin")
        base = run_network(dpnn_default, nin)
        design = run_network(loom_1b, nin)
        text = comparison_table(base, {"loom-1b": design})
        assert "n/a" in text

    def test_empty_designs_rejected(self, alexnet_results):
        with pytest.raises(ValueError):
            comparison_table(alexnet_results["dpnn"], {})


class TestBottleneckSummary:
    def test_unconstrained_bandwidth_all_compute_bound(self, alexnet_results):
        summary = bottleneck_summary(alexnet_results["dpnn"])
        assert summary.memory_bound_layers == 0
        assert summary.memory_bound_fraction == 0.0
        assert summary.compute_bound_layers == 8

    def test_with_dram_fc_layers_memory_bound(self, alexnet_100):
        dpnn = DPNN(AcceleratorConfig(dram=LPDDR4_4267))
        summary = bottleneck_summary(run_network(dpnn, alexnet_100))
        assert summary.memory_bound_layers >= 3  # the three FC layers
        assert 0.0 < summary.memory_bound_fraction < 1.0


class TestCSVExport:
    def test_round_trips_through_csv_reader(self, alexnet_results):
        text = to_csv([alexnet_results["dpnn"], alexnet_results["loom-1b"]])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 16  # 8 layers x 2 designs
        assert {row["accelerator"] for row in rows} == {"DPNN", "Loom-1b"}
        first = rows[0]
        assert float(first["cycles"]) > 0
        assert first["network"] == "alexnet"

    def test_empty_input_gives_header_only(self):
        text = to_csv([])
        assert text.strip().startswith("network,accelerator,layer")
        assert len(text.strip().splitlines()) == 1
