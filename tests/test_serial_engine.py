"""Tests for the functional bit-serial layer execution (repro.core.serial_engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serial_engine import bit_serial_conv2d, bit_serial_fc
from repro.nn.layers import Conv2D


def reference_conv(x, w, layer):
    """Integer reference convolution (grouped) used as ground truth."""
    channels = x.shape[0]
    in_per_group = channels // layer.groups
    out_per_group = layer.out_channels // layer.groups
    if layer.padding:
        x = np.pad(x, ((0, 0), (layer.padding, layer.padding),
                       (layer.padding, layer.padding)))
    out_h = (x.shape[1] - layer.kernel) // layer.stride + 1
    out_w = (x.shape[2] - layer.kernel) // layer.stride + 1
    out = np.zeros((layer.out_channels, out_h, out_w), dtype=np.int64)
    for oc in range(layer.out_channels):
        g = oc // out_per_group
        for i in range(out_h):
            for j in range(out_w):
                patch = x[g * in_per_group:(g + 1) * in_per_group,
                          i * layer.stride:i * layer.stride + layer.kernel,
                          j * layer.stride:j * layer.stride + layer.kernel]
                out[oc, i, j] = np.sum(patch * w[oc])
    return out


class TestBitSerialFC:
    def test_matches_matrix_vector_product(self, rng):
        acts = rng.integers(0, 2 ** 7, size=50)
        weights = rng.integers(-2 ** 6, 2 ** 6, size=(12, 50))
        result = bit_serial_fc(acts, weights, act_bits=7, weight_bits=7)
        assert np.array_equal(result.outputs, weights @ acts)

    def test_serial_steps_scale_with_precision(self, rng):
        acts = rng.integers(0, 4, size=32)
        weights = rng.integers(-2, 2, size=(4, 32))
        low = bit_serial_fc(acts, weights, act_bits=2, weight_bits=3)
        high = bit_serial_fc(acts, weights, act_bits=4, weight_bits=6)
        assert high.serial_steps == 4 * low.serial_steps

    def test_step_count_formula(self, rng):
        acts = rng.integers(0, 8, size=40)  # padded to 48 = 3 chunks of 16
        weights = rng.integers(-4, 4, size=(5, 40))
        result = bit_serial_fc(acts, weights, act_bits=3, weight_bits=4)
        assert result.serial_steps == 5 * 3 * 3 * 4  # outputs*chunks*Pa*Pw

    def test_signed_activations(self, rng):
        acts = rng.integers(-2 ** 5, 2 ** 5, size=20)
        weights = rng.integers(-2 ** 5, 2 ** 5, size=(3, 20))
        result = bit_serial_fc(acts, weights, act_bits=6, weight_bits=6,
                               act_signed=True)
        assert np.array_equal(result.outputs, weights @ acts)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bit_serial_fc(np.zeros((2, 2), dtype=np.int64),
                          np.zeros((2, 2), dtype=np.int64), 2, 2)
        with pytest.raises(ValueError):
            bit_serial_fc(np.zeros(3, dtype=np.int64),
                          np.zeros((2, 4), dtype=np.int64), 2, 2)

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, seed, act_bits, weight_bits):
        rng = np.random.default_rng(seed)
        in_features = int(rng.integers(1, 40))
        out_features = int(rng.integers(1, 6))
        acts = rng.integers(0, 1 << act_bits, size=in_features)
        weights = rng.integers(-(1 << (weight_bits - 1)), 1 << (weight_bits - 1),
                               size=(out_features, in_features))
        result = bit_serial_fc(acts, weights, act_bits, weight_bits)
        assert np.array_equal(result.outputs, weights @ acts)


class TestBitSerialConv:
    def test_matches_reference_simple(self, rng):
        layer = Conv2D(name="c", out_channels=3, kernel=3, padding=1)
        x = rng.integers(0, 2 ** 5, size=(2, 6, 6))
        w = rng.integers(-2 ** 4, 2 ** 4, size=(3, 2, 3, 3))
        result = bit_serial_conv2d(x, w, layer, act_bits=5, weight_bits=5)
        assert np.array_equal(result.outputs, reference_conv(x, w, layer))

    def test_strided_convolution(self, rng):
        layer = Conv2D(name="c", out_channels=2, kernel=3, stride=2)
        x = rng.integers(0, 2 ** 4, size=(3, 9, 9))
        w = rng.integers(-2 ** 3, 2 ** 3, size=(2, 3, 3, 3))
        result = bit_serial_conv2d(x, w, layer, act_bits=4, weight_bits=4)
        assert result.outputs.shape == (2, 4, 4)
        assert np.array_equal(result.outputs, reference_conv(x, w, layer))

    def test_grouped_convolution(self, rng):
        layer = Conv2D(name="c", out_channels=4, kernel=1, groups=2)
        x = rng.integers(0, 2 ** 4, size=(4, 3, 3))
        w = rng.integers(-2 ** 3, 2 ** 3, size=(4, 2, 1, 1))
        result = bit_serial_conv2d(x, w, layer, act_bits=4, weight_bits=4)
        assert np.array_equal(result.outputs, reference_conv(x, w, layer))

    def test_serial_steps_positive_and_scale(self, rng):
        layer = Conv2D(name="c", out_channels=1, kernel=2)
        x = rng.integers(0, 4, size=(1, 3, 3))
        w = rng.integers(-2, 2, size=(1, 1, 2, 2))
        low = bit_serial_conv2d(x, w, layer, act_bits=2, weight_bits=2)
        high = bit_serial_conv2d(x, w, layer, act_bits=4, weight_bits=4)
        assert high.serial_steps == 4 * low.serial_steps

    def test_validation(self):
        layer = Conv2D(name="c", out_channels=1, kernel=1)
        with pytest.raises(ValueError):
            bit_serial_conv2d(np.zeros((2, 2), dtype=np.int64),
                              np.zeros((1, 1, 1, 1), dtype=np.int64), layer, 2, 2)
