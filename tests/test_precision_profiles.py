"""Tests for the published precision profiles (Table 1 / Table 3 data)."""

import pytest

from repro.quant.precision import (
    BASELINE_PRECISION,
    LayerPrecision,
    NetworkPrecisionProfile,
    PAPER_EFFECTIVE_WEIGHT_PRECISIONS,
    PAPER_PROFILES_100,
    PAPER_PROFILES_99,
    get_paper_profile,
    paper_networks,
)


class TestLayerPrecision:
    def test_valid(self):
        lp = LayerPrecision(activation_bits=8, weight_bits=11)
        assert lp.effective_weight_bits is None

    def test_activation_bounds(self):
        with pytest.raises(ValueError):
            LayerPrecision(activation_bits=0, weight_bits=8)
        with pytest.raises(ValueError):
            LayerPrecision(activation_bits=17, weight_bits=8)

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            LayerPrecision(activation_bits=8, weight_bits=0)
        with pytest.raises(ValueError):
            LayerPrecision(activation_bits=8, weight_bits=32)

    def test_effective_bounds(self):
        with pytest.raises(ValueError):
            LayerPrecision(activation_bits=8, weight_bits=8,
                           effective_weight_bits=0.0)
        lp = LayerPrecision(activation_bits=8, weight_bits=8,
                            effective_weight_bits=7.5)
        assert lp.effective_weight_bits == 7.5


class TestPaperProfiles:
    def test_all_networks_present_in_both_tables(self):
        for name in paper_networks():
            assert name in PAPER_PROFILES_100
            assert name in PAPER_PROFILES_99
            assert name in PAPER_EFFECTIVE_WEIGHT_PRECISIONS

    def test_network_order(self):
        assert paper_networks() == ["nin", "alexnet", "googlenet", "vggs",
                                    "vggm", "vgg19"]

    @pytest.mark.parametrize("name,conv_count,fc_count", [
        ("nin", 12, 0),
        ("alexnet", 5, 3),
        ("googlenet", 11, 1),
        ("vggs", 5, 3),
        ("vggm", 5, 3),
        ("vgg19", 16, 3),
    ])
    def test_layer_counts(self, name, conv_count, fc_count):
        for table in (PAPER_PROFILES_100, PAPER_PROFILES_99):
            profile = table[name]
            assert profile.num_conv_layers == conv_count
            assert profile.num_fc_layers == fc_count

    def test_alexnet_100_values_match_table1(self):
        profile = PAPER_PROFILES_100["alexnet"]
        assert profile.conv_activation_bits() == [9, 8, 5, 5, 7]
        assert set(profile.conv_weight_bits()) == {11}
        assert profile.fc_weight_bits() == [10, 9, 9]

    def test_alexnet_99_values_match_table1(self):
        profile = PAPER_PROFILES_99["alexnet"]
        assert profile.conv_activation_bits() == [9, 7, 4, 5, 7]
        assert profile.fc_weight_bits() == [9, 8, 8]

    def test_vgg19_100_activations(self):
        acts = PAPER_PROFILES_100["vgg19"].conv_activation_bits()
        assert len(acts) == 16
        assert acts[0] == 12 and acts[-1] == 13

    def test_googlenet_fc_single_entry(self):
        assert PAPER_PROFILES_100["googlenet"].fc_weight_bits() == [7]

    def test_99_profile_never_needs_more_weight_bits_than_100(self):
        for name in paper_networks():
            w100 = max(PAPER_PROFILES_100[name].conv_weight_bits())
            w99 = max(PAPER_PROFILES_99[name].conv_weight_bits())
            assert w99 <= w100

    def test_all_precisions_within_baseline(self):
        for table in (PAPER_PROFILES_100, PAPER_PROFILES_99):
            for profile in table.values():
                for lp in profile.conv_layers + profile.fc_layers:
                    assert 1 <= lp.activation_bits <= BASELINE_PRECISION
                    assert 1 <= lp.weight_bits <= BASELINE_PRECISION

    def test_table3_lengths_match_conv_counts(self):
        for name in paper_networks():
            assert len(PAPER_EFFECTIVE_WEIGHT_PRECISIONS[name]) == \
                PAPER_PROFILES_100[name].num_conv_layers

    def test_table3_effective_below_profile(self):
        # Per-group effective precisions are never above the per-layer profile.
        for name in paper_networks():
            profile_bits = max(PAPER_PROFILES_100[name].conv_weight_bits())
            for eff in PAPER_EFFECTIVE_WEIGHT_PRECISIONS[name]:
                assert eff <= profile_bits


class TestGetPaperProfile:
    def test_lookup_case_insensitive(self):
        assert get_paper_profile("AlexNet").network == "alexnet"

    def test_accuracy_variants(self):
        assert get_paper_profile("nin", "100%").accuracy_target == "100%"
        assert get_paper_profile("nin", "99").accuracy_target == "99%"

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            get_paper_profile("resnet50")

    def test_unknown_accuracy_raises(self):
        with pytest.raises(ValueError):
            get_paper_profile("nin", "95%")

    def test_with_effective_weights(self):
        profile = get_paper_profile("alexnet", with_effective_weights=True)
        effs = [lp.effective_weight_bits for lp in profile.conv_layers]
        assert effs == pytest.approx([8.36, 7.62, 7.62, 7.44, 7.55])
        # FC layers keep profile-only precision.
        assert all(lp.effective_weight_bits is None for lp in profile.fc_layers)

    def test_without_effective_weights_is_none(self):
        profile = get_paper_profile("alexnet")
        assert all(lp.effective_weight_bits is None for lp in profile.conv_layers)


class TestNetworkPrecisionProfile:
    def test_with_effective_weights_length_mismatch(self):
        profile = get_paper_profile("alexnet")
        with pytest.raises(ValueError):
            profile.with_effective_weights([8.0, 7.0])

    def test_with_effective_weights_does_not_mutate_original(self):
        profile = get_paper_profile("alexnet")
        derived = profile.with_effective_weights([8, 7, 7, 7, 7])
        assert all(lp.effective_weight_bits is None for lp in profile.conv_layers)
        assert all(lp.effective_weight_bits is not None
                   for lp in derived.conv_layers)

    def test_accessor_lists(self):
        profile = NetworkPrecisionProfile(
            network="x", accuracy_target="100%",
            conv_layers=[LayerPrecision(8, 10), LayerPrecision(6, 10)],
            fc_layers=[LayerPrecision(16, 9)],
        )
        assert profile.conv_activation_bits() == [8, 6]
        assert profile.conv_weight_bits() == [10, 10]
        assert profile.fc_weight_bits() == [9]
