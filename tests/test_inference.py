"""Tests for the reference NumPy inference (repro.nn.inference)."""

import numpy as np
import pytest

from repro.nn.inference import ReferenceModel, choose_format, run_quantized, \
    run_reference
from repro.nn.layers import (
    Concat,
    Conv2D,
    LRN,
    Pool2D,
    ReLU,
    Softmax,
    TensorShape,
)
from repro.nn.network import Network


def brute_force_conv(x, w, b, stride, padding):
    """Naive convolution used as ground truth."""
    out_c, in_c, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    h = (x.shape[1] - k) // stride + 1
    wdt = (x.shape[2] - k) // stride + 1
    out = np.zeros((out_c, h, wdt))
    for oc in range(out_c):
        for i in range(h):
            for j in range(wdt):
                patch = x[:, i * stride:i * stride + k, j * stride:j * stride + k]
                out[oc, i, j] = np.sum(patch * w[oc]) + (b[oc] if b is not None else 0)
    return out


class TestConvolution:
    def test_matches_brute_force(self, rng):
        net = Network("c", TensorShape(3, 9, 9))
        net.add(Conv2D(name="conv", out_channels=4, kernel=3, stride=2, padding=1))
        model = ReferenceModel(net, rng=rng)
        x = rng.normal(size=(3, 9, 9))
        w = model.layer_weights("conv")
        b = model.layer_bias("conv")
        expected = brute_force_conv(x, w, b, stride=2, padding=1)
        assert np.allclose(model.forward(x), expected)

    def test_grouped_convolution_matches_blockwise(self, rng):
        net = Network("g", TensorShape(4, 6, 6))
        net.add(Conv2D(name="conv", out_channels=6, kernel=3, padding=1, groups=2,
                       bias=False))
        model = ReferenceModel(net, rng=rng)
        x = rng.normal(size=(4, 6, 6))
        w = model.layer_weights("conv")
        out = model.forward(x)
        # First half of the filters sees only the first half of the channels.
        expected_first = brute_force_conv(x[:2], w[:3], None, 1, 1)
        expected_second = brute_force_conv(x[2:], w[3:], None, 1, 1)
        assert np.allclose(out[:3], expected_first)
        assert np.allclose(out[3:], expected_second)

    def test_user_supplied_weights(self, rng):
        net = Network("c", TensorShape(1, 3, 3))
        net.add(Conv2D(name="conv", out_channels=1, kernel=3, bias=False))
        w = np.ones((1, 1, 3, 3))
        model = ReferenceModel(net, weights={"conv": (w, None)})
        x = np.arange(9, dtype=float).reshape(1, 3, 3)
        assert model.forward(x)[0, 0, 0] == pytest.approx(36.0)


class TestOtherLayers:
    def test_relu(self, rng):
        net = Network("r", TensorShape(2, 2, 2))
        net.add(ReLU(name="relu"))
        out = ReferenceModel(net, rng=rng).forward(
            np.array([[[-1.0, 2.0], [3.0, -4.0]], [[0.0, -1.0], [1.0, 5.0]]])
        )
        assert out.min() >= 0.0
        assert out[0, 0, 1] == 2.0

    def test_max_pool(self, rng):
        net = Network("p", TensorShape(1, 4, 4))
        net.add(Pool2D(name="pool", kernel=2, stride=2))
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = ReferenceModel(net, rng=rng).forward(x)
        assert out.shape == (1, 2, 2)
        assert out[0, 0, 0] == 5.0
        assert out[0, 1, 1] == 15.0

    def test_avg_and_global_pool(self, rng):
        net = Network("p", TensorShape(2, 4, 4))
        net.add(Pool2D(name="pool", mode="avg", global_pool=True))
        x = np.ones((2, 4, 4))
        out = ReferenceModel(net, rng=rng).forward(x)
        assert out.shape == (2, 1, 1)
        assert np.allclose(out, 1.0)

    def test_lrn_preserves_shape_and_reduces_magnitude(self, rng):
        net = Network("l", TensorShape(8, 3, 3))
        net.add(LRN(name="norm", alpha=1.0, beta=0.75, local_size=5, k=2.0))
        x = np.abs(rng.normal(size=(8, 3, 3))) + 1.0
        out = ReferenceModel(net, rng=rng).forward(x)
        assert out.shape == x.shape
        assert np.all(np.abs(out) < np.abs(x))

    def test_softmax_sums_to_one(self, rng):
        net = Network("s", TensorShape(10))
        net.add(Softmax(name="prob"))
        out = ReferenceModel(net, rng=rng).forward(rng.normal(size=10))
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)

    def test_concat_execution(self, rng):
        net = Network("cc", TensorShape(2, 4, 4))
        net.add(Conv2D(name="a", out_channels=3, kernel=1, bias=False),
                inputs=["__input__"])
        net.add(Conv2D(name="b", out_channels=5, kernel=1, bias=False),
                inputs=["__input__"])
        net.add(Concat(name="merge", out_channels=8), inputs=["a", "b"])
        out = ReferenceModel(net, rng=rng).forward(rng.normal(size=(2, 4, 4)))
        assert out.shape == (8, 4, 4)


class TestFullNetwork:
    def test_tiny_network_end_to_end(self, tiny_network, rng):
        out = run_reference(tiny_network, rng.normal(size=(3, 16, 16)), rng=rng)
        assert out.shape == (10,)

    def test_wrong_input_shape_raises(self, tiny_network, rng):
        model = ReferenceModel(tiny_network, rng=rng)
        with pytest.raises(ValueError):
            model.forward(np.zeros((3, 8, 8)))

    def test_quantized_forward_close_to_float(self, tiny_network, rng):
        x = rng.normal(size=(3, 16, 16))
        float_out = run_reference(tiny_network, x, rng=np.random.default_rng(7))
        precisions = {lw.name: (12, 12) for lw in tiny_network.compute_layers()}
        quant_out = run_quantized(tiny_network, x, precisions,
                                  rng=np.random.default_rng(7))
        assert np.argmax(quant_out) == np.argmax(float_out)

    def test_lower_precision_increases_error(self, tiny_network, rng):
        x = rng.normal(size=(3, 16, 16))
        model = ReferenceModel(tiny_network, rng=np.random.default_rng(7))
        reference = model.forward(x)
        names = [lw.name for lw in tiny_network.compute_layers()]
        high = model.forward(x, precisions={n: (14, 14) for n in names})
        low = model.forward(x, precisions={n: (3, 3) for n in names})
        assert np.max(np.abs(high - reference)) <= np.max(np.abs(low - reference))

    def test_capture_collects_compute_layer_inputs(self, tiny_network, rng):
        model = ReferenceModel(tiny_network, rng=rng)
        captured = {}
        model.forward(rng.normal(size=(3, 16, 16)), capture=captured)
        assert set(captured) == {"conv1", "conv2", "fc1"}
        assert captured["conv1"].shape == (3, 16, 16)
        assert captured["fc1"].ndim == 1


class TestChooseFormat:
    def test_unsigned_format_for_nonnegative(self):
        fmt = choose_format(np.array([0.0, 3.0]), bits=8, signed=False)
        assert not fmt.signed
        assert fmt.max_value >= 3.0

    def test_signed_range_covers_data(self):
        data = np.array([-7.3, 2.0])
        fmt = choose_format(data, bits=8, signed=True)
        assert fmt.min_value <= -7.3 <= fmt.max_value or fmt.min_value <= -7.3

    def test_zero_data(self):
        fmt = choose_format(np.zeros(4), bits=6, signed=False)
        assert fmt.total_bits == 6

    def test_signed_single_bit_upgraded(self):
        fmt = choose_format(np.array([-1.0, 1.0]), bits=1, signed=True)
        assert fmt.total_bits == 2
