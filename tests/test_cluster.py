"""Integration tests for the sharded serve cluster (repro.cluster).

The acceptance contract of the cluster ISSUE, verified over real HTTP
against in-process coordinator + worker nodes:

* a 2-worker cluster answers **bit-identically** (the validator's
  field-for-field comparator) to in-process batched execution for a
  networks x accelerators matrix;
* the cluster keeps serving -- with automatic re-routing -- when a worker
  is killed mid-batch, and the dead shard's keys land on the survivors;
* ``POST /jobs`` streams NDJSON entries in submission order as shards
  answer, and ``POST /explore`` streams SSE events while later strategy
  rounds are still simulating (first event long before the sweep ends);
* graceful coordinator shutdown terminates in-flight streams with a clean
  ``end {"complete": false, "reason": "shutdown"}`` event and leaves no
  worker thread pools or executors behind;
* every node's ``/metrics`` parses as Prometheus text exposition format;
* the coordinator's token-bucket rate limiting and quotas answer 429.
"""

import contextlib
import json
import re
import threading
import time
import urllib.request

import pytest

from repro.cluster import ClusterCoordinator, ClusterWorker, RateLimiter
from repro.serve import RemoteExecutor, ServeClient, ServeError
from repro.serve.core import ServiceCore
from repro.sim.jobs import JobExecutor, job_key
from repro.sim.validate import compare_layer_results

MATRIX = [{"network": network, "accelerator": accelerator}
          for network in ("alexnet", "nin")
          for accelerator in ("loom", "dpnn", "dstripes")]


@contextlib.contextmanager
def cluster(n=2, coordinator_kwargs=None, worker_kwargs=None):
    """A started coordinator + n workers + client, torn down afterwards."""
    workers = [ClusterWorker(**(worker_kwargs or {})) for _ in range(n)]
    for worker in workers:
        worker.start()
    coordinator = ClusterCoordinator(
        [worker.url for worker in workers],
        health_interval_s=60.0,  # request-path failover only: deterministic
        **(coordinator_kwargs or {}))
    coordinator.start()
    try:
        yield coordinator, workers, ServeClient(coordinator.url,
                                                timeout_s=120.0)
    finally:
        coordinator.stop()
        for worker in workers:
            worker.stop()


def _slow(worker, delay_s=0.2):
    """Delay a worker's executions so requests overlap deterministically."""
    original = worker.core.executor.run

    def run(jobs, **kwargs):
        time.sleep(delay_s)
        return original(jobs, **kwargs)

    worker.core.executor.run = run


def _point_routed_to(coordinator, worker):
    """A design point whose content key routes to ``worker``."""
    from repro.explore.space import canonical_point, point_to_job

    # equivalent_macs must be a positive multiple of 16; enough probes
    # that some key routes to each worker for any ephemeral-port ring.
    for macs in (None, 16, 32, 48, 64, 96, 128, 160, 192,
                 224, 256, 320, 384, 448, 512):
        point = {"network": "alexnet", "accelerator": "loom"}
        if macs is not None:
            point["equivalent_macs"] = macs
        key = job_key(point_to_job(canonical_point(point)))
        if coordinator.ring.node_for(key) == worker.url:
            return point
    raise AssertionError("no probe point routed to the target worker")


class TestBitIdentity:
    def test_two_worker_cluster_matches_batched_engine(self):
        # In-process reference: the batched engine through a JobExecutor.
        from repro.explore.space import canonical_point, point_to_job

        jobs = [point_to_job(canonical_point(p)) for p in MATRIX]
        with JobExecutor() as executor:
            reference = executor.run(jobs, engine="batched")
        with cluster(n=2) as (coordinator, workers, client):
            served = client.submit_points(MATRIX)
            for entry, expected in zip(served, reference):
                assert entry.result.network == expected.network
                assert entry.result.accelerator == expected.accelerator
                assert compare_layer_results(entry.result.layers,
                                             expected.layers) == []
            # Every point went through the ring exactly once.  (Whether the
            # six keys span both shards depends on the ephemeral worker
            # ports; spread itself is pinned in the ring unit tests.)
            assert sum(coordinator._routed_total.value(shard=url)
                       for url in coordinator.shards) == len(MATRIX)

    def test_resubmission_is_answered_from_shard_caches(self):
        with cluster(n=2) as (coordinator, workers, client):
            first = client.submit_points(MATRIX)
            assert {e.status for e in first} == {"executed"}
            again = client.submit_points(MATRIX)
            assert {e.status for e in again} == {"cached"}
            assert [e.key for e in again] == [e.key for e in first]

    def test_key_lookup_proxies_to_the_owning_shard(self):
        with cluster(n=2) as (coordinator, workers, client):
            submitted = client.submit(MATRIX[0])
            status, result = client.lookup(submitted.key)
            assert status == "done"
            assert compare_layer_results(result.layers,
                                         submitted.result.layers) == []
            assert client.lookup("no-such-key")[0] == "unknown"


class TestFailover:
    def test_worker_killed_mid_batch_reroutes_to_survivor(self):
        with cluster(n=2) as (coordinator, workers, client):
            victim = workers[0]
            _slow(victim, delay_s=0.5)
            # Kill the victim's HTTP front while the batch is in flight.
            killer = threading.Timer(0.15, victim._server.stop,
                                     kwargs={"drain_timeout_s": 0.0})
            killer.start()
            try:
                entries = client.submit_points(MATRIX)
            finally:
                killer.join()
            assert len(entries) == len(MATRIX)
            assert all(e.result.layers for e in entries)
            assert not coordinator.shards[victim.url].healthy
            assert coordinator.stats.shard_retries > 0
            # The survivors keep answering -- and keys still resolve.
            again = client.submit_points(MATRIX)
            assert [e.key for e in again] == [e.key for e in entries]

    def test_all_workers_dead_answers_503(self):
        with cluster(n=1) as (coordinator, workers, client):
            workers[0]._server.stop(drain_timeout_s=0.0)
            with pytest.raises(ServeError) as excinfo:
                client.submit(MATRIX[0])
            assert excinfo.value.status == 503

    def test_health_probe_recovers_a_marked_shard(self):
        with cluster(n=2) as (coordinator, workers, client):
            url = workers[0].url
            coordinator._mark_shard(url, False, "test")
            assert coordinator._shard_healthy.value(shard=url) == 0
            future = coordinator._server.run_coroutine(
                coordinator._probe_shard(url))
            assert future.result(timeout=10.0) is True
            assert coordinator.shards[url].healthy
            assert coordinator._shard_healthy.value(shard=url) == 1


class TestStreaming:
    def test_jobs_ndjson_streams_in_submission_order(self):
        with cluster(n=2) as (coordinator, workers, client):
            fast, slow = workers
            _slow(slow, delay_s=0.4)
            points = [_point_routed_to(coordinator, fast),
                      _point_routed_to(coordinator, slow)]
            stamps = []
            entries = client.submit_points_stream(
                points,
                on_entry=lambda i, job: stamps.append((i, time.monotonic())))
            assert [i for i, _ in stamps] == [0, 1]
            assert len(entries) == 2
            # The fast shard's entry was flushed while the slow shard was
            # still simulating: streaming, not buffer-then-dump.
            assert stamps[1][1] - stamps[0][1] > 0.2

    def test_explore_sse_streams_before_the_sweep_completes(self):
        with cluster(n=2) as (coordinator, workers, client):
            for worker in workers:
                _slow(worker, delay_s=0.1)
            space = {"axes": {"equivalent_macs": [32, 64, 128]},
                     "base": {"network": "alexnet", "accelerator": "loom"}}
            events = []
            stamps = {}
            for event, data in client.explore_stream(space,
                                                     strategy="coordinate"):
                events.append((event, data))
                stamps.setdefault(event, time.monotonic())
            names = [name for name, _ in events]
            assert names[0] == "start"
            assert names[-1] == "end"
            assert events[-1][1] == {"complete": True}
            assert "result" in names
            # The coordinate strategy runs multiple rounds; each round's
            # batch arrives as its own progress event, well before the end.
            assert names.count("progress") >= 2
            assert stamps["start"] < stamps["result"] - 0.15
            result = dict(events[names.index("result")][1])
            assert len(result["evaluated"]) >= 3

    def test_plain_explore_still_answers_one_json_document(self):
        with cluster(n=1) as (coordinator, workers, client):
            space = {"axes": {"equivalent_macs": [32, 64]},
                     "base": {"network": "alexnet", "accelerator": "loom"}}
            result = client.explore(space)
            assert len(result["evaluated"]) == 2
            assert coordinator.stats.explores == 1

    def test_explore_strategy_options_and_budget_over_the_wire(self):
        with cluster(n=1) as (coordinator, workers, client):
            space = {"axes": {"equivalent_macs": [32, 64, 128, 192]},
                     "base": {"network": "alexnet", "accelerator": "loom"}}
            result = client.explore(space, strategy="random",
                                    options={"samples": 3, "seed": 1},
                                    budget=2)
            assert result["strategy"] == "random"
            assert len(result["evaluated"]) == 2  # budget trims the 3 samples
            with pytest.raises(ServeError) as excinfo:
                client.explore(space, budget=0)
            assert excinfo.value.status == 400
            with pytest.raises(ServeError) as excinfo:
                client.explore(space, options={"bogus": 1})
            assert excinfo.value.status == 400

    def test_explore_stream_validates_before_streaming(self):
        with cluster(n=1) as (coordinator, workers, client):
            with pytest.raises(ServeError) as excinfo:
                list(client.explore_stream({"axes": {}}))
            assert excinfo.value.status == 400


class TestGracefulShutdown:
    def test_shutdown_mid_stream_sends_clean_terminal_event(self):
        workers = [ClusterWorker() for _ in range(2)]
        for worker in workers:
            worker.start()
            _slow(worker, delay_s=0.3)
        coordinator = ClusterCoordinator([w.url for w in workers],
                                         health_interval_s=60.0)
        coordinator.start()
        client = ServeClient(coordinator.url, timeout_s=60.0)
        space = {"axes": {"equivalent_macs": [32, 64, 128, 256]},
                 "base": {"network": "alexnet", "accelerator": "loom"}}
        events = []
        finished = threading.Event()

        def consume():
            for event, data in client.explore_stream(space,
                                                     strategy="coordinate"):
                events.append((event, data))
            finished.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        deadline = time.monotonic() + 10.0
        while not events and time.monotonic() < deadline:
            time.sleep(0.01)
        assert events, "stream never started"
        try:
            coordinator.stop()  # mid-sweep
            assert finished.wait(timeout=30.0), "stream never terminated"
            names = [name for name, _ in events]
            assert names[-1] == "end"
            end_payload = events[-1][1]
            if end_payload.get("complete"):
                # The sweep may win the race on a fast box; the contract
                # only requires a clean terminal event either way.
                assert end_payload == {"complete": True}
            else:
                assert end_payload["reason"] == "shutdown"
            # No explore threads left behind on the coordinator.
            assert not coordinator._explore_threads
            assert not coordinator._streams
        finally:
            for worker in workers:
                worker.stop()
        # Workers shut down cleanly afterwards: pools gone, cores closed.
        for worker in workers:
            assert worker._pool is None

    def test_worker_shutdown_endpoint_stops_the_worker(self):
        worker = ClusterWorker()
        worker.start()
        client = ServeClient(worker.url, timeout_s=30.0)
        assert client.shutdown() == {"ok": True, "stopping": True}
        worker.wait_until_stopped(poll_s=0.05)
        assert worker._pool is None


_SERIES = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|NaN|[+-]Inf)$")


def _assert_prometheus_text(text: str) -> None:
    """Validate Prometheus text exposition: HELP/TYPE then series lines."""
    assert text.endswith("\n")
    typed = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            name, kind = line.split(" ")[2:4]
            assert kind in ("counter", "gauge", "histogram")
            typed.add(name)
            continue
        match = _SERIES.match(line)
        assert match, f"unparseable series line: {line!r}"
        name = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, f"untyped series {name}"


class TestMetricsEndpoints:
    def test_every_node_serves_parseable_prometheus_text(self):
        with cluster(n=2) as (coordinator, workers, client):
            client.submit_points(MATRIX[:3])
            for url in [coordinator.url] + [w.url for w in workers]:
                with urllib.request.urlopen(url + "/metrics",
                                            timeout=30.0) as response:
                    assert "text/plain" in response.headers["Content-Type"]
                    _assert_prometheus_text(
                        response.read().decode("utf-8"))

    def test_coordinator_counts_requests_and_shard_health(self):
        with cluster(n=2) as (coordinator, workers, client):
            client.submit_points(MATRIX[:2])
            client.healthz()
            with urllib.request.urlopen(coordinator.url + "/metrics",
                                        timeout=30.0) as response:
                text = response.read().decode("utf-8")
            assert 'loom_coordinator_requests_total{path="/jobs",status="200"} 1' in text
            for worker in workers:
                assert (f'loom_coordinator_shard_healthy{{shard="{worker.url}"}} 1'
                        in text)
            assert "loom_coordinator_request_seconds_bucket" in text

    def test_worker_exposes_queue_depth_and_cache_ratio(self):
        with cluster(n=1) as (coordinator, workers, client):
            client.submit(MATRIX[0])
            client.submit(MATRIX[0])  # warm-store answer
            with urllib.request.urlopen(workers[0].url + "/metrics",
                                        timeout=30.0) as response:
                text = response.read().decode("utf-8")
            assert "loom_worker_queue_depth 0" in text
            assert "loom_worker_cache_hit_ratio 0.5" in text
            assert "loom_worker_jobs_executed_total 1" in text


class TestRateLimiting:
    def test_burst_exhaustion_answers_429_with_retry_after(self):
        limiter = RateLimiter(rate=0.001, burst=2)
        with cluster(n=1, coordinator_kwargs={"rate_limiter": limiter}) \
                as (coordinator, workers, client):
            client.submit(MATRIX[0])
            client.submit(MATRIX[0])
            with pytest.raises(ServeError) as excinfo:
                client.submit(MATRIX[0])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s >= 1
            assert coordinator.stats.rate_limited == 1
            # Health and metrics stay reachable for refused clients.
            assert client.healthz()["ok"] is True

    def test_quota_exhaustion_has_no_retry_hint(self):
        limiter = RateLimiter(rate=1000.0, burst=1000, quota=1)
        with cluster(n=1, coordinator_kwargs={"rate_limiter": limiter}) \
                as (coordinator, workers, client):
            client.submit(MATRIX[0])
            with pytest.raises(ServeError) as excinfo:
                client.submit(MATRIX[0])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s is None

    def test_rate_limiter_surfaces_in_stats(self):
        limiter = RateLimiter(rate=1000.0, burst=1000)
        with cluster(n=1, coordinator_kwargs={"rate_limiter": limiter}) \
                as (coordinator, workers, client):
            client.submit(MATRIX[0])
            stats = client.stats()
            assert stats["rate_limiter"]["admitted"] == 1
            assert stats["role"] == "coordinator"
            assert len(stats["workers"]) == 1


class TestRemoteSweep:
    def test_remote_executor_sweeps_through_the_cluster(self):
        from repro.explore import Axis, SweepSpec, explore

        space = SweepSpec(
            axes=[Axis("equivalent_macs", (32, 64)),
                  Axis("accelerator", ("loom", "dstripes"))],
            base={"network": "alexnet"},
        )
        with cluster(n=2) as (coordinator, workers, client):
            result = explore(space,
                             executor=RemoteExecutor(client, stream=True))
            assert len(result.evaluated) == 4
            # Reference run, in process, must agree on every metric of
            # every point (the metrics are pure functions of the layer
            # results, which the submit-path tests pin bit-identical).
            with JobExecutor() as executor:
                local = explore(space, executor=executor, engine="batched")
            for remote_point, local_point in zip(result.evaluated,
                                                 local.evaluated):
                assert remote_point.point == local_point.point
                assert remote_point.metrics == local_point.metrics

    def test_shared_nothing_stores_stay_per_shard(self, tmp_path):
        from repro.serve import SQLiteResultStore
        from repro.sim.jobs import ResultCache

        def store_backed(index):
            store = SQLiteResultStore(tmp_path / f"worker-{index}.db")
            executor = JobExecutor(cache=ResultCache(backend=store,
                                                     max_memory_entries=32))
            return ClusterWorker(core=ServiceCore(executor=executor))

        workers = [store_backed(0), store_backed(1)]
        for worker in workers:
            worker.start()
        # peer_cache=False keeps the cluster shared-nothing: no ring push,
        # no write-through replication between the worker stores.
        coordinator = ClusterCoordinator([w.url for w in workers],
                                         health_interval_s=60.0,
                                         peer_cache=False)
        coordinator.start()
        try:
            client = ServeClient(coordinator.url, timeout_s=120.0)
            client.submit_points(MATRIX)
            total = sum(
                SQLiteResultStore.inspect(tmp_path / f"worker-{i}.db"
                                          )["entries"]
                for i in range(2))
            assert total == len(MATRIX)  # disjoint: no key stored twice
        finally:
            coordinator.stop()
            for worker in workers:
                worker.stop()


class TestWireCompat:
    def test_single_point_submit_matches_serve_wire_format(self):
        with cluster(n=1) as (coordinator, workers, client):
            request = urllib.request.Request(
                coordinator.url + "/jobs",
                data=json.dumps(MATRIX[0]).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST")
            with urllib.request.urlopen(request, timeout=60.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert set(payload) == {"key", "status", "result"}

    def test_bad_point_answers_400_with_message(self):
        with cluster(n=1) as (coordinator, workers, client):
            with pytest.raises(ServeError) as excinfo:
                client.submit({"network": "no-such-net",
                               "accelerator": "loom"})
            assert excinfo.value.status == 400

    def test_unknown_path_is_404(self):
        with cluster(n=1) as (coordinator, workers, client):
            with pytest.raises(ServeError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404


class TestClusterObservability:
    """The cluster half of the repro.obs contract: one sweep -> one
    connected trace across coordinator, workers and executors."""

    def test_remote_sweep_yields_one_connected_trace(self):
        from repro.explore.space import canonical_point, point_to_job
        from repro.obs import Span, chrome_trace, get_tracer

        tracer = get_tracer()
        jobs = [point_to_job(canonical_point(point)) for point in MATRIX]
        with cluster(n=2) as (coordinator, workers, client):
            with RemoteExecutor(client, batch_size=2) as remote:
                with tracer.span("test.sweep") as root:
                    remote.run(jobs)
                    trace_id = root.trace_id
            # Handler spans record a beat after each response flushes.
            names = set()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                payload = client.trace()
                spans = [span for span in payload["spans"]
                         if span["trace_id"] == trace_id]
                names = {span["name"] for span in spans}
                if any(name.startswith("coordinator.POST") for name in names):
                    break
                time.sleep(0.05)
        # One trace id covers every tier of the sweep.
        assert any(name.startswith("coordinator.POST /jobs")
                   for name in names)
        assert any(name.startswith("worker.POST /jobs") for name in names)
        assert "executor.run" in names
        assert "executor.simulate" in names
        # Every span links to a parent inside the same trace (the root and
        # client-side spans live in this process's recorder, not the wire
        # payload -- resolve parents against the union).
        local = {span.span_id: span for span in tracer.recorder.spans()
                 if span.trace_id == trace_id}
        wire = {span["span_id"]: span for span in spans}
        for span in spans:
            parent = span["parent_id"]
            assert parent is None or parent in wire or parent in local
        # And the merged set exports as valid Chrome trace-event JSON.
        merged = [Span.from_dict(entry) for entry in spans]
        merged.extend(local.values())
        document = json.loads(json.dumps(chrome_trace(merged)))
        assert len([event for event in document["traceEvents"]
                    if event.get("ph") == "X"]) == len(merged)

    def test_coordinator_trace_merges_worker_spans(self):
        with cluster(n=2) as (coordinator, workers, client):
            client.submit(MATRIX[0])
            deadline = time.time() + 5.0
            services = set()
            while time.time() < deadline:
                payload = client.trace()
                services = {span["service"] for span in payload["spans"]}
                if len(services) > 1:
                    break
                time.sleep(0.05)
        # In-process workers share the default tracer, so the aggregation
        # is visible through span names instead of service names here;
        # what must hold is that worker-recorded spans ride the payload.
        names = {span["name"] for span in payload["spans"]}
        assert any(name.startswith("worker.") for name in names)

    def test_coordinator_metrics_include_request_series(self):
        with cluster(n=1) as (coordinator, workers, client):
            client.submit(MATRIX[0])
            needle = 'loom_coordinator_requests_total{path="/jobs",status="200"}'
            deadline = time.monotonic() + 5.0
            while True:
                text = urllib.request.urlopen(coordinator.url + "/metrics",
                                              timeout=10).read().decode("utf-8")
                if needle in text or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
        assert "# TYPE loom_coordinator_requests_total counter" in text
        assert needle in text

    def test_worker_metrics_include_executor_phases(self):
        with cluster(n=1) as (coordinator, workers, client):
            client.submit(MATRIX[0])
            text = urllib.request.urlopen(workers[0].url + "/metrics",
                                          timeout=10).read().decode("utf-8")
        assert "# TYPE loom_executor_phase_seconds histogram" in text
        assert 'loom_executor_phase_seconds_count{phase="simulate"} 1' \
            in text
