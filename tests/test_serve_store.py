"""Tests for the SQLite result store and the pluggable cache backends.

Covers the ISSUE-mandated behaviours: WAL-mode concurrent access, schema
versioning (incompatible databases are wiped, not fatal), the LRU entry
bound, corrupt rows/files being treated as misses, and -- for BOTH persistent
backends -- threads and processes racing the same key without corrupting an
entry or changing the result.
"""

import json
import multiprocessing
import sqlite3
import threading

import pytest

from repro.serve.store import SCHEMA_VERSION, SQLiteResultStore
from repro.sim.jobs import JobExecutor, JsonDirBackend, ResultCache, job_key
from repro.sim.jobs.cache import CacheBackend
from repro.sim.results import LayerResult, NetworkResult


def _result(cycles=100.0, network="netA", accelerator="AccX"):
    """A tiny synthetic NetworkResult (store tests need no real simulation)."""
    result = NetworkResult(network=network, accelerator=accelerator,
                           clock_ghz=1.0)
    result.add(LayerResult(layer_name="conv1", layer_kind="conv",
                           cycles=cycles, energy_pj=5.5, macs=10))
    result.add(LayerResult(layer_name="fc1", layer_kind="fc",
                           cycles=cycles / 2, energy_pj=2.25, macs=4))
    return result


KEY = "k" * 64


class TestSQLiteStoreBasics:
    def test_round_trip_preserves_every_field(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db")
        original = _result()
        store.store(KEY, original, spec={"network": {"name": "netA"}})
        loaded = store.load(KEY)
        assert loaded is not None
        assert loaded.to_dict() == original.to_dict()
        assert store.contains(KEY)
        assert len(store) == 1
        store.close()

    def test_missing_key_is_a_clean_miss(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db")
        assert store.load("absent") is None
        assert not store.contains("absent")
        assert store.invalid_entries == 0

    def test_wal_mode_is_active(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db")
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"

    def test_results_survive_across_instances(self, tmp_path):
        path = tmp_path / "cache.db"
        first = SQLiteResultStore(path)
        first.store(KEY, _result())
        first.close()
        second = SQLiteResultStore(path)
        assert second.load(KEY).to_dict() == _result().to_dict()
        second.close()

    def test_is_a_cache_backend(self, tmp_path):
        assert isinstance(SQLiteResultStore(tmp_path / "cache.db"),
                          CacheBackend)

    def test_stats_dict_reports_store_state(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db", max_entries=10)
        store.store(KEY, _result())
        store.load(KEY)
        stats = store.stats_dict()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 10
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["lifetime_hits"] == 1
        assert stats["size_bytes"] > 0

    def test_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            SQLiteResultStore(tmp_path / "cache.db", max_entries=0)

    def test_unbounded_store_still_counts_lifetime_hits(self, tmp_path):
        # Regression: `load` only bumped `hits` on the LRU recency-touch
        # path, so unbounded stores (max_entries=None -- how every cluster
        # worker runs) reported lifetime_hits == 0 forever.
        store = SQLiteResultStore(tmp_path / "cache.db")  # no entry bound
        store.store(KEY, _result())
        assert store.load(KEY) is not None
        assert store.stats_dict()["lifetime_hits"] == 1
        assert store.load(KEY) is not None
        assert store.stats_dict()["lifetime_hits"] == 2
        store.close()
        assert SQLiteResultStore.inspect(
            tmp_path / "cache.db")["lifetime_hits"] == 2


class TestSchemaVersioning:
    def test_incompatible_schema_version_wipes_the_store(self, tmp_path):
        path = tmp_path / "cache.db"
        store = SQLiteResultStore(path)
        store.store(KEY, _result())
        store.close()
        # Simulate a database written by a future incompatible version.
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 7}")
        conn.commit()
        conn.close()
        reopened = SQLiteResultStore(path)
        assert reopened.schema_resets == 1
        assert reopened.load(KEY) is None  # wiped, not crashed
        reopened.store(KEY, _result())  # and fully usable again
        assert reopened.contains(KEY)

    def test_non_sqlite_file_is_replaced(self, tmp_path):
        path = tmp_path / "cache.db"
        path.write_text("this is not a sqlite database at all")
        store = SQLiteResultStore(path)
        assert store.schema_resets == 1
        store.store(KEY, _result())
        assert store.load(KEY) is not None

    def test_transient_lock_errors_never_wipe_the_store(self, tmp_path):
        # Regression: "database is locked" (another process mid-write) is
        # NOT corruption; opening must fail loudly, not delete shared data.
        path = tmp_path / "cache.db"
        store = SQLiteResultStore(path)
        store.store(KEY, _result())
        store.close()
        locker = sqlite3.connect(str(path))
        locker.execute("BEGIN EXCLUSIVE")
        try:
            with pytest.raises(sqlite3.OperationalError):
                SQLiteResultStore(path, timeout_s=0.1)
        finally:
            locker.rollback()
            locker.close()
        survivor = SQLiteResultStore(path)
        assert survivor.load(KEY) is not None  # data intact
        assert survivor.schema_resets == 0
        survivor.close()

    def test_inspect_is_read_only_even_on_version_mismatch(self, tmp_path):
        # Regression: `stats --store` must NEVER repair-by-wiping the way
        # opening a store for service use does.
        path = tmp_path / "cache.db"
        store = SQLiteResultStore(path)
        store.store(KEY, _result())
        store.close()
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 7}")
        conn.commit()
        conn.close()
        report = SQLiteResultStore.inspect(path)
        assert report["compatible"] is False
        assert report["schema_version"] == SCHEMA_VERSION + 7
        assert "entries" not in report  # unknown layout: not queried
        # The data is still there: a compatible reader would see it if the
        # version were restored.
        conn = sqlite3.connect(str(path))
        (count,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        conn.close()
        assert count == 1

    def test_inspect_reports_compatible_stores(self, tmp_path):
        path = tmp_path / "cache.db"
        store = SQLiteResultStore(path, max_entries=5)
        store.store(KEY, _result())
        store.load(KEY)
        store.close()
        report = SQLiteResultStore.inspect(path)
        assert report["compatible"] is True
        assert report["entries"] == 1
        assert report["lifetime_hits"] == 1

    def test_inspect_rejects_non_sqlite_files(self, tmp_path):
        path = tmp_path / "not-a-db.txt"
        path.write_text("plain text")
        with pytest.raises(ValueError, match="not a result-store database"):
            SQLiteResultStore.inspect(path)
        assert path.read_text() == "plain text"  # untouched


class TestCorruptRows:
    def test_unparseable_payload_is_a_counted_miss(self, tmp_path):
        path = tmp_path / "cache.db"
        store = SQLiteResultStore(path)
        store.store(KEY, _result())
        store._conn.execute(
            "UPDATE results SET result = '{truncated' WHERE key = ?", (KEY,))
        store._conn.commit()
        assert store.load(KEY) is None
        assert store.invalid_entries == 1
        # The damaged row was deleted so it cannot poison later lookups.
        assert not store.contains(KEY)

    def test_format_mismatch_is_a_counted_miss(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db")
        store.store(KEY, _result())
        store._conn.execute(
            "UPDATE results SET format = 999 WHERE key = ?", (KEY,))
        store._conn.commit()
        assert store.load(KEY) is None
        assert store.invalid_entries == 1


class TestLRUBound:
    def test_eviction_drops_least_recently_used(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db", max_entries=3)
        for index in range(3):
            store.store(f"key{index}", _result(cycles=float(index + 1)))
        # Touch key0 so key1 becomes the least recently used.
        assert store.load("key0") is not None
        store.store("key3", _result(cycles=4.0))
        assert len(store) == 3
        assert store.evictions == 1
        assert not store.contains("key1")
        assert store.contains("key0")
        assert store.contains("key3")

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "cache.db")
        for index in range(10):
            store.store(f"key{index}", _result())
        assert len(store) == 10
        assert store.evictions == 0


class TestResultCacheIntegration:
    """The SQLite store as a ResultCache backend behind a JobExecutor."""

    def _job(self):
        from repro.sim.jobs import AcceleratorSpec, NetworkSpec, SimJob
        return SimJob(network=NetworkSpec("alexnet"),
                      accelerator=AcceleratorSpec.create("loom"))

    def test_executor_results_survive_to_sqlite(self, tmp_path):
        path = tmp_path / "cache.db"
        job = self._job()
        with JobExecutor(cache=ResultCache(
                backend=SQLiteResultStore(path))) as warm:
            expected = warm.run([job])[0]
        cold_cache = ResultCache(backend=SQLiteResultStore(path))
        fresh = JobExecutor(cache=cold_cache)
        result = fresh.run([job])[0]
        assert fresh.stats.executed == 0
        assert cold_cache.stats.disk_hits == 1
        assert result.to_dict() == expected.to_dict()
        cold_cache.close()

    def test_spec_is_stored_for_audit(self, tmp_path):
        path = tmp_path / "cache.db"
        job = self._job()
        cache = ResultCache(backend=SQLiteResultStore(path))
        with JobExecutor(cache=cache) as executor:
            executor.run([job])
        row = cache.backend._conn.execute(
            "SELECT spec FROM results WHERE key = ?",
            (job_key(job),)).fetchone()
        assert row is not None
        assert json.loads(row[0])["network"]["name"] == "alexnet"
        cache.close()


def _thread_race(backend_factory, workers=8, rounds=10):
    """Hammer one key from many threads; return the backend and errors."""
    backend = backend_factory()
    payload = _result()
    errors = []
    barrier = threading.Barrier(workers)

    def worker():
        try:
            barrier.wait()
            for _ in range(rounds):
                backend.store(KEY, payload)
                loaded = backend.load(KEY)
                if loaded is not None and \
                        loaded.to_dict() != payload.to_dict():
                    errors.append("corrupt read")
        except Exception as error:  # pragma: no cover - the assertion target
            errors.append(repr(error))

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return backend, errors


def _process_worker(backend_kind, path, rounds):
    """Race body run in a separate process (module-level: must pickle)."""
    backend = (SQLiteResultStore(path) if backend_kind == "sqlite"
               else JsonDirBackend(path))
    payload = _result()
    for _ in range(rounds):
        backend.store(KEY, payload)
        loaded = backend.load(KEY)
        assert loaded is None or loaded.to_dict() == payload.to_dict()
    backend.close()


class TestConcurrentAccess:
    """Two threads/processes racing one key must yield one
    execution-equivalent result and no corrupt entries -- on both backends."""

    @pytest.mark.parametrize("backend_kind", ["sqlite", "json"])
    def test_threads_racing_same_key(self, tmp_path, backend_kind):
        def factory():
            if backend_kind == "sqlite":
                return SQLiteResultStore(tmp_path / "cache.db")
            return JsonDirBackend(tmp_path / "jsondir")

        backend, errors = _thread_race(factory)
        assert errors == []
        final = backend.load(KEY)
        assert final is not None
        assert final.to_dict() == _result().to_dict()
        assert backend.invalid_entries == 0
        backend.close()

    @pytest.mark.parametrize("backend_kind", ["sqlite", "json"])
    def test_processes_racing_same_key(self, tmp_path, backend_kind):
        path = (tmp_path / "cache.db" if backend_kind == "sqlite"
                else tmp_path / "jsondir")
        context = multiprocessing.get_context()
        procs = [
            context.Process(target=_process_worker,
                            args=(backend_kind, str(path), 10))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # The survivor entry must be a perfectly valid, equivalent result.
        backend = (SQLiteResultStore(path) if backend_kind == "sqlite"
                   else JsonDirBackend(path))
        final = backend.load(KEY)
        assert final is not None
        assert final.to_dict() == _result().to_dict()
        assert backend.invalid_entries == 0
        assert len(backend) == 1
        backend.close()

    def test_concurrent_readers_share_one_database(self, tmp_path):
        # WAL's concrete promise: a second connection reads while the first
        # stays open for writing.
        path = tmp_path / "cache.db"
        writer = SQLiteResultStore(path)
        writer.store(KEY, _result())
        reader = SQLiteResultStore(path)
        assert reader.load(KEY) is not None
        writer.store("other", _result(cycles=7.0))
        assert reader.load("other") is not None
        writer.close()
        reader.close()
