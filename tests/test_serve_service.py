"""Tests for the batching simulation service (repro.serve).

The acceptance contract of the serve ISSUE, verified over real HTTP against
in-process servers:

* a served job result is **bit-identical** (field-for-field ``LayerResult``
  equality, the validator's comparator) to the same job run in-process via
  ``execute_job``;
* N concurrent submissions of one key execute the simulation exactly once
  (``ExecutorStats.max_executions_per_key == 1``), the rest coalescing onto
  the winner;
* a full in-flight queue answers 429 with a ``Retry-After`` hint instead of
  queueing without bound;
* sweeps can execute through the service (``RemoteExecutor`` + POST
  /explore) with results identical to local execution.
"""

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.explore import Axis, SweepSpec, canonical_point, explore, point_to_job
from repro.serve import (
    Backpressure,
    RemoteExecutor,
    SQLiteResultStore,
    ServeClient,
    ServeError,
    SimulationService,
)
from repro.serve.service import _Inflight
from repro.sim.jobs import (
    AcceleratorSpec,
    JobExecutor,
    NetworkSpec,
    ResultCache,
    SimJob,
    execute_job,
    job_key,
)
from repro.sim.validate import compare_layer_results

POINT = {"network": "alexnet", "accelerator": "loom"}


@contextlib.contextmanager
def serving(tmp_path=None, **service_kwargs):
    """A started service + client; SQLite-backed when tmp_path is given."""
    if tmp_path is not None and "executor" not in service_kwargs:
        store = SQLiteResultStore(tmp_path / "serve.db")
        service_kwargs["executor"] = JobExecutor(
            cache=ResultCache(backend=store, max_memory_entries=64))
    service = SimulationService(**service_kwargs)
    service.start()
    try:
        yield service, ServeClient(service.url, timeout_s=60.0)
    finally:
        service.stop()


def _slow(service, delay_s=0.25):
    """Wrap the service executor so executions overlap deterministically."""
    original = service.executor.run

    def run(jobs, **kwargs):
        time.sleep(delay_s)
        return original(jobs, **kwargs)

    service.executor.run = run
    return original


class TestEndpoints:
    def test_healthz(self):
        with serving() as (_, client):
            payload = client.healthz()
            assert payload["ok"] is True
            assert payload["uptime_s"] >= 0

    def test_networks_lists_the_zoo(self):
        from repro.nn import available_networks

        with serving() as (_, client):
            networks = client.networks()
            assert [n["name"] for n in networks] == available_networks()
            alexnet = next(n for n in networks if n["name"] == "alexnet")
            assert alexnet["conv"] == 5 and alexnet["fc"] == 3

    def test_unknown_path_is_404(self):
        with serving() as (_, client):
            with pytest.raises(ServeError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404

    def test_stats_reports_every_section(self, tmp_path):
        with serving(tmp_path) as (_, client):
            client.submit(POINT)
            stats = client.stats()
            assert stats["service"]["submitted_points"] == 1
            assert stats["executor"]["executed"] == 1
            assert stats["cache"]["stores"] == 1
            assert stats["store"]["backend"] == "sqlite"
            assert stats["store"]["entries"] == 1
            assert stats["queue_limit"] >= 1


class TestServedResults:
    def test_served_result_bit_identical_to_in_process(self):
        local = execute_job(point_to_job(canonical_point(POINT)))
        with serving() as (_, client):
            served = client.submit(POINT)
        assert served.status == "executed"
        assert served.key == job_key(point_to_job(canonical_point(POINT)))
        # The acceptance comparator: the validator's field-for-field equality.
        assert compare_layer_results(served.result.layers, local.layers) == []
        assert served.result.to_dict() == local.to_dict()

    def test_repeat_submission_is_answered_from_the_store(self):
        with serving() as (service, client):
            first = client.submit(POINT)
            second = client.submit(POINT)
            assert first.status == "executed"
            assert second.status == "cached"
            assert second.result.to_dict() == first.result.to_dict()
            assert service.executor.stats.max_executions_per_key == 1

    def test_store_survives_service_restarts(self, tmp_path):
        with serving(tmp_path) as (_, client):
            first = client.submit(POINT)
        store = SQLiteResultStore(tmp_path / "serve.db")
        with serving(executor=JobExecutor(cache=ResultCache(
                backend=store))) as (service, client):
            revived = client.submit(POINT)
            assert revived.status == "cached"
            assert revived.result.to_dict() == first.result.to_dict()
            assert service.executor.stats.executed == 0

    def test_batch_points_resolve_in_order_with_dedup(self):
        points = [
            POINT,
            {"network": "alexnet", "accelerator": "dpnn"},
            POINT,  # duplicate of the first
        ]
        with serving() as (service, client):
            entries = client.submit_points(points)
            assert [e.status for e in entries] == \
                ["executed", "executed", "executed"]
            assert entries[0].key == entries[2].key
            assert entries[0].result.to_dict() == entries[2].result.to_dict()
            # The duplicate never reached a second simulation.
            assert service.executor.stats.max_executions_per_key == 1

    def test_lookup_by_key(self):
        with serving() as (_, client):
            done = client.submit(POINT)
            fetched = client.result(done.key)
            assert fetched is not None
            assert fetched.to_dict() == done.result.to_dict()
            assert client.result("0" * 64) is None
            assert client.lookup("0" * 64) == ("unknown", None)

    def test_lookup_reports_pending_for_inflight_keys(self):
        with serving() as (service, client):
            inflight = _Inflight()
            service._inflight["busykey"] = inflight
            try:
                assert client.lookup("busykey") == ("pending", None)
            finally:
                service._inflight.pop("busykey")
                inflight.event.set()

    def test_config_knobs_ride_the_wire(self):
        point = {"network": "nin", "accelerator": "loom:bits_per_cycle=2",
                 "equivalent_macs": 256, "dram": "lpddr4-4267"}
        local = execute_job(point_to_job(canonical_point(point)))
        with serving() as (_, client):
            served = client.submit(point)
        assert compare_layer_results(served.result.layers, local.layers) == []


class TestCoalescing:
    def test_concurrent_identical_submissions_execute_once(self):
        workers = 6
        with serving() as (service, client):
            _slow(service)
            barrier = threading.Barrier(workers)
            outcomes = []

            def submit():
                barrier.wait()
                outcomes.append(client.submit(POINT))

            threads = [threading.Thread(target=submit)
                       for _ in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert len(outcomes) == workers
            # Exactly one execution; everyone saw the identical result.
            assert service.executor.stats.max_executions_per_key == 1
            statuses = sorted(entry.status for entry in outcomes)
            assert statuses.count("executed") == 1
            assert set(statuses) <= {"executed", "coalesced", "cached"}
            assert service.stats.coalesced >= 1
            reference = outcomes[0].result.to_dict()
            assert all(entry.result.to_dict() == reference
                       for entry in outcomes)

    def test_coalesced_waiter_sees_owner_error(self):
        # Owner's execution fails -> the waiter must get an error too (and
        # never hang), with the in-flight entry cleaned up afterwards.
        service = SimulationService()
        try:
            release = threading.Event()

            def exploding_run(jobs, **kwargs):
                release.wait(5)
                raise RuntimeError("simulator exploded")

            service.executor.run = exploding_run
            errors = {}

            def owner():
                try:
                    service.submit_points([POINT])
                except RuntimeError as error:
                    errors["owner"] = str(error)

            def waiter():
                # Wait until the owner registered its in-flight entry, then
                # submit the same point so we coalesce onto it.
                for _ in range(100):
                    if service._inflight:
                        break
                    time.sleep(0.01)
                release.set()
                try:
                    service.submit_points([POINT])
                except RuntimeError as error:
                    errors["waiter"] = str(error)

            threads = [threading.Thread(target=owner),
                       threading.Thread(target=waiter)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert "simulator exploded" in errors["owner"]
            assert "simulator exploded" in errors["waiter"]
            assert service._inflight == {}
        finally:
            service.stop()


class TestBackpressure:
    def test_full_queue_is_refused_with_429_retry_after(self):
        with serving(queue_limit=1, retry_after_s=3) as (service, client):
            service._pending_batches = 1  # another admitted batch is running
            try:
                with pytest.raises(ServeError) as excinfo:
                    client.submit(POINT)
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after_s == 3
                assert service.stats.rejected == 1
                # A rejected batch must not leak into the admission counters.
                assert service.stats.submitted_points == 0
            finally:
                service._pending_batches = 0
            # Once the queue drains, the same submission succeeds.
            assert client.submit(POINT).status == "executed"

    def test_batch_counts_as_one_admission_unit(self):
        # Regression: a single batch larger than queue_limit must be
        # admitted -- it becomes ONE executor batch, so it costs one slot,
        # not one per distinct key (otherwise any cold sweep wider than the
        # queue could never run).
        points = [
            {"network": "alexnet", "accelerator": "dpnn",
             "equivalent_macs": macs}
            for macs in (32, 48, 64, 80, 96)
        ]
        with serving(queue_limit=1) as (service, client):
            entries = client.submit_points(points)
            assert [e.status for e in entries] == ["executed"] * 5
            assert len({e.key for e in entries}) == 5
            assert service.stats.rejected == 0

    def test_remote_sweep_wider_than_the_queue_succeeds(self):
        # The README's own flow: explore --remote against a small queue.
        space = SweepSpec(
            axes=[Axis("equivalent_macs", (32, 64, 128)),
                  Axis("accelerator", ("loom", "dstripes"))],
            base={"network": "alexnet"},
        )
        with serving(queue_limit=1) as (service, client):
            result = explore(space, executor=RemoteExecutor(client))
        assert len(result.evaluated) == 6  # 12 jobs incl. baselines, 1 queue

    def test_remote_executor_retries_on_backpressure(self):
        with serving(queue_limit=1, retry_after_s=1) as (service, client):
            service._pending_batches = 1  # queue full...

            def drain():
                time.sleep(0.5)
                service._pending_batches = 0  # ...until it drains

            thread = threading.Thread(target=drain)
            thread.start()
            remote = RemoteExecutor(client, max_retries=5)
            jobs = [SimJob(network=NetworkSpec("alexnet"),
                           accelerator=AcceleratorSpec.create("dpnn"))]
            results = remote.run(jobs)
            thread.join()
            assert len(results) == 1
            assert remote.backpressure_retries >= 1

    def test_remote_executor_gives_up_after_max_retries(self):
        with serving(queue_limit=1) as (service, client):
            service._pending_batches = 1
            try:
                remote = RemoteExecutor(client, max_retries=0)
                jobs = [SimJob(network=NetworkSpec("alexnet"),
                               accelerator=AcceleratorSpec.create("dpnn"))]
                with pytest.raises(ServeError) as excinfo:
                    remote.run(jobs)
                assert excinfo.value.status == 429
            finally:
                service._pending_batches = 0

    def test_coalesced_duplicates_do_not_count_against_the_queue(self):
        with serving(queue_limit=1) as (service, client):
            _slow(service)
            barrier = threading.Barrier(3)
            outcomes, errors = [], []

            def submit():
                barrier.wait()
                try:
                    outcomes.append(client.submit(POINT))
                except ServeError as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=submit) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # All three fit through a queue of one: one owner, two riders.
            assert errors == []
            assert len(outcomes) == 3
            assert service.executor.stats.max_executions_per_key == 1

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="queue_limit"):
            SimulationService(queue_limit=0)


class TestValidation:
    def test_unknown_network_is_a_400(self):
        with serving() as (_, client):
            with pytest.raises(ServeError) as excinfo:
                client.submit(network="resnet999", accelerator="loom")
            assert excinfo.value.status == 400

    def test_unknown_parameter_is_a_400(self):
        with serving() as (_, client):
            with pytest.raises(ServeError) as excinfo:
                client.submit(network="alexnet", accelerator="loom",
                              flux_capacitance=88)
            assert excinfo.value.status == 400
            assert "flux_capacitance" in excinfo.value.message

    def test_empty_body_is_a_400(self):
        with serving() as (service, _):
            request = urllib.request.Request(
                service.url + "/jobs", data=b"", method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_submit_points_rejects_non_mappings(self):
        service = SimulationService()
        try:
            with pytest.raises(ValueError, match="JSON object"):
                service.submit_points(["not-a-mapping"])
        finally:
            service.stop()

    def test_backpressure_is_an_informative_exception(self):
        error = Backpressure(pending=8, limit=8, retry_after_s=2)
        assert "8" in str(error) and "retry" in str(error).lower()

    def test_error_responses_keep_the_connection_parseable(self):
        # Regression: HTTP/1.1 keep-alive means an error response sent
        # without draining the request body leaves the unread bytes to be
        # parsed as the next request on the same connection.
        import http.client

        with serving() as (service, _):
            conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                              timeout=10)
            try:
                conn.request("POST", "/nope", body=b'{"foo": "bar"}',
                             headers={"Content-Type": "application/json"})
                first = conn.getresponse()
                assert first.status == 404
                first.read()
                # Same socket: the next request must parse cleanly.
                conn.request("GET", "/healthz")
                second = conn.getresponse()
                assert second.status == 200
                assert b'"ok": true' in second.read()
            finally:
                conn.close()

    def test_oversized_body_is_refused_and_connection_closed(self):
        import http.client

        from repro.serve.service import _MAX_BODY_BYTES

        with serving() as (service, _):
            conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                              timeout=10)
            try:
                conn.putrequest("POST", "/jobs")
                conn.putheader("Content-Length", str(_MAX_BODY_BYTES + 1))
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 400
                assert b"too large" in response.read()
            finally:
                conn.close()


class TestExploreThroughTheService:
    SPACE = SweepSpec(
        axes=[Axis("equivalent_macs", (32, 64)),
              Axis("accelerator", ("loom", "dstripes"))],
        base={"network": "alexnet"},
    )

    def test_post_explore_matches_local_execution(self):
        local = explore(self.SPACE, executor=JobExecutor())
        with serving() as (_, client):
            remote = client.explore(self.SPACE.to_dict())
        assert len(remote["evaluated"]) == len(local.evaluated)
        assert remote["ranks"] == local.ranks
        for wire, local_point in zip(remote["evaluated"], local.evaluated):
            assert wire["metrics"] == pytest.approx(local_point.metrics)

    def test_remote_executor_sweep_matches_local(self, tmp_path):
        local = explore(self.SPACE, executor=JobExecutor())
        with serving(tmp_path) as (_, client):
            remote = explore(self.SPACE, executor=RemoteExecutor(client))
        assert [ep.metrics for ep in remote.evaluated] == \
            [ep.metrics for ep in local.evaluated]
        assert remote.ranks == local.ranks

    def test_second_sweep_is_fully_answered_from_the_warm_store(self, tmp_path):
        with serving(tmp_path) as (service, client):
            explore(self.SPACE, executor=RemoteExecutor(client))
            executed_before = service.executor.stats.executed
            second = RemoteExecutor(client)
            explore(self.SPACE, executor=second)
            assert service.executor.stats.executed == executed_before
            assert second.stats.executed == 0
            assert second.stats.cache_hits > 0

    def test_bad_explore_request_is_a_400(self):
        with serving() as (_, client):
            with pytest.raises(ServeError) as excinfo:
                client.explore({"axes": {}})
            assert excinfo.value.status == 400

    def test_explore_strategy_options_and_budget_over_the_wire(self):
        with serving() as (_, client):
            result = client.explore(
                self.SPACE.to_dict(), strategy="surrogate",
                options={"seed": 1, "initial": 2, "batch": 1}, budget=3)
            assert result["strategy"] == "surrogate"
            assert len(result["evaluated"]) == 3  # budget-capped below 4
            # Bad option values come back as a 400, not a 500.
            with pytest.raises(ServeError) as excinfo:
                client.explore(self.SPACE.to_dict(), strategy="surrogate",
                               options={"initial": 1})
            assert excinfo.value.status == 400
            with pytest.raises(ServeError) as excinfo:
                client.explore(self.SPACE.to_dict(), budget=0)
            assert excinfo.value.status == 400

    def test_explore_legacy_samples_seed_keys_still_work(self):
        with serving() as (_, client):
            result = client.explore(self.SPACE.to_dict(), strategy="random",
                                    samples=2, seed=7)
            assert result["strategy"] == "random"
            assert len(result["evaluated"]) == 2

    def test_explore_respects_the_admission_bound(self):
        # Regression: sweeps must pass the same 429 backpressure gate as
        # /jobs batches instead of queueing unboundedly on the execute lock.
        with serving(queue_limit=1, retry_after_s=2) as (service, client):
            service._pending_batches = 1
            try:
                with pytest.raises(ServeError) as excinfo:
                    client.explore(self.SPACE.to_dict())
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after_s == 2
            finally:
                service._pending_batches = 0
            # Drained queue: the identical sweep is admitted.
            assert len(client.explore(self.SPACE.to_dict())["evaluated"]) == 4


class TestClientTransport:
    """Pins the client bugfix satellites: float Retry-After round-trip and
    connection-level failures surfacing as retryable ServeError 503."""

    @staticmethod
    def _http_error(status, headers_dict, body=b'{"error": "refused"}'):
        import email.message
        import io

        headers = email.message.Message()
        for name, value in headers_dict.items():
            headers[name] = value
        return urllib.error.HTTPError("http://test", status, "refused",
                                      headers, io.BytesIO(body))

    def test_fractional_retry_after_round_trips(self):
        # Regression: Retry-After was parsed with int(), so a fractional
        # hint (proxies, sub-second backpressure) was silently dropped and
        # clients retried sooner than asked.
        error = self._http_error(429, {"Retry-After": "1.5"})
        with pytest.raises(ServeError) as excinfo:
            ServeClient._raise_serve_error(error)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s == pytest.approx(1.5)

    def test_integral_retry_after_still_parses(self):
        error = self._http_error(429, {"Retry-After": "3"})
        with pytest.raises(ServeError) as excinfo:
            ServeClient._raise_serve_error(error)
        assert excinfo.value.retry_after_s == pytest.approx(3.0)

    def test_unparseable_retry_after_is_dropped_not_fatal(self):
        error = self._http_error(429, {"Retry-After": "Wed, 21 Oct"})
        with pytest.raises(ServeError) as excinfo:
            ServeClient._raise_serve_error(error)
        assert excinfo.value.retry_after_s is None

    def test_connection_refused_raises_retryable_serve_error(self):
        # Regression: a raw urllib.error.URLError (connection refused while
        # a shard restarts) used to escape _request, bypassing every
        # ServeError-based retry loop.  It must surface as a 503.
        import socket

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = ServeClient(f"http://127.0.0.1:{port}", timeout_s=5.0)
        with pytest.raises(ServeError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert "connection" in str(excinfo.value)

    def test_remote_executor_retries_through_a_brief_outage(self):
        # The wrapped 503 engages RemoteExecutor's backoff: one refused
        # connection then a healthy server completes the batch.
        with serving() as (service, client):
            real_submit = client.submit_points
            calls = {"n": 0}

            def flaky(points):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ServeError(
                        503, "connection to http://test failed: refused")
                return real_submit(points)

            client.submit_points = flaky
            executor = RemoteExecutor(client)
            executor._sleep = lambda _: None
            jobs = [SimJob(network=NetworkSpec("alexnet"),
                           accelerator=AcceleratorSpec.create("loom"))]
            results = executor.run(jobs)
            assert len(results) == 1
            assert executor.transport_retries == 1


class TestShutdown:
    def test_post_shutdown_stops_the_server_gracefully(self):
        service = SimulationService()
        service.start()
        client = ServeClient(service.url, timeout_s=30.0)
        assert client.submit(POINT).status == "executed"
        assert client.shutdown() == {"ok": True, "stopping": True}
        service._stop_requested.wait(10)
        service.stop()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(service.url + "/healthz", timeout=2)

    def test_stop_closes_the_store(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "serve.db")
        executor = JobExecutor(cache=ResultCache(backend=store))
        service = SimulationService(executor=executor)
        service.start()
        service.stop()
        import sqlite3
        with pytest.raises(sqlite3.ProgrammingError):
            store._conn.execute("SELECT 1")

    def test_stop_waits_for_inflight_work_before_closing(self, tmp_path):
        # Regression: handler threads are daemons, so stop() must drain
        # admitted work before closing the executor/store, or a racing
        # submission loses its result to a closed SQLite connection.
        store = SQLiteResultStore(tmp_path / "serve.db")
        executor = JobExecutor(cache=ResultCache(backend=store))
        service = SimulationService(executor=executor)
        service.start()
        _slow(service, delay_s=0.3)
        outcome = {}

        def submit():
            try:
                (entry,) = service.submit_points([POINT])
                outcome["status"] = entry.status
            except Exception as error:  # pragma: no cover
                outcome["error"] = repr(error)

        thread = threading.Thread(target=submit)
        thread.start()
        for _ in range(100):  # wait until the batch is admitted
            if service._pending_batches:
                break
            time.sleep(0.01)
        service.stop()
        thread.join(timeout=10)
        assert outcome == {"status": "executed"}
        # ... and the racing result made it into the (now closed) store.
        reopened = SQLiteResultStore(tmp_path / "serve.db")
        assert len(reopened) == 1
        reopened.close()

    def test_cold_submission_counts_one_miss(self):
        # Regression: the pre-admission probe must not double-count misses.
        with serving() as (service, client):
            client.submit(POINT)
            assert service.cache.stats.misses == 1
            client.submit(POINT)  # warm: no further misses
            assert service.cache.stats.misses == 1

    def test_context_manager_starts_and_stops(self):
        with SimulationService() as service:
            assert service.port != 0
            url = service.url
            with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
                assert resp.status == 200
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=2)


class TestRemoteExecutorProtocol:
    def test_results_in_submission_order_with_duplicates(self):
        jobs = [
            SimJob(network=NetworkSpec("alexnet"),
                   accelerator=AcceleratorSpec.create("dpnn")),
            SimJob(network=NetworkSpec("alexnet"),
                   accelerator=AcceleratorSpec.create("loom")),
            SimJob(network=NetworkSpec("alexnet"),
                   accelerator=AcceleratorSpec.create("dpnn")),
        ]
        expected = [execute_job(job) for job in jobs]
        with serving() as (_, client):
            with RemoteExecutor(client, batch_size=2) as remote:
                results = remote.run(jobs)
        assert [r.accelerator for r in results] == ["DPNN", "Loom-1b", "DPNN"]
        for served, local in zip(results, expected):
            assert served.to_dict() == local.to_dict()

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            RemoteExecutor("http://localhost:1", batch_size=0)


def _scrape_until(url, needle, timeout_s=5.0):
    """Poll ``/metrics`` until ``needle`` appears (request-side series are
    recorded a moment *after* the triggering response flushes)."""
    deadline = time.monotonic() + timeout_s
    while True:
        with urllib.request.urlopen(url + "/metrics", timeout=10) as response:
            text = response.read().decode("utf-8")
        if needle in text or time.monotonic() > deadline:
            return text
        time.sleep(0.01)


class TestObservability:
    """The serve half of the repro.obs contract: /metrics, /trace,
    X-Request-Id correlation, and version/uptime reporting."""

    def test_metrics_renders_prometheus_text(self):
        with serving() as (service, client):
            client.submit(POINT)
            with urllib.request.urlopen(service.url + "/metrics",
                                        timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == \
                    "text/plain; version=0.0.4; charset=utf-8"
            text = _scrape_until(
                service.url,
                'loom_serve_requests_total{path="/jobs",status="200"} 1')
        assert "# TYPE loom_serve_requests_total counter" in text
        assert 'loom_serve_requests_total{path="/jobs",status="200"} 1' in text
        assert "# TYPE loom_serve_request_seconds histogram" in text
        assert 'loom_serve_request_seconds_count{path="/jobs"} 1' in text
        assert "loom_serve_uptime_seconds" in text
        assert "loom_serve_pending_batches 0" in text
        assert text.endswith("\n")

    def test_metrics_includes_executor_phase_histograms(self):
        with serving() as (service, client):
            client.submit(POINT)
            text = urllib.request.urlopen(service.url + "/metrics",
                                          timeout=10).read().decode("utf-8")
        assert "# TYPE loom_executor_phase_seconds histogram" in text
        assert 'loom_executor_phase_seconds_count{phase="simulate"} 1' in text
        assert 'loom_executor_phase_seconds_count{phase="cache_lookup"}' \
            in text

    def test_metric_path_labels_stay_low_cardinality(self):
        with serving() as (service, client):
            done = client.submit(POINT)
            client.lookup(done.key)
            client.lookup("0" * 16)  # a second distinct key, 404s
            with contextlib.suppress(ServeError):
                client._request("GET", "/made-up-path")
            text = _scrape_until(service.url,
                                 'path="<other>",status="404"')
        # Both key lookups collapse into one series; unknown paths into
        # another -- a scrape's cardinality never grows with traffic.
        assert 'loom_serve_requests_total{path="/jobs/<key>",status="200"} 1' \
            in text
        assert 'loom_serve_requests_total{path="/jobs/<key>",status="404"} 1' \
            in text
        assert 'path="<other>"' in text
        assert "/made-up-path" not in text

    def test_request_id_header_on_success(self):
        with serving() as (service, client):
            with urllib.request.urlopen(service.url + "/healthz",
                                        timeout=10) as response:
                request_id = response.headers["X-Request-Id"]
        assert request_id and len(request_id) == 16
        int(request_id, 16)  # hex

    def test_error_body_echoes_the_request_id_header(self):
        with serving() as (service, _):
            request = urllib.request.Request(service.url + "/nope")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert excinfo.value.headers["X-Request-Id"] == \
                payload["request_id"]

    def test_healthz_and_stats_report_the_version(self):
        from repro import __version__

        with serving() as (_, client):
            assert client.healthz()["version"] == __version__
            stats = client.stats()
            assert stats["version"] == __version__
            assert stats["uptime_s"] >= 0

    def test_stats_reports_executor_phase_timings(self):
        with serving() as (_, client):
            client.submit(POINT)
            phases = client.stats()["executor"]["phases"]
        assert phases["simulate"]["count"] == 1
        assert phases["simulate"]["seconds"] > 0
        assert phases["cache_lookup"]["count"] == 1

    def test_served_request_spans_join_the_callers_trace(self):
        from repro.obs import get_tracer

        tracer = get_tracer()
        with serving() as (service, client):
            with tracer.span("test.client") as root:
                client.submit(POINT)
                trace_id = root.trace_id
            # The handler records its span a beat after the response body
            # is flushed; poll briefly.
            deadline = time.time() + 5.0
            names = set()
            while time.time() < deadline:
                payload = client.trace()
                names = {span["name"] for span in payload["spans"]
                         if span["trace_id"] == trace_id}
                if "serve.POST /jobs" in names:
                    break
                time.sleep(0.05)
        assert "serve.POST /jobs" in names
        assert "executor.run" in names
        assert "executor.simulate" in names

    def test_trace_payload_round_trips_to_chrome_format(self):
        from repro.obs import Span, chrome_trace

        with serving() as (_, client):
            client.submit(POINT)
            payload = client.trace()
        spans = [Span.from_dict(entry) for entry in payload["spans"]]
        document = json.loads(json.dumps(chrome_trace(spans)))
        assert any(event.get("ph") == "X"
                   for event in document["traceEvents"])
