"""Tests for the Judd-style precision profiler (repro.quant.profiler)."""

import numpy as np
import pytest

from repro.quant.fixedpoint import BASELINE_PRECISION
from repro.quant.profiler import PrecisionProfiler, fidelity_evaluator


def threshold_evaluator(min_bits_required):
    """Synthetic evaluator: the score is 1.0 iff every layer meets its floor.

    ``min_bits_required`` maps layer name -> (min_act_bits, min_weight_bits).
    This gives the profiler a known ground truth to find.
    """

    def evaluate(assignment):
        for name, (act_floor, weight_floor) in min_bits_required.items():
            act, weight = assignment[name]
            if act < act_floor or weight < weight_floor:
                return 0.0
        return 1.0

    return evaluate


class TestPrecisionProfiler:
    def test_finds_exact_floors(self):
        floors = {"conv1": (7, 9), "conv2": (5, 11), "fc1": (3, 8)}
        profiler = PrecisionProfiler(evaluator=threshold_evaluator(floors),
                                     target_score=1.0)
        results = profiler.profile_layers(["conv1", "conv2", "fc1"],
                                          [True, True, False])
        by_name = {r.layer_name: r for r in results}
        for name, (act_floor, weight_floor) in floors.items():
            assert by_name[name].activation_bits == act_floor
            assert by_name[name].weight_bits == weight_floor

    def test_profile_network_uniform_conv_weight(self):
        floors = {"conv1": (7, 9), "conv2": (5, 11), "fc1": (16, 8)}
        profiler = PrecisionProfiler(evaluator=threshold_evaluator(floors))
        profile = profiler.profile_network("toy", list(floors), [True, True, False])
        # CVL weight precision is collapsed to the maximum across layers.
        assert set(profile.conv_weight_bits()) == {11}
        assert profile.conv_activation_bits() == [7, 5]
        assert profile.fc_weight_bits() == [8]
        # FC activations are recorded at the baseline precision.
        assert profile.fc_layers[0].activation_bits == BASELINE_PRECISION

    def test_per_layer_conv_weights_when_not_uniform(self):
        floors = {"conv1": (7, 9), "conv2": (5, 11)}
        profiler = PrecisionProfiler(evaluator=threshold_evaluator(floors))
        profile = profiler.profile_network("toy", list(floors), [True, True],
                                           uniform_conv_weight=False)
        assert profile.conv_weight_bits() == [9, 11]

    def test_weights_not_searched_when_disabled(self):
        floors = {"conv1": (4, 1)}
        profiler = PrecisionProfiler(evaluator=threshold_evaluator(floors),
                                     search_weights=False)
        results = profiler.profile_layers(["conv1"], [True])
        assert results[0].weight_bits == BASELINE_PRECISION

    def test_all_layers_trivially_satisfiable_goes_to_min(self):
        profiler = PrecisionProfiler(evaluator=lambda assignment: 1.0,
                                     min_bits=2)
        results = profiler.profile_layers(["l0"], [True])
        assert results[0].activation_bits == 2
        assert results[0].weight_bits == 2

    def test_unsatisfiable_stays_at_baseline(self):
        profiler = PrecisionProfiler(evaluator=lambda assignment: 0.0)
        results = profiler.profile_layers(["l0"], [True])
        assert results[0].activation_bits == BASELINE_PRECISION
        assert results[0].weight_bits == BASELINE_PRECISION

    def test_mismatched_inputs_raise(self):
        profiler = PrecisionProfiler(evaluator=lambda a: 1.0)
        with pytest.raises(ValueError):
            profiler.profile_layers(["a", "b"], [True])

    def test_invalid_target_score(self):
        with pytest.raises(ValueError):
            PrecisionProfiler(evaluator=lambda a: 1.0, target_score=0.0)
        with pytest.raises(ValueError):
            PrecisionProfiler(evaluator=lambda a: 1.0, target_score=1.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            PrecisionProfiler(evaluator=lambda a: 1.0, min_bits=0)
        with pytest.raises(ValueError):
            PrecisionProfiler(evaluator=lambda a: 1.0, min_bits=9, max_bits=8)

    def test_as_layer_precision_conversion(self):
        profiler = PrecisionProfiler(evaluator=lambda a: 1.0, min_bits=3)
        result = profiler.profile_layers(["l0"], [False])[0]
        lp = result.as_layer_precision()
        assert lp.activation_bits == result.activation_bits
        assert lp.weight_bits == result.weight_bits


class TestFidelityEvaluator:
    def test_perfect_agreement_scores_one(self):
        reference = np.array([[0.1, 0.9], [0.8, 0.2]])
        evaluator = fidelity_evaluator(lambda assignment: reference, reference)
        assert evaluator({}) == 1.0

    def test_partial_agreement(self):
        reference = np.array([[0.1, 0.9], [0.8, 0.2]])
        flipped = np.array([[0.1, 0.9], [0.2, 0.8]])
        evaluator = fidelity_evaluator(lambda assignment: flipped, reference)
        assert evaluator({}) == 0.5

    def test_shape_mismatch_raises(self):
        reference = np.array([[0.1, 0.9]])
        evaluator = fidelity_evaluator(lambda assignment: np.zeros((2, 2)),
                                       reference)
        with pytest.raises(ValueError):
            evaluator({})

    def test_reference_must_be_2d(self):
        with pytest.raises(ValueError):
            fidelity_evaluator(lambda a: np.zeros(3), np.zeros(3))
