"""Tests for the Loom accelerator model (repro.core.loom)."""

import pytest

from repro.core import Loom
from repro.quant import get_paper_profile
from repro.quant.dynamic import DynamicPrecisionModel
from repro.nn import build_network
from repro.sim import run_network
from repro.sim.results import compare


@pytest.fixture(scope="module")
def alexnet_static_loom():
    """Loom with dynamic precision disabled: pure profile-derived timing."""
    return Loom(dynamic_precision=DynamicPrecisionModel(enabled=False))


class TestConstruction:
    def test_variant_names(self, loom_1b, loom_2b, loom_4b):
        assert loom_1b.name == "Loom-1b"
        assert loom_2b.name == "Loom-2b"
        assert loom_4b.name == "Loom-4b"

    def test_geometry_matches_paper(self, loom_1b):
        assert loom_1b.geometry.num_sips == 2048
        assert loom_1b.geometry.filter_rows == 128
        assert loom_1b.geometry.window_columns == 16

    def test_invalid_bits_per_cycle(self):
        with pytest.raises(ValueError):
            Loom(bits_per_cycle=3)

    def test_storage_flags(self, loom_1b):
        assert loom_1b.uses_bit_interleaved_storage
        assert loom_1b.stores_weights_serially
        assert loom_1b.stores_activations_serially

    def test_default_memory_sizing(self, loom_1b, dpnn_default):
        # Loom's AM is half of DPNN's (1 MB vs 2 MB); its WM is larger.
        assert loom_1b.hierarchy.activation_memory.capacity_mb == pytest.approx(1.0)
        assert dpnn_default.hierarchy.activation_memory.capacity_mb == \
            pytest.approx(2.0)
        assert loom_1b.hierarchy.weight_memory.capacity_mb > \
            dpnn_default.hierarchy.weight_memory.capacity_mb


class TestStaticCycleModel:
    """With dynamic precision off, speedups follow the paper's closed forms."""

    def test_conv_speedup_follows_256_over_papw(self, alexnet_100, dpnn_default,
                                                alexnet_static_loom):
        # conv3: 384 filters (multiple of 128), 2304 terms, Pa=5, Pw=11.
        # 169 windows do not tile the 16 window columns exactly, so Loom loses
        # the ceil(169/16) rounding relative to the ideal 256/(Pa*Pw).
        conv3 = alexnet_100.conv_layers()[2]
        ratio = (dpnn_default.compute_cycles(conv3)
                 / alexnet_static_loom.compute_cycles(conv3))
        ideal = 256 / (5 * 11)
        window_rounding = 169 / (16 * -(-169 // 16))
        assert ratio == pytest.approx(ideal * window_rounding, rel=0.01)
        assert ideal * 0.9 < ratio <= ideal

    def test_fc_speedup_follows_16_over_pw(self, alexnet_100, dpnn_default,
                                           alexnet_static_loom):
        fc6 = alexnet_100.fc_layers()[0]  # Pw = 10
        ratio = (dpnn_default.compute_cycles(fc6)
                 / alexnet_static_loom.compute_cycles(fc6))
        assert ratio == pytest.approx(16 / 10, rel=0.02)

    def test_16bit_profile_never_beats_dpnn_but_matches_it(self, dpnn_default,
                                                           alexnet_static_loom):
        network = build_network("alexnet")  # no profile -> 16-bit baseline
        base = run_network(dpnn_default, network)
        loom = run_network(alexnet_static_loom, network)
        for kind in ("conv", "fc"):
            ratio = base.total_cycles(kind) / loom.total_cycles(kind)
            # At 16-bit precisions Loom cannot beat DPNN; it only trails it by
            # the window/output tiling rounding (a few percent).
            assert 0.9 <= ratio <= 1.02


class TestDynamicPrecision:
    def test_dynamic_mode_faster_than_static_on_convs(self, alexnet_100,
                                                      loom_1b,
                                                      alexnet_static_loom):
        for conv in alexnet_100.conv_layers():
            assert loom_1b.compute_cycles(conv) < \
                alexnet_static_loom.compute_cycles(conv)

    def test_dynamic_mode_does_not_change_fc(self, alexnet_100, loom_1b,
                                             alexnet_static_loom):
        for fc in alexnet_100.fc_layers():
            assert loom_1b.compute_cycles(fc) == \
                alexnet_static_loom.compute_cycles(fc)


class TestVariants:
    def test_1b_fastest_on_convs(self, alexnet_100, loom_1b, loom_2b, loom_4b):
        c1 = sum(loom_1b.compute_cycles(c) for c in alexnet_100.conv_layers())
        c2 = sum(loom_2b.compute_cycles(c) for c in alexnet_100.conv_layers())
        c4 = sum(loom_4b.compute_cycles(c) for c in alexnet_100.conv_layers())
        assert c1 < c2 < c4

    def test_multibit_more_energy_efficient(self, alexnet_results):
        # The multi-bit variants trade performance for energy efficiency; as
        # in the paper's Table 2, both LM2b and LM4b beat LM1b on efficiency
        # (LM4b vs LM2b depends on the network).
        base = alexnet_results["dpnn"]
        eff = {label: compare(alexnet_results[label], base).energy_efficiency
               for label in ("loom-1b", "loom-2b", "loom-4b")}
        assert eff["loom-2b"] > eff["loom-1b"]
        assert eff["loom-4b"] > eff["loom-1b"]

    def test_fc_performance_insensitive_to_bits_per_cycle(self, alexnet_results):
        fc1 = alexnet_results["loom-1b"].total_cycles("fc")
        fc4 = alexnet_results["loom-4b"].total_cycles("fc")
        assert fc4 <= fc1
        assert abs(fc1 - fc4) / fc1 < 0.01

    def test_area_ordering(self, loom_1b, loom_2b, loom_4b, dpnn_default):
        assert loom_1b.core_area_mm2() > loom_2b.core_area_mm2() > \
            loom_4b.core_area_mm2() > dpnn_default.core_area_mm2()


class TestEffectiveWeightPrecision:
    def test_table4_mode_faster_than_profile_mode(self):
        network = build_network("alexnet")
        network.attach_profile(
            get_paper_profile("alexnet", "100%", with_effective_weights=True))
        profile_loom = Loom(bits_per_cycle=1)
        effective_loom = Loom(bits_per_cycle=1,
                              use_effective_weight_precision=True)
        for conv in network.conv_layers():
            assert effective_loom.compute_cycles(conv) < \
                profile_loom.compute_cycles(conv)

    def test_mode_falls_back_when_no_effective_data(self, alexnet_100):
        effective_loom = Loom(use_effective_weight_precision=True)
        plain_loom = Loom()
        for lw in alexnet_100.compute_layers():
            assert effective_loom.compute_cycles(lw) == \
                plain_loom.compute_cycles(lw)


class TestTrafficAndStorage:
    def test_weight_traffic_scales_with_profile_precision(self, alexnet_100,
                                                          loom_1b, dpnn_default):
        conv1 = alexnet_100.conv_layers()[0]  # Pw = 11
        loom_result = loom_1b.simulate_layer(conv1)
        dpnn_result = dpnn_default.simulate_layer(conv1)
        assert loom_result.weight_bits_read == pytest.approx(
            dpnn_result.weight_bits_read * 11 / 16)

    def test_activation_traffic_scales_with_profile_precision(self, alexnet_100,
                                                              loom_1b,
                                                              dpnn_default):
        conv1 = alexnet_100.conv_layers()[0]  # Pa = 9
        loom_result = loom_1b.simulate_layer(conv1)
        dpnn_result = dpnn_default.simulate_layer(conv1)
        assert loom_result.activation_bits_read == pytest.approx(
            dpnn_result.activation_bits_read * 9 / 16)


class TestAlternativeTiling:
    def test_window_fanout_preserves_sip_count(self):
        loom = Loom(window_fanout=4)
        assert loom.geometry.num_sips == 2048
        assert loom.geometry.filter_rows == 32

    def test_window_fanout_helps_small_filter_layers(self, googlenet_100):
        rigid = Loom(bits_per_cycle=1)
        fanned = Loom(bits_per_cycle=1, window_fanout=4)
        # Layers with few filters but many windows benefit from the
        # window-major organisation.
        small_filter_layers = [
            lw for lw in googlenet_100.conv_layers()
            if lw.layer.out_channels <= 32
        ]
        assert small_filter_layers
        for lw in small_filter_layers:
            assert fanned.compute_cycles(lw) < rigid.compute_cycles(lw)

    def test_cascading_toggle(self, googlenet_100):
        with_cascade = Loom(use_cascading=True)
        without = Loom(use_cascading=False)
        fc = googlenet_100.fc_layers()[0]  # 1000 outputs < 2048 SIPs
        assert with_cascade.compute_cycles(fc) < without.compute_cycles(fc)
