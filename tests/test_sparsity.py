"""Tests for the weight-sparsity analysis extension (repro.core.sparsity)."""

import numpy as np
import pytest

from repro.core.sparsity import (
    LayerSparsity,
    analyze_weight_sparsity,
    sparse_speedup_bound,
)


class TestAnalyzeWeightSparsity:
    def test_dense_tensor(self):
        stats = analyze_weight_sparsity(np.ones(64, dtype=np.int64), "dense")
        assert stats.weight_sparsity == 0.0
        assert stats.group_sparsity == 0.0
        assert stats.skip_speedup_bound == 1.0

    def test_all_zero_tensor(self):
        stats = analyze_weight_sparsity(np.zeros(64, dtype=np.int64), "zero")
        assert stats.weight_sparsity == 1.0
        assert stats.group_sparsity == 1.0
        assert stats.skip_speedup_bound == float("inf")

    def test_half_zero_groups(self):
        codes = np.concatenate([np.zeros(32, dtype=np.int64),
                                np.ones(32, dtype=np.int64)])
        stats = analyze_weight_sparsity(codes, group_size=16)
        assert stats.total_groups == 4
        assert stats.zero_groups == 2
        assert stats.group_sparsity == 0.5
        assert stats.skip_speedup_bound == pytest.approx(2.0)

    def test_scattered_zeros_do_not_make_groups_skippable(self):
        codes = np.ones(64, dtype=np.int64)
        codes[::2] = 0  # 50% weight sparsity, but every group has non-zeros
        stats = analyze_weight_sparsity(codes, group_size=16)
        assert stats.weight_sparsity == 0.5
        assert stats.group_sparsity == 0.0

    def test_padding_does_not_create_fake_zero_groups(self):
        codes = np.ones(17, dtype=np.int64)  # pads to 32 = 2 groups
        stats = analyze_weight_sparsity(codes, group_size=16)
        assert stats.total_groups == 2
        assert stats.zero_groups == 0

    def test_empty_tensor(self):
        stats = analyze_weight_sparsity(np.array([], dtype=np.int64))
        assert stats.total_weights == 0
        assert stats.weight_sparsity == 0.0

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            analyze_weight_sparsity(np.ones(4, dtype=np.int64), group_size=0)


class TestSparseSpeedupBound:
    def test_weighted_by_layer_cycles(self):
        per_layer = {
            "a": LayerSparsity("a", 100, 50, 10, 5, 16),   # 50% skippable
            "b": LayerSparsity("b", 100, 0, 10, 0, 16),    # dense
        }
        cycles = {"a": 100.0, "b": 100.0}
        # Layer a halves, layer b unchanged: 200 -> 150.
        assert sparse_speedup_bound(per_layer, cycles) == pytest.approx(200 / 150)

    def test_missing_cycles_rejected(self):
        per_layer = {"a": LayerSparsity("a", 10, 0, 1, 0, 16)}
        with pytest.raises(ValueError):
            sparse_speedup_bound(per_layer, {})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparse_speedup_bound({}, {})

    def test_pruned_synthetic_network_bound(self, rng):
        """A magnitude-pruned synthetic layer yields a meaningful bound."""
        from repro.workloads.synthetic import SyntheticTensorGenerator
        generator = SyntheticTensorGenerator(seed=0)
        codes = generator.weights(4096, precision_bits=11)
        # Prune the smallest 70% by magnitude, then zero whole groups where
        # everything was pruned.
        threshold = np.quantile(np.abs(codes), 0.7)
        pruned = np.where(np.abs(codes) < threshold, 0, codes)
        stats = analyze_weight_sparsity(pruned, "pruned")
        assert stats.weight_sparsity >= 0.65
        bound = sparse_speedup_bound({"pruned": stats}, {"pruned": 1000.0})
        assert bound >= 1.0
