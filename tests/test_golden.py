"""Golden-file regression suite: per-network summary snapshots.

Every zoo network has a committed JSON snapshot under ``tests/golden/``
holding its simulated totals (cycles, energy, per-kind cycle split, traffic)
for each stock design on the 100% profile, plus the network's structural
aggregates.  The comparator asserts *exact* equality -- the engines are
deterministic float64 arithmetic, so any drift means a model change, and a
refactor cannot silently shift reproduced numbers.

Regeneration is explicit::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

then inspect the diff and commit the new snapshots with the change that
justified them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import _run_designs as design_matrix
from repro.nn import available_networks, build_network
from repro.sim.jobs import NetworkSpec, SimJob
from repro.sim.jobs.spec import execute_job

GOLDEN_DIR = Path(__file__).parent / "golden"


def snapshot(network: str) -> dict:
    """Build the summary snapshot for one network (100% profile)."""
    built = build_network(network)
    data = {
        "network": network,
        "accuracy": "100%",
        "total_macs": built.total_macs(),
        "total_weights": built.total_weights(),
        "designs": {},
    }
    for label, spec in design_matrix():
        result = execute_job(SimJob(
            network=NetworkSpec(network),
            accelerator=spec,
        ))
        data["designs"][label] = {
            "layers": len(result.layers),
            "total_cycles": result.total_cycles(),
            "total_energy_pj": result.total_energy_pj(),
            "total_traffic_bits": result.total_traffic_bits(),
            "cycles_by_kind": {
                layer_kind: result.total_cycles(layer_kind)
                for layer_kind in ("conv", "matmul", "fc")
            },
        }
    return data


def golden_path(network: str) -> Path:
    return GOLDEN_DIR / f"{network}.json"


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


class TestGoldenSnapshots:
    @pytest.mark.parametrize("network", available_networks())
    def test_summary_matches_committed_snapshot(self, network, update_golden):
        current = snapshot(network)
        path = golden_path(network)
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(current, indent=2, sort_keys=True)
                            + "\n")
            return
        assert path.exists(), (
            f"no golden snapshot for {network!r}; run "
            f"pytest tests/test_golden.py --update-golden and commit "
            f"{path.name}"
        )
        committed = json.loads(path.read_text())
        assert current == committed, (
            f"{network}: simulated summary drifted from {path.name}; if the "
            f"model change is intentional, regenerate with --update-golden "
            f"and commit the diff"
        )

    def test_every_snapshot_has_a_network(self):
        """Stale snapshots (for removed networks) must not linger."""
        committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
        assert committed == set(available_networks())

    def test_snapshots_detect_drift(self, update_golden):
        """The comparator must actually fail on a perturbed snapshot."""
        if update_golden:
            pytest.skip("regenerating snapshots")
        committed = json.loads(golden_path("alexnet").read_text())
        perturbed = json.loads(json.dumps(committed))
        perturbed["designs"]["loom-1b"]["total_cycles"] += 1.0
        assert perturbed != snapshot("alexnet")
