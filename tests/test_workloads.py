"""Tests for the synthetic workload generators (repro.workloads)."""

import numpy as np
import pytest

from repro.nn.layers import TensorShape
from repro.workloads.datasets import synthetic_image, synthetic_image_batch
from repro.workloads.synthetic import (
    SyntheticTensorGenerator,
    synthetic_activation_codes,
    synthetic_weight_codes,
)


class TestSyntheticActivations:
    def test_range_and_dtype(self):
        codes = synthetic_activation_codes(1000, precision_bits=8, seed=0)
        assert codes.dtype == np.int64
        assert codes.min() >= 0
        assert codes.max() == 255  # the profile precision is exercised

    def test_sparsity_respected(self):
        generator = SyntheticTensorGenerator(seed=0, sparsity=0.6)
        codes = generator.activations(20_000, precision_bits=8)
        zero_fraction = float(np.mean(codes == 0))
        assert 0.5 <= zero_fraction <= 0.7

    def test_heavy_concentration_near_zero(self):
        codes = synthetic_activation_codes(20_000, precision_bits=10, seed=1)
        assert np.median(codes) < (1 << 10) / 8

    def test_reproducible_with_seed(self):
        a = synthetic_activation_codes(100, 8, seed=42)
        b = synthetic_activation_codes(100, 8, seed=42)
        assert np.array_equal(a, b)

    def test_validation(self):
        generator = SyntheticTensorGenerator()
        with pytest.raises(ValueError):
            generator.activations(0, 8)
        with pytest.raises(ValueError):
            generator.activations(10, 0)
        with pytest.raises(ValueError):
            SyntheticTensorGenerator(sparsity=1.0)
        with pytest.raises(ValueError):
            SyntheticTensorGenerator(tail_exponent=0.0)


class TestSyntheticWeights:
    def test_signed_range(self):
        codes = synthetic_weight_codes(5000, precision_bits=11, seed=0)
        limit = (1 << 10) - 1
        assert codes.min() >= -limit - 1
        assert codes.max() == limit

    def test_roughly_zero_centred(self):
        codes = synthetic_weight_codes(20_000, precision_bits=11, seed=3)
        assert abs(float(np.mean(codes))) < (1 << 10) * 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTensorGenerator().weights(10, 1)

    def test_layer_pair(self):
        generator = SyntheticTensorGenerator(seed=0)
        acts, weights = generator.layer_pair(100, 200, 8, 10)
        assert acts.shape == (100,)
        assert weights.shape == (200,)


class TestSyntheticImages:
    def test_shape_and_determinism(self):
        shape = TensorShape(3, 32, 32)
        a = synthetic_image(shape, seed=1)
        b = synthetic_image(shape, seed=1)
        c = synthetic_image(shape, seed=2)
        assert a.shape == (3, 32, 32)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_zero_centred_like_mean_subtracted_input(self):
        image = synthetic_image(TensorShape(3, 64, 64), seed=0)
        assert abs(float(image.mean())) < 30.0
        assert image.std() > 5.0

    def test_requires_spatial_shape(self):
        with pytest.raises(ValueError):
            synthetic_image(TensorShape(10))

    def test_batch(self):
        batch = synthetic_image_batch(TensorShape(3, 16, 16), batch=4, seed=0)
        assert batch.shape == (4, 3, 16, 16)
        assert not np.array_equal(batch[0], batch[1])
        with pytest.raises(ValueError):
            synthetic_image_batch(TensorShape(3, 16, 16), batch=0)
