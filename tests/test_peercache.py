"""Tests for the cluster-shared cache tier (repro.cluster.peercache).

The acceptance contract of the peer-cache ISSUE:

* ``PeerCacheBackend`` unit behaviour: local hits never touch the network,
  peer hits are fetched and copied into the local tier, a slow or dead peer
  degrades gracefully to local compute within the timeout budget, and
  concurrent misses of one key share a single peer fetch (single-flight);
* cluster integration: a key simulated on shard A is a **cache hit**
  (status ``"cached"``) after failover routes it to shard B -- the
  coordinator's survivor probe answers >= 90% of a dead shard's
  already-simulated keys from the peer tier instead of re-simulating;
* a peer-timeout fault injection still completes the batch bit-identically
  via local compute;
* the new ``loom_peer_cache_*`` series appear on worker ``/metrics``.
"""

import contextlib
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterCoordinator, ClusterWorker, PeerCacheBackend
from repro.cluster.ring import ConsistentHashRing
from repro.serve import ServeClient
from repro.sim.jobs import JobExecutor
from repro.sim.results import LayerResult, NetworkResult
from repro.sim.validate import compare_layer_results

MATRIX = [{"network": network, "accelerator": accelerator}
          for network in ("alexnet", "nin")
          for accelerator in ("loom", "dpnn", "dstripes")]

KEY = "k" * 64


def _result(cycles=100.0, network="netA", accelerator="AccX"):
    result = NetworkResult(network=network, accelerator=accelerator,
                           clock_ghz=1.0)
    result.add(LayerResult(layer_name="conv1", layer_kind="conv",
                           cycles=cycles, energy_pj=5.5, macs=10))
    return result


@contextlib.contextmanager
def peer_cluster(n=2, coordinator_kwargs=None):
    """A started peer-cache-enabled coordinator + n workers + client."""
    workers = [ClusterWorker() for _ in range(n)]
    for worker in workers:
        worker.start()
    coordinator = ClusterCoordinator(
        [worker.url for worker in workers],
        health_interval_s=60.0,  # request-path failover only: deterministic
        **(coordinator_kwargs or {}))
    coordinator.start()
    try:
        yield coordinator, workers, ServeClient(coordinator.url,
                                                timeout_s=120.0)
    finally:
        coordinator.stop()
        for worker in workers:
            worker.stop()


@contextlib.contextmanager
def black_hole():
    """A TCP endpoint that accepts connections and never answers (the
    slow-peer fault: connects fine, then eats the timeout budget)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    accepted = []
    stop = threading.Event()

    def _accept() -> None:
        listener.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                continue
            accepted.append(conn)  # hold it open, say nothing

    thread = threading.Thread(target=_accept, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{listener.getsockname()[1]}"
    finally:
        stop.set()
        thread.join(timeout=2.0)
        for conn in accepted:
            conn.close()
        listener.close()


class TestPeerCacheUnit:
    def test_local_hit_never_asks_the_peer(self):
        backend = PeerCacheBackend(timeout_s=0.2)
        # The ring routes everything to an address that would explode if
        # contacted; a local hit must answer before routing even matters.
        backend.configure(["http://self:1", "http://peer:1"],
                          self_url="http://self:1")
        backend.local_store(KEY, _result())
        loaded = backend.load(KEY)
        assert loaded is not None
        assert loaded.to_dict() == _result().to_dict()
        assert backend.peer_hits == backend.peer_misses == 0
        assert backend.peer_timeouts == 0
        backend.close()

    def test_unconfigured_backend_behaves_like_its_local_tier(self):
        backend = PeerCacheBackend()
        assert backend.load(KEY) is None  # no ring: a plain local miss
        backend.store(KEY, _result())    # and no write-through anywhere
        assert backend.load(KEY).to_dict() == _result().to_dict()
        assert backend.peer_hits == backend.peer_timeouts == 0
        backend.close()

    def test_peer_hit_is_fetched_and_copied_into_the_local_tier(self):
        with ClusterWorker() as peer:
            peer.core.cache.put(KEY, _result(cycles=42.0))
            backend = PeerCacheBackend(self_url="http://nowhere:1",
                                       timeout_s=5.0, write_through=False)
            backend.configure([peer.url, "http://nowhere:1"],
                              self_url="http://nowhere:1")
            loaded = backend.load(KEY)
            assert loaded is not None
            assert loaded.to_dict() == _result(cycles=42.0).to_dict()
            assert backend.peer_hits == 1
            # The answer was copied locally: the next load is a local hit,
            # not a second network fetch.
            assert backend.load(KEY) is not None
            assert backend.peer_hits == 1
            backend.close()

    def test_peer_miss_is_counted_and_returns_none(self):
        with ClusterWorker() as peer:
            backend = PeerCacheBackend(self_url="http://nowhere:1",
                                       timeout_s=5.0)
            backend.configure([peer.url, "http://nowhere:1"],
                              self_url="http://nowhere:1")
            assert backend.load(KEY) is None
            assert backend.peer_misses == 1
            assert backend.peer_hits == 0
            backend.close()

    def test_slow_peer_times_out_within_budget_and_degrades(self):
        with black_hole() as url:
            backend = PeerCacheBackend(self_url="http://nowhere:1",
                                       timeout_s=0.3)
            backend.configure([url, "http://nowhere:1"],
                              self_url="http://nowhere:1")
            started = time.monotonic()
            assert backend.load(KEY) is None  # caller computes locally
            elapsed = time.monotonic() - started
            assert elapsed < 2.0  # the strict budget, not a hung socket
            assert backend.peer_timeouts >= 1
            backend.close()

    def test_dead_peer_cooldown_skips_repeat_timeouts(self):
        # Connection refused (no listener) -> cooldown: the second miss
        # must not pay another connection attempt.
        backend = PeerCacheBackend(self_url="http://nowhere:1",
                                   timeout_s=0.5, dead_peer_cooldown_s=30.0)
        backend.configure(["http://127.0.0.1:9", "http://nowhere:1"],
                          self_url="http://nowhere:1")
        assert backend.load(KEY) is None
        first = backend.peer_timeouts
        assert first >= 1
        started = time.monotonic()
        assert backend.load("x" * 64) is None
        assert time.monotonic() - started < 0.2  # skipped, not re-dialed
        assert backend.peer_timeouts == first + 1
        backend.close()

    def test_single_flight_shares_one_fetch_across_concurrent_misses(self):
        backend = PeerCacheBackend(self_url="http://nowhere:1",
                                   timeout_s=5.0)
        backend.configure(["http://peer:1", "http://nowhere:1"],
                          self_url="http://nowhere:1")
        fetches = []
        release = threading.Event()
        shared = _result(cycles=7.0)

        def fake_fetch(peer, key):
            fetches.append((peer, key))
            release.wait(timeout=5.0)
            return shared

        backend._fetch_from_peer = fake_fetch
        outcomes = []
        threads = [threading.Thread(
            target=lambda: outcomes.append(backend.load(KEY)))
            for _ in range(6)]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # let every thread reach the flight
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(fetches) == 1  # one leader fetched; followers shared
        assert len(outcomes) == 6
        assert all(out is shared for out in outcomes)
        backend.close()

    def test_write_through_replicates_to_the_failover_target(self):
        with ClusterWorker() as a, ClusterWorker() as b:
            a.configure_peers([a.url, b.url], self_url=a.url)
            backend = a.peer_cache
            # The replica target is the first ring node that is not A --
            # which is B in a two-node ring: exactly where A's keys land
            # if A dies.
            assert backend.peer_for(KEY) == b.url
            backend.store(KEY, _result(cycles=9.0))
            assert backend.flush_writes(timeout_s=10.0)
            assert backend.peer_writes == 1
            request = urllib.request.Request(b.url + f"/cache/{KEY}")
            with urllib.request.urlopen(request, timeout=10.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["key"] == KEY
            assert NetworkResult.from_dict(payload["result"]).to_dict() \
                == _result(cycles=9.0).to_dict()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            PeerCacheBackend(timeout_s=0.0)

    def test_memory_tier_bounds_entries_lru(self):
        backend = PeerCacheBackend(max_memory_entries=2)
        for index in range(3):
            backend.local_store(f"key-{index}" * 8, _result(cycles=index))
        assert len(backend) == 2
        assert backend.local_load("key-0" * 8) is None  # evicted oldest
        assert backend.local_load("key-2" * 8) is not None
        backend.close()

    def test_stats_dict_reports_peer_counters(self):
        backend = PeerCacheBackend(timeout_s=0.7, write_through=False)
        backend.configure(["http://a:1", "http://b:1"],
                          self_url="http://a:1")
        stats = backend.stats_dict()
        assert stats["backend"] == "peer cache"
        assert stats["peers"] == 1
        assert stats["timeout_s"] == 0.7
        assert stats["write_through"] is False
        assert {"peer_hits", "peer_misses", "peer_timeouts",
                "peer_writes", "peer_write_errors"} <= set(stats)
        assert "local" in stats
        backend.close()


class TestRingPush:
    def test_coordinator_pushes_membership_at_start(self):
        with peer_cluster(n=2) as (coordinator, workers, client):
            for worker in workers:
                assert worker.peer_cache is not None
                assert worker.peer_cache.self_url == worker.url
                assert set(worker.peer_cache.ring.nodes) \
                    == {w.url for w in workers}
                assert coordinator.shards[worker.url].ring_pushed

    def test_no_peer_cache_keeps_workers_shared_nothing(self):
        with peer_cluster(
                n=2, coordinator_kwargs={"peer_cache": False}
        ) as (coordinator, workers, client):
            for worker in workers:
                assert worker.peer_cache is None
                assert not coordinator.shards[worker.url].ring_pushed

    def test_ring_payload_overrides_timeout_and_write_through(self):
        with ClusterWorker() as worker:
            payload = json.dumps({"nodes": [worker.url, "http://other:1"],
                                  "self": worker.url,
                                  "timeout_ms": 250.0,
                                  "write_through": False}).encode("utf-8")
            request = urllib.request.Request(
                worker.url + "/ring", data=payload,
                headers={"Content-Type": "application/json"}, method="POST")
            with urllib.request.urlopen(request, timeout=10.0) as response:
                answer = json.loads(response.read().decode("utf-8"))
            assert answer == {"ok": True, "peers": 1, "self": worker.url}
            assert worker.peer_cache.timeout_s == pytest.approx(0.25)
            assert worker.peer_cache.write_through is False

    def test_bad_ring_payload_answers_400(self):
        with ClusterWorker() as worker:
            request = urllib.request.Request(
                worker.url + "/ring",
                data=json.dumps({"nodes": []}).encode("utf-8"),
                headers={"Content-Type": "application/json"}, method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 400

    def test_metrics_page_grows_the_peer_cache_series(self):
        with peer_cluster(n=2) as (coordinator, workers, client):
            with urllib.request.urlopen(workers[0].url + "/metrics",
                                        timeout=10.0) as response:
                text = response.read().decode("utf-8")
            for series in ("loom_peer_cache_hits_total",
                           "loom_peer_cache_misses_total",
                           "loom_peer_cache_timeouts_total",
                           "loom_peer_cache_fetch_seconds_bucket"):
                assert series in text


class TestFailoverCacheHits:
    def test_dead_shards_keys_answer_from_the_peer_tier(self):
        with peer_cluster(n=2) as (coordinator, workers, client):
            first = client.submit_points(MATRIX)
            assert {entry.status for entry in first} == {"executed"}
            # Let every write-through replica land before the kill.
            for worker in workers:
                assert worker.peer_cache.flush_writes(timeout_s=30.0)
            victim, survivor = workers
            victim_keys = [entry.key for entry in first
                           if coordinator.ring.node_for(entry.key)
                           == victim.url]
            assert victim_keys  # six keys over two shards: both own some
            victim._server.stop(drain_timeout_s=0.0)

            again = client.submit_points(MATRIX)
            assert [entry.key for entry in again] \
                == [entry.key for entry in first]
            # >= 90% of the dead shard's already-simulated keys must come
            # back from the peer tier (status "cached"), not re-simulation.
            by_key = {entry.key: entry for entry in again}
            cached = [key for key in victim_keys
                      if by_key[key].status == "cached"]
            assert len(cached) >= 0.9 * len(victim_keys)
            assert coordinator.stats.peer_cache_answers >= len(cached)
            assert coordinator._peer_cache_hits_total.value() \
                >= len(cached)
            # Bit-identical to the original run, every field of every layer.
            for entry, original in zip(again, first):
                assert compare_layer_results(
                    entry.result.layers, original.result.layers) == []

    def test_peer_timeout_fault_still_completes_bit_identically(self):
        from repro.explore.space import canonical_point, point_to_job

        with peer_cluster(
                n=2, coordinator_kwargs={"peer_cache": False}
        ) as (coordinator, workers, client), black_hole() as hole:
            # Fault injection: every worker's peer tier routes all misses
            # to a black hole (connects, never answers) on a short budget.
            for worker in workers:
                worker.configure_peers([worker.url, hole],
                                       self_url=worker.url,
                                       timeout_s=0.25)
            entries = client.submit_points(MATRIX)
            assert {entry.status for entry in entries} == {"executed"}
            timeouts = sum(worker.peer_cache.peer_timeouts
                           for worker in workers)
            assert timeouts > 0  # the fault was actually exercised
            # Degraded-mode results are bit-identical to in-process runs.
            jobs = [point_to_job(canonical_point(p)) for p in MATRIX]
            with JobExecutor() as executor:
                reference = executor.run(jobs, engine="batched")
            for entry, expected in zip(entries, reference):
                assert compare_layer_results(entry.result.layers,
                                             expected.layers) == []

    def test_stats_surface_the_peer_cache_configuration(self):
        with peer_cluster(
                n=2, coordinator_kwargs={"peer_timeout_s": 0.5}
        ) as (coordinator, workers, client):
            with urllib.request.urlopen(coordinator.url + "/stats",
                                        timeout=10.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["peer_cache"] == {"enabled": True,
                                            "timeout_s": 0.5,
                                            "write_through": True}
            worker_stats = payload["workers"][workers[0].url]
            assert worker_stats["store"]["backend"] == "peer cache"
            assert worker_stats["store"]["peers"] == 1
