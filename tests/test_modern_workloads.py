"""Tests for the modern-workload zoo: grouped/depthwise convolution,
residual ``Add`` graphs, attention ``MatMul`` work, and the structural
override plumbing (``groups`` / ``heads``) through build, serialisation,
explore and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.explore import Axis, SweepSpec
from repro.nn import (
    Add,
    MatMul,
    Network,
    ReferenceModel,
    available_networks,
    build_network,
    network_from_dict,
    network_to_dict,
    run_reference,
)
from repro.nn.layers import Conv2D, Pool2D, Softmax, TensorShape
from repro.nn.zoo import modern_networks
from repro.quant import get_paper_profile
from repro.sim.jobs import NetworkSpec, network_kind_counts
from repro.sim.jobs.spec import build_spec_network


class TestZooStructure:
    def test_mobilenet_is_half_depthwise(self):
        network = build_network("mobilenet_v1")
        convs = [lw.layer for lw in network.conv_layers()]
        depthwise = [c for c in convs if c.groups > 1]
        assert len(convs) == 27
        assert len(depthwise) == 13
        assert all(c.groups == c.out_channels for c in depthwise)

    def test_mobilenet_mac_count_matches_publication(self):
        # Howard et al. report ~569M mult-adds for the 224x224 1.0 model.
        gmacs = build_network("mobilenet_v1").total_macs() / 1e9
        assert 0.54 <= gmacs <= 0.60

    def test_resnet18_residual_wiring(self):
        network = build_network("resnet18")
        adds = [layer for layer in network.layers if isinstance(layer, Add)]
        assert len(adds) == 8
        # A non-downsample block adds the block input back in.
        assert network.inputs_of("layer1_1_add") == (
            "layer1_1_conv2", "pool1")
        # A downsample block adds the 1x1-projected shortcut.
        assert network.inputs_of("layer2_1_add") == (
            "layer2_1_conv2", "layer2_1_downsample")
        gmacs = network.total_macs() / 1e9
        assert 1.6 <= gmacs <= 2.0  # ~1.8 GMACs published

    def test_resnet18_groups_override_scales_block_work(self):
        base = build_network("resnet18")
        grouped = build_network("resnet18", groups=4)
        assert grouped.total_macs() < base.total_macs()
        # Stem, downsample and classifier layers keep groups=1.
        assert grouped.layer("conv1").groups == 1
        assert grouped.layer("layer2_1_downsample").groups == 1
        assert grouped.layer("layer3_1_conv1").groups == 4

    def test_tiny_transformer_attention_wiring(self):
        network = build_network("tiny_transformer")
        counts = network_kind_counts("tiny_transformer")
        assert counts == {"conv": 0, "matmul": 16, "fc": 1}
        # The score and mixing multiplies read two activation operands.
        assert network.inputs_of("block1_qk") == ("block1_q", "block1_k")
        assert network.inputs_of("block1_av") == ("block1_attn", "block1_v")

    def test_tiny_transformer_heads_preserve_work_and_profile_shape(self):
        # Head count redistributes the attention pattern but neither the
        # layer count nor the projection/MLP work changes.
        for heads in (1, 2, 8, 16):
            network = build_network("tiny_transformer", heads=heads)
            network.attach_profile(get_paper_profile("tiny_transformer"))
            assert network.num_conv_groups() == 16

    @pytest.mark.parametrize("name", modern_networks())
    def test_profiles_attach_at_both_accuracies(self, name):
        for accuracy in ("100%", "99%"):
            network = build_network(name)
            network.attach_profile(get_paper_profile(
                name, accuracy, with_effective_weights=True))

    @pytest.mark.parametrize("name", modern_networks())
    def test_serialization_round_trip(self, name):
        data = network_to_dict(build_network(name))
        rebuilt = network_from_dict(data)
        assert network_to_dict(rebuilt) == data
        assert rebuilt.resolve_shapes() == build_network(name).resolve_shapes()


class TestOverrideValidation:
    def test_resnet18_rejects_indivisible_groups(self):
        with pytest.raises(ValueError, match="divide 64"):
            build_network("resnet18", groups=5)

    def test_tiny_transformer_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divide d_model"):
            build_network("tiny_transformer", heads=3)

    def test_unsupported_override_is_an_error(self):
        with pytest.raises(ValueError, match="does not support"):
            build_network("alexnet", groups=2)
        with pytest.raises(ValueError, match="does not support"):
            build_network("resnet18", heads=4)

    def test_spec_override_reaches_the_builder(self):
        network = build_spec_network(NetworkSpec("tiny_transformer", heads=8))
        qk = network.layer("block1_qk")
        assert qk.heads == 8


class TestAttentionSemantics:
    def test_matmul_attention_equals_numpy_reference(self, rng):
        """The graph-level attention equals a hand-written NumPy attention."""
        d_model, seq_len, heads = 8, 4, 2
        net = Network("attn", TensorShape(d_model, seq_len, 1))
        net.add(MatMul(name="q", out_features=d_model), inputs=["__input__"])
        net.add(MatMul(name="k", out_features=d_model), inputs=["__input__"])
        net.add(MatMul(name="v", out_features=d_model), inputs=["__input__"])
        net.add(MatMul(name="qk", out_features=heads * seq_len, heads=heads,
                       transpose_b=True), inputs=["q", "k"])
        net.add(Softmax(name="attn", axis=0, groups=heads))
        net.add(MatMul(name="av", out_features=d_model, heads=heads),
                inputs=["attn", "v"])
        model = ReferenceModel(net, rng=rng)
        x = rng.normal(size=(d_model, seq_len, 1))
        actual = model.forward(x).reshape(d_model, seq_len)

        X = x.reshape(d_model, seq_len)
        Q = model.layer_weights("q") @ X
        K = model.layer_weights("k") @ X
        V = model.layer_weights("v") @ X
        per_head = d_model // heads
        expected = np.empty_like(Q)
        for g in range(heads):
            sl = slice(g * per_head, (g + 1) * per_head)
            scores = K[sl].T @ Q[sl]
            scores = scores - scores.max(axis=0, keepdims=True)
            weights = np.exp(scores) / np.exp(scores).sum(axis=0,
                                                          keepdims=True)
            expected[sl] = V[sl] @ weights
        np.testing.assert_allclose(actual, expected, rtol=1e-12, atol=1e-12)

    def test_add_layer_sums_residual_branches(self, rng):
        net = Network("residual", TensorShape(4, 5, 5))
        net.add(Conv2D(name="conv", out_channels=4, kernel=3, padding=1,
                       bias=False))
        net.add(Add(name="add"), inputs=["conv", "__input__"])
        model = ReferenceModel(net, rng=rng)
        x = rng.normal(size=(4, 5, 5))
        conv_only = model.forward(x) - x
        np.testing.assert_allclose(model.forward(x), conv_only + x)

    def test_resnet18_reference_forward_runs(self, rng):
        out = run_reference(build_network("resnet18"),
                            rng.normal(size=(3, 224, 224)), rng=rng)
        assert out.shape == (1000,)
        assert np.isfinite(out).all()


class TestShapeErrorRegressions:
    """Impossible geometries fail with clear errors at resolution time."""

    def test_conv_kernel_larger_than_input_names_the_layer(self):
        conv = Conv2D(name="too_big", out_channels=4, kernel=7)
        with pytest.raises(ValueError, match="too_big"):
            conv.output_shape(TensorShape(3, 5, 5))
        with pytest.raises(ValueError, match="does not fit"):
            conv.output_shape(TensorShape(3, 5, 5))

    def test_conv_stride_collapsing_output_is_an_error(self):
        conv = Conv2D(name="strided", out_channels=1, kernel=3, stride=7)
        with pytest.raises(ValueError, match="output dimension would be"):
            conv.output_shape(TensorShape(1, 2, 2))

    def test_pool_kernel_larger_than_input_names_the_layer(self):
        pool = Pool2D(name="bad_pool", kernel=9, stride=2)
        with pytest.raises(ValueError, match="bad_pool"):
            pool.output_shape(TensorShape(3, 4, 4))

    def test_bad_geometry_fails_at_network_resolution(self):
        net = Network("bad", TensorShape(3, 5, 5))
        net.add(Conv2D(name="huge", out_channels=8, kernel=11))
        with pytest.raises(ValueError, match="huge"):
            net.resolve_shapes()
        with pytest.raises(ValueError, match="huge"):
            net.compute_layers()

    def test_tensor_shape_validation(self):
        with pytest.raises(ValueError, match="channels"):
            TensorShape(0)
        with pytest.raises(ValueError, match="both"):
            TensorShape(3, 5, None)
        with pytest.raises(ValueError, match="spatial"):
            TensorShape(3, 0, 5)

    def test_add_shape_mismatch_is_an_error(self):
        net = Network("bad_add", TensorShape(3, 8, 8))
        net.add(Conv2D(name="narrow", out_channels=3, kernel=3))
        net.add(Add(name="mismatch"), inputs=["narrow", "__input__"])
        with pytest.raises(ValueError, match="same shape"):
            net.resolve_shapes()

    def test_add_requires_two_inputs(self):
        net = Network("one_armed", TensorShape(3, 8, 8))
        with pytest.raises(ValueError, match="at least two"):
            net.add(Add(name="add"), inputs=["__input__"])

    def test_matmul_b_operand_geometry_is_validated(self):
        net = Network("bad_attn", TensorShape(8, 4, 1))
        net.add(MatMul(name="k", out_features=6), inputs=["__input__"])
        net.add(MatMul(name="qk", out_features=8, heads=2, transpose_b=True),
                inputs=["__input__", "k"])
        with pytest.raises(ValueError, match="qk"):
            net.resolve_shapes()

    def test_matmul_rejects_three_inputs(self):
        net = Network("bad", TensorShape(8, 4, 1))
        net.add(MatMul(name="a", out_features=8), inputs=["__input__"])
        net.add(MatMul(name="b", out_features=8), inputs=["__input__"])
        with pytest.raises(ValueError, match="one input.*or.*two"):
            net.add(MatMul(name="m", out_features=8),
                    inputs=["a", "b", "__input__"])

    def test_matmul_rejects_arity_incompatible_options(self):
        # bias has nowhere to live when B is a runtime operand, and
        # transpose_b is meaningless for a learned B: both would otherwise
        # be silently ignored.
        net = Network("bad_opts", TensorShape(8, 4, 1))
        net.add(MatMul(name="a", out_features=8), inputs=["__input__"])
        with pytest.raises(ValueError, match="bias is not supported"):
            net.add(MatMul(name="biased", out_features=4, heads=2, bias=True),
                    inputs=["__input__", "a"])
        with pytest.raises(ValueError, match="transpose_b only applies"):
            net.add(MatMul(name="transposed", out_features=8,
                           transpose_b=True), inputs=["a"])

    def test_matmul_heads_must_divide_features(self):
        matmul = MatMul(name="m", out_features=8, heads=2)
        with pytest.raises(ValueError, match="divisible by heads"):
            matmul.output_shape(TensorShape(7, 4, 1))
        with pytest.raises(ValueError, match="divisible by heads"):
            MatMul(name="m", out_features=7, heads=2)

    def test_kind_raises_for_non_compute_layers(self):
        with pytest.raises(ValueError, match="not a compute layer"):
            Pool2D(name="pool").kind
        assert MatMul(name="m", out_features=4).kind == "matmul"
        assert Conv2D(name="c", out_channels=4).kind == "conv"

    def test_softmax_group_validation(self):
        with pytest.raises(ValueError, match="requires axis=0"):
            Softmax(name="s", groups=2)
        softmax = Softmax(name="s", axis=0, groups=3)
        with pytest.raises(ValueError, match="divisible by groups"):
            softmax.output_shape(TensorShape(8, 4, 1))


class TestExploreAxes:
    def test_heads_axis_expands_into_distinct_jobs(self):
        space = SweepSpec(
            axes=[Axis("heads", (2, 4, 8))],
            base={"network": "tiny_transformer", "accelerator": "loom"},
        )
        jobs = space.unique_jobs()
        assert len(jobs) == 3
        assert sorted(job.network.heads for job in jobs) == [2, 4, 8]

    def test_groups_axis_expands_into_distinct_jobs(self):
        space = SweepSpec(
            axes=[Axis("groups", (1, 2, 4))],
            base={"network": "resnet18", "accelerator": "dstripes"},
        )
        jobs = space.unique_jobs()
        assert len(jobs) == 3
        assert sorted(job.network.groups for job in jobs) == [1, 2, 4]

    def test_value_invalid_override_points_are_skipped_not_fatal(self):
        # groups=3 does not divide resnet18's block widths: that point is
        # infeasible and skipped; the groups=2 point still runs.
        space = SweepSpec(
            axes=[Axis("groups", (2, 3))],
            base={"network": "resnet18", "accelerator": "loom"},
        )
        jobs = space.unique_jobs()
        assert [job.network.groups for job in jobs] == [2]

    def test_matmul_kind_reaches_comparison_table(self):
        from repro.sim.jobs import AcceleratorSpec, SimJob
        from repro.sim.jobs.spec import execute_job
        from repro.sim.report import comparison_table

        net = NetworkSpec("tiny_transformer")
        base = execute_job(SimJob(network=net,
                                  accelerator=AcceleratorSpec.create("dpnn")))
        loom = execute_job(SimJob(network=net,
                                  accelerator=AcceleratorSpec.create("loom")))
        table = comparison_table(base, {"loom-1b": loom},
                                 kinds=("matmul", "fc", None))
        assert "matmul perf" in table
        assert "n/a" not in table

    def test_network_axis_crossed_with_override_skips_infeasible_points(self):
        # alexnet does not take a groups override: those points are dropped
        # like constraint violations; the resnet18 points survive.
        space = SweepSpec(
            axes=[Axis("network", ("alexnet", "resnet18")),
                  Axis("groups", (2, 4))],
            base={"accelerator": "loom"},
        )
        jobs = space.unique_jobs()
        assert [(job.network.name, job.network.groups) for job in jobs] == \
            [("resnet18", 2), ("resnet18", 4)]

    def test_override_crossed_via_cli_explore(self, capsys):
        assert main(["explore", "--axis", "network=alexnet,resnet18",
                     "--base", "groups=4",
                     "--base", "accelerator=loom"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "1/1 feasible points" in out
        assert "alexnet" not in out.split("space:")[1].split("\n", 2)[2]


class TestModernCLI:
    def test_networks_listing_shows_matmul_column(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        for name in available_networks():
            assert name in out

    def test_run_command_reports_all_stock_designs(self, capsys):
        assert main(["run", "--network", "tiny_transformer",
                     "--heads", "8"]) == 0
        out = capsys.readouterr().out
        assert "heads=8" in out
        for label in ("dpnn", "stripes", "dstripes", "loom-1b", "loom-2b",
                      "loom-4b"):
            assert label in out

    def test_run_command_rejects_bad_override(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--network", "resnet18", "--groups", "5"])

    def test_summary_accepts_modern_networks(self, capsys):
        assert main(["summary", "--network", "mobilenet_v1"]) == 0
        assert "mobilenet_v1" in capsys.readouterr().out

    def test_summary_accepts_structural_overrides(self, capsys):
        assert main(["summary", "--network", "tiny_transformer",
                     "--heads", "2"]) == 0
        assert "tiny_transformer heads=2" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["summary", "--network", "alexnet", "--heads", "2"])

    def test_explore_heads_axis_via_cli(self, capsys):
        assert main(["explore", "--axis", "heads=2,4",
                     "--base", "network=tiny_transformer",
                     "--base", "accelerator=loom"]) == 0
        out = capsys.readouterr().out
        assert "heads" in out
        assert "2/2 feasible points" in out
