"""Tests for the declarative simulation-job pipeline (repro.sim.jobs).

Covers the ISSUE-mandated behaviours: content-key determinism and
invalidation, cache hit/miss semantics, parallel-vs-serial result identity,
corrupted on-disk entries being ignored, and the ``loom-repro all`` guarantee
that every unique (network, accelerator, configuration) job is simulated
exactly once across all experiment harnesses.
"""

import json

import pytest

from repro.accelerators import AcceleratorConfig
from repro.core import Loom
from repro.experiments import ablation, area, figure4, figure5, table2, table4
from repro.experiments.common import build_profiled_network, loom_spec
from repro.memory.dram import LPDDR4_4267
from repro.quant.dynamic import DynamicPrecisionModel
from repro.sim import run_network
from repro.sim.jobs import (
    AcceleratorSpec,
    JobExecutor,
    NetworkSpec,
    ResultCache,
    SimJob,
    build_accelerator,
    execute_job,
    job_key,
    network_layer_counts,
    spec_dict,
    use_executor,
)


def _job(network="alexnet", accuracy="100%", kind="loom", config=None, **options):
    return SimJob(
        network=NetworkSpec(network, accuracy),
        accelerator=AcceleratorSpec.create(kind, **options),
        config=config if config is not None else AcceleratorConfig(),
    )


class TestSpecsAndKeys:
    def test_same_spec_same_key(self):
        assert job_key(_job(bits_per_cycle=1)) == job_key(_job(bits_per_cycle=1))

    def test_network_changes_key(self):
        assert job_key(_job("alexnet")) != job_key(_job("nin"))

    def test_accuracy_changes_key(self):
        assert job_key(_job(accuracy="100%")) != job_key(_job(accuracy="99%"))

    def test_accelerator_option_changes_key(self):
        assert job_key(_job(bits_per_cycle=1)) != job_key(_job(bits_per_cycle=2))

    def test_config_knob_changes_key(self):
        base = _job(config=AcceleratorConfig())
        for changed in (
            AcceleratorConfig(equivalent_macs=256),
            AcceleratorConfig(clock_ghz=0.5),
            AcceleratorConfig(am_capacity_bytes=512 * 1024),
            AcceleratorConfig(dram=LPDDR4_4267),
            AcceleratorConfig(charge_offchip_energy=False),
        ):
            assert job_key(base) != job_key(
                _job(config=changed)), f"key ignored {changed}"

    def test_default_valued_options_are_normalised_away(self):
        # Loom(use_cascading=True) IS the default design; the specs (and
        # hence the cache keys) must coincide.
        assert loom_spec(use_cascading=True) == loom_spec()
        assert loom_spec(use_cascading=False) != loom_spec()

    def test_dpnn_key_ignores_precision_profile(self):
        # Bit-parallel designs do not exploit precision, so the same design
        # simulated under any profile shares one cache entry.
        k100 = job_key(_job(kind="dpnn", accuracy="100%"))
        k99 = job_key(_job(kind="dpnn", accuracy="99%"))
        assert k100 == k99
        assert job_key(_job(kind="stripes", accuracy="100%")) != \
            job_key(_job(kind="stripes", accuracy="99%"))

    def test_dynamic_precision_model_canonicalises(self):
        enabled = loom_spec(dynamic_precision=DynamicPrecisionModel(enabled=True))
        disabled = loom_spec(dynamic_precision=DynamicPrecisionModel(enabled=False))
        assert enabled != disabled
        assert job_key(_job(dynamic_precision=DynamicPrecisionModel(enabled=False))) \
            == job_key(_job(dynamic_precision=DynamicPrecisionModel(enabled=False)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown accelerator kind"):
            AcceleratorSpec.create("tpu")

    def test_nested_option_values_stay_hashable(self):
        # Lists and nested mappings must canonicalise to hashable tuples so
        # the spec can key the lru caches.
        spec = AcceleratorSpec.create(
            "loom", future_knob={"weights": [1, 2], "nested": {"a": True}})
        assert hash(spec) is not None
        assert spec == AcceleratorSpec.create(
            "loom", future_knob={"nested": {"a": True}, "weights": (1, 2)})

    def test_spec_dict_is_json_serialisable(self):
        payload = spec_dict(_job(config=AcceleratorConfig(dram=LPDDR4_4267)))
        round_trip = json.loads(json.dumps(payload, sort_keys=True))
        assert round_trip["network"]["name"] == "alexnet"
        assert round_trip["config"]["dram"]["name"] == "LPDDR4-4267"

    def test_network_layer_counts(self):
        assert network_layer_counts("nin") == (12, 0)
        assert network_layer_counts("googlenet") == (57, 1)


class TestExecution:
    def test_execute_job_matches_run_network(self):
        job = _job(bits_per_cycle=2)
        via_jobs = execute_job(job)
        legacy = run_network(Loom(bits_per_cycle=2),
                             build_profiled_network("alexnet", "100%"))
        assert [lr.cycles for lr in via_jobs.layers] == \
            [lr.cycles for lr in legacy.layers]
        assert via_jobs.total_energy_pj() == legacy.total_energy_pj()

    def test_results_ordered_like_submissions(self):
        jobs = [_job(kind="dpnn"), _job(bits_per_cycle=1), _job(kind="stripes")]
        results = JobExecutor().run(jobs)
        assert [r.accelerator for r in results] == ["DPNN", "Loom-1b", "Stripes"]

    def test_cache_hit_and_miss_semantics(self):
        executor = JobExecutor()
        job = _job()
        first = executor.run([job])[0]
        assert executor.stats.executed == 1
        assert executor.cache.stats.misses == 1
        second = executor.run([job])[0]
        assert second is first  # answered from the in-memory cache
        assert executor.stats.executed == 1
        assert executor.cache.stats.memory_hits == 1

    def test_batch_duplicates_deduplicated(self):
        executor = JobExecutor()
        results = executor.run([_job(), _job(), _job()])
        assert executor.stats.executed == 1
        assert executor.stats.dedup_hits == 2
        assert results[0] is results[1] is results[2]

    def test_no_cache_executes_every_submission(self):
        executor = JobExecutor(cache=None)
        executor.run([_job(), _job()])
        assert executor.stats.executed == 2

    def test_progress_events(self):
        events = []
        executor = JobExecutor(progress=events.append)
        executor.run([_job(), _job()])
        assert [e.status for e in events] == ["executed", "deduplicated"]
        executor.run([_job()])
        assert events[-1].status == "cached"

    def test_no_cache_progress_reports_every_execution(self):
        # Without a cache nothing is shared, so no event may claim it was.
        events = []
        executor = JobExecutor(cache=None, progress=events.append)
        executor.run([_job(), _job()])
        assert [e.status for e in events] == ["executed", "executed"]

    def test_progress_streams_during_execution(self):
        # Events must fire as jobs resolve, not after the whole batch.
        seen_during = []
        executor = JobExecutor()
        executor.progress = lambda event: seen_during.append(
            (event.status, executor.stats.executed))
        executor.run([_job(kind="dpnn"), _job(kind="stripes")])
        # Each "executed" event arrived while later jobs were still pending:
        # at the first event only one execution had been recorded.
        assert seen_during[0] == ("executed", 1)
        assert seen_during[1] == ("executed", 2)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            JobExecutor(workers=0)


class TestParallelExecution:
    def test_parallel_results_byte_identical_to_serial(self):
        jobs = [
            _job(network, kind=kind)
            for network in ("alexnet", "nin")
            for kind in ("dpnn", "stripes", "loom")
        ] + [_job("alexnet", config=AcceleratorConfig(equivalent_macs=256))]
        serial = JobExecutor(workers=1).run(jobs)
        with JobExecutor(workers=2) as executor:
            parallel = executor.run(jobs)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]


class TestDiskCache:
    def test_results_survive_to_disk(self, tmp_path):
        job = _job()
        with JobExecutor(cache=ResultCache(tmp_path)) as first:
            expected = first.run([job])[0]
        fresh = JobExecutor(cache=ResultCache(tmp_path))
        result = fresh.run([job])[0]
        assert fresh.stats.executed == 0
        assert fresh.cache.stats.disk_hits == 1
        assert result.to_dict() == expected.to_dict()

    def test_corrupted_entry_ignored_not_fatal(self, tmp_path):
        job = _job()
        cache = ResultCache(tmp_path)
        JobExecutor(cache=cache).run([job])
        entry = tmp_path / f"{job_key(job)}.json"
        assert entry.exists()
        entry.write_text("{not json at all", encoding="utf-8")
        fresh = JobExecutor(cache=ResultCache(tmp_path))
        result = fresh.run([job])[0]
        assert fresh.cache.stats.invalid_disk_entries == 1
        assert fresh.stats.executed == 1  # recomputed
        assert result.total_cycles() > 0
        # The bad entry was overwritten with a good one.
        assert json.loads(entry.read_text())["key"] == job_key(job)

    def test_truncated_and_mismatched_entries_ignored(self, tmp_path):
        job = _job()
        cache = ResultCache(tmp_path)
        JobExecutor(cache=cache).run([job])
        entry = tmp_path / f"{job_key(job)}.json"
        payload = json.loads(entry.read_text())
        payload["key"] = "0" * 64
        entry.write_text(json.dumps(payload), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.get(job_key(job)) is None
        assert fresh.stats.invalid_disk_entries == 1


class TestMemoryBound:
    """The optional LRU bound on the in-memory result dict (long-running
    processes must not grow without limit)."""

    @staticmethod
    def _fake_result(tag):
        from repro.sim.results import LayerResult, NetworkResult
        result = NetworkResult(network=tag, accelerator="AccX")
        result.add(LayerResult(layer_name="l", layer_kind="conv", cycles=1.0))
        return result

    def test_default_is_unbounded(self):
        cache = ResultCache()
        for index in range(100):
            cache.put(f"key{index}", self._fake_result(f"net{index}"))
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_lru_bound_evicts_least_recently_used(self):
        cache = ResultCache(max_memory_entries=3)
        for index in range(3):
            cache.put(f"key{index}", self._fake_result(f"net{index}"))
        assert cache.get("key0") is not None  # key1 is now the LRU entry
        cache.put("key3", self._fake_result("net3"))
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert cache.get("key1") is None
        assert cache.get("key0") is not None

    def test_evictions_fall_back_to_the_backend(self, tmp_path):
        # A bounded memory layer over a persistent backend: evicted entries
        # remain loadable (they come back as disk hits, not misses).
        cache = ResultCache(directory=tmp_path, max_memory_entries=1)
        cache.put("key0", self._fake_result("net0"))
        cache.put("key1", self._fake_result("net1"))  # evicts key0 from memory
        assert cache.stats.evictions == 1
        revived = cache.get("key0")
        assert revived is not None
        assert revived.network == "net0"
        assert cache.stats.disk_hits == 1

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="max_memory_entries"):
            ResultCache(max_memory_entries=0)

    def test_directory_and_backend_are_exclusive(self, tmp_path):
        from repro.sim.jobs import JsonDirBackend
        with pytest.raises(ValueError, match="not both"):
            ResultCache(tmp_path, backend=JsonDirBackend(tmp_path))

    def test_stats_to_dict_round_trips_every_counter(self):
        cache = ResultCache(max_memory_entries=1)
        cache.put("a", self._fake_result("a"))
        cache.put("b", self._fake_result("b"))
        cache.get("b")
        cache.get("missing")
        stats = cache.stats.to_dict()
        assert stats["stores"] == 2
        assert stats["evictions"] == 1
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1

    def test_threads_racing_one_cache_stay_consistent(self, tmp_path):
        # Two threads hammering the same key through one ResultCache (the
        # service's exact sharing pattern) must never corrupt an entry.
        import threading

        cache = ResultCache(directory=tmp_path, max_memory_entries=4)
        expected = self._fake_result("raced").to_dict()
        errors = []
        barrier = threading.Barrier(2)

        def worker():
            try:
                barrier.wait()
                for _ in range(50):
                    cache.put("raced", self._fake_result("raced"))
                    loaded = cache.get("raced")
                    if loaded is not None and loaded.to_dict() != expected:
                        errors.append("corrupt entry")
            except Exception as error:  # pragma: no cover
                errors.append(repr(error))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.get("raced").to_dict() == expected


class TestPipelineSharing:
    def test_all_experiments_simulate_each_unique_job_exactly_once(self):
        """The ``loom-repro all`` guarantee: one shared executor, no repeats.

        Runs every simulation-driven harness on one executor (as the CLI
        does) and asserts via the executor's statistics that no content key
        was ever simulated twice -- overlapping matrices (table2/figure4/
        area/table4's baseline) are answered from the shared cache instead.
        """
        executor = JobExecutor()
        table2.run(executor=executor)
        figure4.run(executor=executor)
        area.run(executor=executor)
        figure5.run(configs=(32, 128), executor=executor)
        table4.run(executor=executor)
        ablation.run(executor=executor)
        stats = executor.stats
        assert stats.executed > 0
        assert stats.max_executions_per_key == 1
        # Sharing must actually have happened across harnesses (area and the
        # table4 baseline are fully redundant, among others).
        assert stats.cache_hits > 0
        assert stats.executed < stats.submitted

    def test_use_executor_context_restores_previous_default(self):
        inner = JobExecutor()
        with use_executor(inner) as active:
            assert active is inner
            result = figure4.run(networks=("alexnet",))
            assert result.performance["alexnet"]
        assert inner.stats.executed > 0

    def test_build_accelerator_matches_direct_construction(self):
        loom = build_accelerator(loom_spec(bits_per_cycle=4),
                                 AcceleratorConfig(equivalent_macs=256))
        direct = Loom(AcceleratorConfig(equivalent_macs=256), bits_per_cycle=4)
        assert loom.name == direct.name
        assert loom.config == direct.config
        assert loom.core_area_mm2() == direct.core_area_mm2()


class TestModernLayerTypeCaching:
    """Content keys and on-disk round-trips for the modern layer types."""

    def test_groups_override_changes_key(self):
        base = SimJob(network=NetworkSpec("resnet18"),
                      accelerator=AcceleratorSpec.create("loom"))
        grouped = SimJob(network=NetworkSpec("resnet18", groups=4),
                         accelerator=AcceleratorSpec.create("loom"))
        assert job_key(base) != job_key(grouped)
        assert job_key(grouped) == job_key(SimJob(
            network=NetworkSpec("resnet18", groups=4),
            accelerator=AcceleratorSpec.create("loom"),
        ))

    def test_heads_override_changes_key(self):
        keys = {
            job_key(SimJob(network=NetworkSpec("tiny_transformer", heads=h),
                           accelerator=AcceleratorSpec.create("loom")))
            for h in (None, 2, 4, 8)
        }
        assert len(keys) == 4

    def test_overrides_appear_in_spec_dict(self):
        job = SimJob(network=NetworkSpec("tiny_transformer", heads=8),
                     accelerator=AcceleratorSpec.create("loom"))
        payload = json.loads(json.dumps(spec_dict(job)))
        assert payload["network"]["heads"] == 8
        # Absent overrides are omitted (not serialised as null) so content
        # keys of jobs that predate the override fields stay stable.
        assert "groups" not in payload["network"]
        plain = json.loads(json.dumps(spec_dict(_job("alexnet"))))
        assert "groups" not in plain["network"]
        assert "heads" not in plain["network"]

    def test_dpnn_normalisation_keeps_structural_overrides(self):
        # The DPNN key ignores precision profiles but must NOT collapse
        # different geometries (groups/heads change the simulated network).
        with_heads = SimJob(network=NetworkSpec("tiny_transformer", heads=8),
                            accelerator=AcceleratorSpec.create("dpnn"))
        without = SimJob(network=NetworkSpec("tiny_transformer"),
                         accelerator=AcceleratorSpec.create("dpnn"))
        assert job_key(with_heads) != job_key(without)

    @pytest.mark.parametrize("spec", [
        NetworkSpec("mobilenet_v1"),
        NetworkSpec("resnet18", groups=4),
        NetworkSpec("tiny_transformer", heads=8),
    ], ids=["depthwise", "grouped-residual", "attention"])
    def test_disk_round_trip_preserves_modern_results(self, tmp_path, spec):
        job = SimJob(network=spec, accelerator=AcceleratorSpec.create("loom"))
        with JobExecutor(cache=ResultCache(tmp_path)) as warm:
            (original,) = warm.run([job])
        # A fresh executor over the same directory must hit the disk and
        # reconstruct an identical result, including the matmul layer kind.
        with JobExecutor(cache=ResultCache(tmp_path)) as cold:
            (reloaded,) = cold.run([job])
        assert cold.cache.stats.disk_hits == 1
        assert cold.stats.executed == 0
        assert reloaded.to_dict() == original.to_dict()
        kinds = {layer.layer_kind for layer in reloaded.layers}
        if spec.name == "tiny_transformer":
            assert "matmul" in kinds

    def test_matmul_kind_survives_json(self, tmp_path):
        job = SimJob(network=NetworkSpec("tiny_transformer"),
                     accelerator=AcceleratorSpec.create("loom"))
        result = execute_job(job)
        cache = ResultCache(tmp_path)
        cache.put(job_key(job), result, spec=spec_dict(job))
        fresh = ResultCache(tmp_path).get(job_key(job))
        assert fresh is not None
        assert [layer.layer_kind for layer in fresh.layers] == \
            [layer.layer_kind for layer in result.layers]
