"""Tests for the network container (repro.nn.network)."""

import pytest

from repro.nn.layers import Concat, Conv2D, TensorShape
from repro.nn.network import Network
from repro.quant.precision import (
    BASELINE_PRECISION,
    LayerPrecision,
    NetworkPrecisionProfile,
)


def small_profile(conv_count, fc_count):
    return NetworkPrecisionProfile(
        network="test", accuracy_target="100%",
        conv_layers=[LayerPrecision(8, 10) for _ in range(conv_count)],
        fc_layers=[LayerPrecision(16, 9) for _ in range(fc_count)],
    )


class TestConstruction:
    def test_linear_chain_shapes(self, tiny_network):
        shapes = tiny_network.resolve_shapes()
        assert shapes["conv1"][1] == TensorShape(8, 16, 16)
        assert shapes["pool1"][1] == TensorShape(8, 8, 8)
        assert shapes["fc1"][1] == TensorShape(10)
        assert tiny_network.output_shape() == TensorShape(10)

    def test_duplicate_name_rejected(self):
        net = Network("n", TensorShape(3, 8, 8))
        net.add(Conv2D(name="conv", out_channels=4, kernel=1))
        with pytest.raises(ValueError):
            net.add(Conv2D(name="conv", out_channels=4, kernel=1))

    def test_unknown_input_rejected(self):
        net = Network("n", TensorShape(3, 8, 8))
        with pytest.raises(ValueError):
            net.add(Conv2D(name="conv", out_channels=4, kernel=1),
                    inputs=["missing"])

    def test_empty_inputs_rejected(self):
        net = Network("n", TensorShape(3, 8, 8))
        with pytest.raises(ValueError):
            net.add(Conv2D(name="conv", out_channels=4, kernel=1), inputs=[])

    def test_multiple_inputs_only_for_concat(self):
        net = Network("n", TensorShape(3, 8, 8))
        net.add(Conv2D(name="a", out_channels=4, kernel=1), inputs=["__input__"])
        net.add(Conv2D(name="b", out_channels=4, kernel=1), inputs=["__input__"])
        with pytest.raises(ValueError):
            net.add(Conv2D(name="c", out_channels=4, kernel=1), inputs=["a", "b"])

    def test_contains_and_lookup(self, tiny_network):
        assert "conv1" in tiny_network
        assert "nope" not in tiny_network
        assert tiny_network.layer("conv1").out_channels == 8
        with pytest.raises(KeyError):
            tiny_network.layer("nope")
        assert len(tiny_network) == 7

    def test_inputs_of(self, tiny_network):
        assert tiny_network.inputs_of("conv1") == ("__input__",)
        assert tiny_network.inputs_of("relu1") == ("conv1",)


class TestBranchesAndConcat:
    def build_branching(self):
        net = Network("branchy", TensorShape(8, 14, 14))
        net.add(Conv2D(name="b1", out_channels=16, kernel=1), inputs=["__input__"])
        net.add(Conv2D(name="b2_reduce", out_channels=4, kernel=1),
                inputs=["__input__"])
        net.add(Conv2D(name="b2", out_channels=8, kernel=3, padding=1),
                inputs=["b2_reduce"])
        net.add(Concat(name="merge", out_channels=24), inputs=["b1", "b2"])
        return net

    def test_concat_channel_sum(self):
        net = self.build_branching()
        shapes = net.resolve_shapes()
        assert shapes["merge"][1] == TensorShape(24, 14, 14)

    def test_concat_channel_mismatch_raises(self):
        net = Network("bad", TensorShape(8, 14, 14))
        net.add(Conv2D(name="b1", out_channels=16, kernel=1), inputs=["__input__"])
        net.add(Conv2D(name="b2", out_channels=8, kernel=1), inputs=["__input__"])
        net.add(Concat(name="merge", out_channels=99), inputs=["b1", "b2"])
        with pytest.raises(ValueError):
            net.resolve_shapes()

    def test_concat_spatial_mismatch_raises(self):
        net = Network("bad", TensorShape(8, 14, 14))
        net.add(Conv2D(name="b1", out_channels=16, kernel=1), inputs=["__input__"])
        net.add(Conv2D(name="b2", out_channels=8, kernel=3, stride=2),
                inputs=["__input__"])
        net.add(Concat(name="merge", out_channels=24), inputs=["b1", "b2"])
        with pytest.raises(ValueError):
            net.resolve_shapes()


class TestProfileBinding:
    def test_attach_and_lookup(self, tiny_network):
        tiny_network.attach_profile(small_profile(2, 1))
        layers = tiny_network.compute_layers()
        assert layers[0].precision.activation_bits == 8
        assert layers[0].precision.weight_bits == 10
        assert layers[2].precision.weight_bits == 9

    def test_default_precision_is_baseline(self, tiny_network):
        layers = tiny_network.compute_layers()
        assert all(lw.precision.activation_bits == BASELINE_PRECISION
                   for lw in layers)

    def test_wrong_conv_count_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.attach_profile(small_profile(3, 1))

    def test_wrong_fc_count_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.attach_profile(small_profile(2, 2))

    def test_precision_groups_share_profile_entry(self):
        net = Network("grouped", TensorShape(3, 8, 8))
        net.add(Conv2D(name="a", out_channels=4, kernel=1, precision_group=0))
        net.add(Conv2D(name="b", out_channels=4, kernel=1, precision_group=0))
        net.add(Conv2D(name="c", out_channels=4, kernel=1, precision_group=1))
        assert net.num_conv_groups() == 2
        profile = NetworkPrecisionProfile(
            network="grouped", accuracy_target="100%",
            conv_layers=[LayerPrecision(5, 10), LayerPrecision(9, 10)],
            fc_layers=[],
        )
        net.attach_profile(profile)
        layers = {lw.name: lw for lw in net.compute_layers()}
        assert layers["a"].precision.activation_bits == 5
        assert layers["b"].precision.activation_bits == 5
        assert layers["c"].precision.activation_bits == 9


class TestWorkAccounting:
    def test_compute_layer_properties(self, tiny_network):
        layers = tiny_network.compute_layers()
        conv1 = layers[0]
        assert conv1.is_conv
        assert conv1.macs == 3 * 9 * 8 * 16 * 16
        assert conv1.weight_count == 3 * 9 * 8
        assert conv1.input_activations == 3 * 16 * 16
        assert conv1.output_activations == 8 * 16 * 16

    def test_conv_and_fc_selectors(self, tiny_network):
        assert len(tiny_network.conv_layers()) == 2
        assert len(tiny_network.fc_layers()) == 1

    def test_totals(self, tiny_network):
        layers = tiny_network.compute_layers()
        assert tiny_network.total_macs() == sum(lw.macs for lw in layers)
        assert tiny_network.total_weights() == sum(lw.weight_count for lw in layers)
        assert tiny_network.max_layer_activations() > 0

    def test_summary_mentions_all_layers(self, tiny_network):
        text = tiny_network.summary()
        for layer in tiny_network.layers:
            assert layer.name in text
        assert "total MACs" in text
