"""Tests for per-group precision reduction (repro.quant.groups)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.groups import (
    GroupPrecisionStats,
    effective_precision,
    group_activation_precisions,
    group_weight_precisions,
)


class TestGroupActivationPrecisions:
    def test_uniform_small_values_need_few_bits(self):
        codes = np.full(512, 3)  # needs 2 bits
        stats = group_activation_precisions(codes, baseline_bits=8, group_size=256)
        assert stats.num_groups == 2
        assert stats.average_bits == 2.0
        assert stats.max_bits == 2

    def test_group_max_dominates(self):
        codes = np.zeros(256, dtype=np.int64)
        codes[100] = 255  # one big value forces 8 bits for the whole group
        stats = group_activation_precisions(codes, baseline_bits=8, group_size=256)
        assert stats.average_bits == 8.0

    def test_clamped_to_baseline(self):
        codes = np.full(256, 2 ** 12 - 1)
        stats = group_activation_precisions(codes, baseline_bits=8, group_size=256)
        assert stats.max_bits == 8

    def test_partial_group_padded_with_zeros(self):
        codes = np.full(100, 7)
        stats = group_activation_precisions(codes, baseline_bits=8, group_size=256)
        assert stats.num_groups == 1
        assert stats.average_bits == 3.0

    def test_empty_tensor(self):
        stats = group_activation_precisions(np.array([], dtype=np.int64),
                                            baseline_bits=8)
        assert stats.num_groups == 0
        assert stats.average_bits == 8.0

    def test_reduction_metric(self):
        codes = np.full(256, 15)  # 4 bits
        stats = group_activation_precisions(codes, baseline_bits=8, group_size=256)
        assert stats.reduction == pytest.approx(0.5)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_activation_precisions(np.array([1]), baseline_bits=8, group_size=0)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            group_activation_precisions(np.array([1]), baseline_bits=0)

    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=1, max_size=600),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=50)
    def test_group_precision_bounds(self, values, group_size):
        codes = np.array(values, dtype=np.int64)
        stats = group_activation_precisions(codes, baseline_bits=8,
                                            group_size=group_size)
        assert 1 <= stats.min_bits <= stats.max_bits <= 8
        assert stats.average_bits <= 8.0
        # Dynamic reduction never needs fewer bits than the largest value.
        needed = max(1, int(codes.max()).bit_length())
        assert stats.max_bits >= min(needed, 8)


class TestGroupWeightPrecisions:
    def test_signed_weights(self):
        codes = np.array([-8, 7, 3, -1] * 4)  # -8 needs 4 bits
        stats = group_weight_precisions(codes, baseline_bits=11, group_size=16)
        assert stats.num_groups == 1
        assert stats.average_bits == 4.0

    def test_per_group_variation(self):
        small = np.full(16, 1, dtype=np.int64)     # 2 bits signed
        large = np.full(16, -512, dtype=np.int64)  # 10 bits signed
        stats = group_weight_precisions(np.concatenate([small, large]),
                                        baseline_bits=11, group_size=16)
        assert stats.num_groups == 2
        assert stats.average_bits == pytest.approx((2 + 10) / 2)

    def test_average_below_baseline_for_gaussian_weights(self):
        rng = np.random.default_rng(0)
        codes = np.clip(np.round(rng.normal(0, 100, size=4096)), -1023, 1023)
        stats = group_weight_precisions(codes.astype(np.int64), baseline_bits=11)
        assert stats.average_bits < 11.0


class TestEffectivePrecision:
    def test_one_bit_per_cycle_equals_average(self):
        stats = GroupPrecisionStats(group_size=16, num_groups=2,
                                    precisions=np.array([3, 5]), baseline_bits=8)
        assert effective_precision(stats, bits_per_cycle=1) == pytest.approx(4.0)

    def test_two_bits_per_cycle_rounds_each_group_up(self):
        stats = GroupPrecisionStats(group_size=16, num_groups=2,
                                    precisions=np.array([3, 5]), baseline_bits=8)
        # ceil(3/2)=2 steps, ceil(5/2)=3 steps -> avg 2.5 steps -> 5.0 bits.
        assert effective_precision(stats, bits_per_cycle=2) == pytest.approx(5.0)

    def test_empty_stats_fall_back_to_baseline(self):
        stats = GroupPrecisionStats(group_size=16, num_groups=0,
                                    precisions=np.zeros(0, dtype=np.int64),
                                    baseline_bits=7)
        assert effective_precision(stats, bits_per_cycle=4) == pytest.approx(8.0)

    def test_invalid_bits_per_cycle(self):
        stats = GroupPrecisionStats(group_size=16, num_groups=1,
                                    precisions=np.array([3]), baseline_bits=8)
        with pytest.raises(ValueError):
            effective_precision(stats, bits_per_cycle=0)
