"""Tests for the design-space exploration subsystem (repro.explore)."""

import json
import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import AcceleratorConfig
from repro.experiments import figure5
from repro.experiments.common import design_label, loom_spec
from repro.explore import (
    STRATEGIES,
    Axis,
    Constraint,
    CoordinateDescentSearch,
    EvaluatedPoint,
    GridSearch,
    PointEvaluator,
    RandomSearch,
    SearchStrategy,
    SweepSpec,
    am_fits_working_set,
    canonical_point,
    dominance_ranks,
    encode_parameter,
    explore,
    drive_search,
    job_to_point,
    point_to_job,
    frontier_table,
    pareto_frontier,
    parse_accelerator,
    parse_strategy_options,
    parse_value,
    register_strategy,
    resolve_objectives,
    resolve_strategy,
    scalar_score,
    strategy_from_request,
    sweep_markdown,
    sweep_table,
    sweep_to_csv,
)
from repro.memory.dram import LPDDR4_4267
from repro.sim import geomean
from repro.sim.jobs import AcceleratorSpec, JobExecutor, NetworkSpec, SimJob, job_key
from repro.sim.results import compare


def small_space(**overrides):
    kwargs = dict(
        axes=[
            Axis("equivalent_macs", (32, 64)),
            Axis("accelerator", ("loom", "dstripes")),
        ],
        base={"network": "alexnet"},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSpaceExpansion:
    def test_product_order_last_axis_fastest(self):
        points = small_space().points()
        coords = [(p["equivalent_macs"], p["accelerator"].kind) for p in points]
        assert coords == [(32, "loom"), (32, "dstripes"),
                          (64, "loom"), (64, "dstripes")]

    def test_expansion_is_deterministic(self):
        space = small_space()
        first, second = space.points(), space.points()
        assert first == second
        assert [job_key(j) for j in space.jobs()] \
            == [job_key(j) for j in space.jobs()]

    def test_base_values_reach_every_job(self):
        space = small_space(base={"network": "nin", "accuracy": "99%",
                                  "dram": "lpddr4-4267"})
        for job in space.jobs():
            assert job.network == NetworkSpec("nin", "99%")
            assert job.config.dram == LPDDR4_4267

    def test_unique_jobs_collapse_profile_insensitive_baseline(self):
        # DPNN ignores precision profiles entirely, so sweeping it across
        # profiles yields one unique simulation for two points.
        space = SweepSpec(
            axes=[Axis("accuracy", ("100%", "99%"))],
            base={"network": "alexnet", "accelerator": "dpnn"},
        )
        assert len(space.points()) == 2
        assert len(space.unique_jobs()) == 1

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            SweepSpec(axes=[Axis("frequency", (1, 2))])
        with pytest.raises(ValueError, match="unknown base parameter"):
            SweepSpec(axes=[Axis("equivalent_macs", (32,))],
                      base={"nonsense": 1})

    def test_axis_and_base_conflict_rejected(self):
        with pytest.raises(ValueError, match="both an axis and a base"):
            small_space(base={"network": "alexnet", "equivalent_macs": 32})

    def test_point_without_network_rejected(self):
        space = SweepSpec(axes=[Axis("equivalent_macs", (32,))],
                          base={"accelerator": "dpnn"})
        with pytest.raises(ValueError, match="network"):
            space.jobs()

    def test_size_counts_pre_constraint_product(self):
        assert small_space().size == 4

    def test_points_memoised_and_callers_get_fresh_lists(self):
        calls = []
        space = small_space(constraints=[
            Constraint("count", lambda p: calls.append(p) or True)
        ])
        first = space.points()
        evaluations = len(calls)
        second = space.points()
        assert evaluations == len(calls)  # constraint pass ran once
        assert first == second and first is not second
        first.clear()
        assert space.points() == second  # caller mutation cannot corrupt


class TestConstraints:
    def test_callable_constraint_filters_points(self):
        space = small_space(constraints=[
            Constraint("small_only", lambda p: p["equivalent_macs"] <= 32)
        ])
        assert [p["equivalent_macs"] for p in space.points()] == [32, 32]

    def test_am_fits_working_set(self):
        # AlexNet's worst layer needs ~0.9 MB of 16-bit activations: a 64 KB
        # AM is infeasible, a 4 MB AM is fine.
        space = SweepSpec(
            axes=[Axis("am_capacity_bytes", (64 * 1024, 4 * 1024 * 1024))],
            base={"network": "alexnet", "accelerator": "dpnn"},
            constraints=[am_fits_working_set()],
        )
        points = space.points()
        assert [p["am_capacity_bytes"] for p in points] == [4 * 1024 * 1024]

    def test_named_constraint_from_string(self):
        space = SweepSpec(
            axes=[Axis("am_capacity_bytes", (64 * 1024,))],
            base={"network": "alexnet", "accelerator": "dpnn"},
            constraints=["am_fits_working_set"],
        )
        assert space.points() == []
        with pytest.raises(ValueError, match="unknown constraint"):
            SweepSpec(axes=[Axis("equivalent_macs", (32,))],
                      constraints=["no_such_thing"])


class TestParsing:
    def test_parse_value(self):
        assert parse_value("32") == 32
        assert parse_value("0.5") == 0.5
        assert parse_value("true") is True
        assert parse_value("none") is None
        assert parse_value("alexnet") == "alexnet"

    def test_parse_accelerator_forms(self):
        expected = AcceleratorSpec.create("loom", bits_per_cycle=2)
        assert parse_accelerator("loom:bits_per_cycle=2") == expected
        assert parse_accelerator(("loom", {"bits_per_cycle": 2})) == expected
        assert parse_accelerator({"kind": "loom", "bits_per_cycle": 2}) == expected
        assert parse_accelerator(expected) is expected

    def test_parse_accelerator_rejects_bad_tokens(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_accelerator("loom:bits_per_cycle")
        with pytest.raises(ValueError, match="kind"):
            parse_accelerator({"bits_per_cycle": 2})

    def test_design_label(self):
        assert design_label(parse_accelerator("loom")) == "loom-1b"
        assert design_label(parse_accelerator("loom:bits_per_cycle=4")) == "loom-4b"
        assert design_label(parse_accelerator("dpnn")) == "dpnn"
        assert design_label(
            parse_accelerator("loom:bits_per_cycle=2:window_fanout=4")
        ) == "loom-2b[window_fanout=4]"

    def test_dict_roundtrip(self):
        space = SweepSpec(
            axes=[Axis("equivalent_macs", (32, 64)),
                  Axis("accelerator", ("loom:bits_per_cycle=2", "dstripes"))],
            base={"network": "alexnet", "dram": "lpddr4-4267"},
            constraints=["am_fits_working_set"],
        )
        restored = SweepSpec.from_json(json.dumps(space.to_dict()))
        assert restored.points() == space.points()
        assert [c.name for c in restored.constraints] == ["am_fits_working_set"]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"axes": {"equivalent_macs": [32]},
                                 "oops": 1})


def _point(label, **metrics):
    return EvaluatedPoint(
        point=next(iter(small_space().points())),  # point identity is unused
        baseline="DPNN",
        metrics=metrics,
    )


class TestFrontier:
    OBJECTIVES = resolve_objectives(("speedup", "energy_efficiency", "area"))

    def test_pareto_frontier_on_hand_built_results(self):
        dominated = _point("a", speedup=1.0, energy_efficiency=1.0, area_mm2=5.0)
        fast = _point("b", speedup=4.0, energy_efficiency=1.5, area_mm2=6.0)
        small = _point("c", speedup=1.5, energy_efficiency=1.2, area_mm2=2.0)
        best = _point("d", speedup=4.0, energy_efficiency=2.0, area_mm2=6.0)
        frontier = pareto_frontier([dominated, fast, small, best],
                                   self.OBJECTIVES)
        assert frontier == [small, best]

    def test_equal_points_do_not_dominate_each_other(self):
        a = _point("a", speedup=2.0, energy_efficiency=2.0, area_mm2=3.0)
        b = _point("b", speedup=2.0, energy_efficiency=2.0, area_mm2=3.0)
        assert pareto_frontier([a, b], self.OBJECTIVES) == [a, b]

    def test_dominance_ranks_peel_successive_frontiers(self):
        layers = [
            _point("r0", speedup=4.0, energy_efficiency=4.0, area_mm2=1.0),
            _point("r1", speedup=3.0, energy_efficiency=3.0, area_mm2=2.0),
            _point("r2", speedup=2.0, energy_efficiency=2.0, area_mm2=3.0),
        ]
        assert dominance_ranks(layers, self.OBJECTIVES) == [0, 1, 2]

    def test_scalar_score_direction(self):
        better = _point("a", speedup=4.0, energy_efficiency=2.0, area_mm2=1.0)
        worse = _point("b", speedup=4.0, energy_efficiency=2.0, area_mm2=2.0)
        assert scalar_score(better.metrics, self.OBJECTIVES) \
            > scalar_score(worse.metrics, self.OBJECTIVES)
        bad = _point("c", speedup=float("inf"), energy_efficiency=1.0,
                     area_mm2=1.0)
        assert scalar_score(bad.metrics, self.OBJECTIVES) == float("-inf")

    def test_resolve_objectives_from_string(self):
        names = [o.name for o in resolve_objectives("speedup,area")]
        assert names == ["speedup", "area"]
        with pytest.raises(ValueError, match="unknown objective"):
            resolve_objectives("speedup,banana")


class TestStrategies:
    def test_grid_evaluates_every_feasible_point(self):
        space = small_space()
        with JobExecutor() as executor:
            result = explore(space, strategy="grid", executor=executor)
        assert len(result.evaluated) == len(space.points()) == 4
        assert executor.stats.max_executions_per_key == 1

    def test_random_is_seed_reproducible(self):
        space = small_space()
        with JobExecutor() as executor:
            first = explore(space, strategy=RandomSearch(samples=2, seed=7),
                            executor=executor)
            second = explore(space, strategy=RandomSearch(samples=2, seed=7),
                             executor=executor)
            other = explore(space, strategy=RandomSearch(samples=2, seed=8),
                            executor=executor)
        assert [ep.point for ep in first.evaluated] \
            == [ep.point for ep in second.evaluated]
        assert len(first.evaluated) == 2
        # A different seed draws a different sample (true for this space).
        assert [ep.point for ep in first.evaluated] \
            != [ep.point for ep in other.evaluated]

    def test_coordinate_descent_is_seed_reproducible_and_cached(self):
        space = SweepSpec(
            axes=[Axis("equivalent_macs", (32, 64, 128)),
                  Axis("accelerator",
                       ("loom", "loom:bits_per_cycle=2", "dstripes"))],
            base={"network": "alexnet"},
        )
        with JobExecutor() as executor:
            first = explore(space, strategy=CoordinateDescentSearch(seed=3),
                            executor=executor)
            executed_once = executor.stats.executed
            second = explore(space, strategy=CoordinateDescentSearch(seed=3),
                             executor=executor)
            # The repeat search re-simulates nothing: every candidate is
            # answered by the shared executor's cache.
            assert executor.stats.executed == executed_once
        assert [ep.point for ep in first.evaluated] \
            == [ep.point for ep in second.evaluated]
        assert executor.stats.max_executions_per_key == 1

    def test_coordinate_descent_finds_the_scalar_optimum(self):
        # On this small space the composite score is monotone enough that
        # the adaptive search must land on the exhaustive optimum.
        space = small_space()
        objectives = resolve_objectives(("speedup", "energy_efficiency",
                                         "area"))
        with JobExecutor() as executor:
            grid = explore(space, strategy="grid", objectives=objectives,
                           executor=executor)
            adaptive = explore(space,
                               strategy=CoordinateDescentSearch(seed=0,
                                                                starts=2),
                               objectives=objectives, executor=executor)
        best_grid = max(grid.evaluated,
                        key=lambda ep: scalar_score(ep.metrics, objectives))
        best_adaptive = max(adaptive.evaluated,
                            key=lambda ep: scalar_score(ep.metrics, objectives))
        assert best_adaptive.point == best_grid.point

    def test_resolve_strategy(self):
        assert isinstance(resolve_strategy(None), GridSearch)
        assert isinstance(resolve_strategy("random", samples=4), RandomSearch)
        strategy = CoordinateDescentSearch()
        assert resolve_strategy(strategy) is strategy
        with pytest.raises(ValueError, match="unknown search strategy"):
            resolve_strategy("simulated_annealing")


class TestEvaluator:
    def test_baseline_jobs_dedupe_across_points(self):
        # Four design points share two (network, config) pairs, so only two
        # baseline simulations run in addition to the four designs.
        space = small_space()
        with JobExecutor() as executor:
            evaluator = PointEvaluator(space, executor=executor)
            evaluator.evaluate(space.points())
            assert executor.stats.executed == 4 + 2

    def test_metrics_match_direct_comparison(self):
        space = small_space()
        point = space.points()[0]
        with JobExecutor() as executor:
            evaluator = PointEvaluator(space, executor=executor)
            (evaluated,) = evaluator.evaluate([point])
            job = space.job(point)
            baseline_job = SimJob(network=job.network,
                                  accelerator=AcceleratorSpec.create("dpnn"),
                                  config=job.config)
            design, baseline = executor.run([job, baseline_job])
        comparison = compare(design, baseline)
        assert evaluated.metrics["speedup"] == pytest.approx(comparison.speedup)
        assert evaluated.metrics["energy_efficiency"] \
            == pytest.approx(comparison.energy_efficiency)
        assert evaluated.metrics["cycles"] == design.total_cycles()
        assert evaluated.metrics["area_mm2"] > 0

    def test_memoisation_skips_the_executor(self):
        space = small_space()
        point = space.points()[0]
        with JobExecutor() as executor:
            evaluator = PointEvaluator(space, executor=executor)
            evaluator.evaluate([point])
            submitted = executor.stats.submitted
            evaluator.evaluate([point, point])
            assert executor.stats.submitted == submitted


class TestReporting:
    @pytest.fixture(scope="class")
    def result(self):
        with JobExecutor() as executor:
            return explore(small_space(), executor=executor)

    def test_sweep_table_lists_every_point(self, result):
        text = sweep_table(result)
        assert "loom-1b" in text and "dstripes" in text
        assert text.count("\n") >= 4 + 2

    def test_frontier_table_only_rank_zero(self, result):
        text = frontier_table(result)
        for line in text.splitlines()[2:]:
            assert line.rstrip().endswith("0")

    def test_markdown_table_shape(self, result):
        lines = sweep_markdown(result).splitlines()
        assert lines[0].startswith("| equivalent_macs |")
        assert set(lines[1].replace("|", "").split()) <= {":---", "---:"}
        assert len(lines) == 2 + len(result.evaluated)

    def test_csv_has_one_row_per_point(self, result):
        rows = sweep_to_csv(result).strip().splitlines()
        assert len(rows) == 1 + len(result.evaluated)
        header = rows[0].split(",")
        assert "speedup" in header and "pareto_rank" in header

    def test_best_by_objective(self, result):
        best = result.best("speedup")
        assert best.metrics["speedup"] \
            == max(ep.metrics["speedup"] for ep in result.evaluated)


class TestFigure5ViaExplore:
    """The scaling study must be a thin wrapper over the sweep subsystem."""

    CONFIGS = (32, 64)
    NETWORKS = ("alexnet", "nin")

    def _pre_refactor_run(self, executor):
        """The PR-1 implementation of figure5.run: hand-rolled job batches."""
        nets = [NetworkSpec(name, "100%") for name in self.NETWORKS]
        dpnn_spec = AcceleratorSpec.create("dpnn")
        loom_1b_spec = loom_spec(bits_per_cycle=1)
        dstripes_spec = AcceleratorSpec.create("dstripes")
        designs = (dpnn_spec, loom_1b_spec, dstripes_spec)
        from repro.sim.jobs import build_accelerator
        result = figure5.Figure5Result()
        for macs in self.CONFIGS:
            config = AcceleratorConfig(equivalent_macs=macs, dram=LPDDR4_4267,
                                       charge_offchip_energy=False)
            jobs = [SimJob(network=net, accelerator=design, config=config)
                    for net in nets for design in designs]
            flat = executor.run(jobs)
            loom_perf_all, loom_perf_conv = [], []
            ds_perf_all, ds_perf_conv = [], []
            loom_eff_all, loom_fps_all, loom_fps_conv = [], [], []
            for index, _ in enumerate(nets):
                base, loom_result, ds_result = flat[3 * index:3 * index + 3]
                loom_perf_all.append(compare(loom_result, base).speedup)
                loom_perf_conv.append(
                    compare(loom_result, base, kind="conv").speedup)
                ds_perf_all.append(compare(ds_result, base).speedup)
                ds_perf_conv.append(
                    compare(ds_result, base, kind="conv").speedup)
                loom_eff_all.append(
                    compare(loom_result, base).energy_efficiency)
                loom_fps_all.append(loom_result.frames_per_second())
                loom_fps_conv.append(
                    loom_result.frames_per_second(kind="conv"))
            loom = build_accelerator(loom_1b_spec, config)
            dpnn = build_accelerator(dpnn_spec, config)
            result.points.append(figure5.Figure5Point(
                equivalent_macs=macs,
                loom_rel_perf_all=geomean(loom_perf_all),
                loom_rel_perf_conv=geomean(loom_perf_conv),
                dstripes_rel_perf_all=geomean(ds_perf_all),
                dstripes_rel_perf_conv=geomean(ds_perf_conv),
                loom_fps_all=geomean(loom_fps_all),
                loom_fps_conv=geomean(loom_fps_conv),
                loom_weight_memory_mb=loom.hierarchy.weight_memory.capacity_mb,
                loom_area_ratio=loom.total_area_mm2() / dpnn.total_area_mm2(),
                loom_energy_efficiency=geomean(loom_eff_all),
            ))
        return result

    def test_sweep_space_declares_the_pre_refactor_job_matrix(self):
        space = figure5.sweep_space(configs=self.CONFIGS,
                                    networks=self.NETWORKS)
        nets = [NetworkSpec(name, "100%") for name in self.NETWORKS]
        designs = (AcceleratorSpec.create("dpnn"), loom_spec(bits_per_cycle=1),
                   AcceleratorSpec.create("dstripes"))
        expected = []
        for macs in self.CONFIGS:
            config = AcceleratorConfig(equivalent_macs=macs, dram=LPDDR4_4267,
                                       charge_offchip_energy=False)
            expected.extend(
                SimJob(network=net, accelerator=design, config=config)
                for net in nets for design in designs
            )
        assert space.jobs() == expected

    def test_figure5_output_byte_identical_to_pre_refactor(self):
        with JobExecutor() as executor:
            via_spec = figure5.run(configs=self.CONFIGS,
                                   networks=self.NETWORKS, executor=executor)
            pre_refactor = self._pre_refactor_run(executor)
        assert figure5.format_figure(via_spec) \
            == figure5.format_figure(pre_refactor)

    def test_figure5_accepts_duplicate_configs_like_the_seed(self):
        # The seed implementation simply looped, so a repeated entry
        # reported its row twice; the sweep-spec wrapper must preserve that.
        with JobExecutor() as executor:
            result = figure5.run(configs=(32, 32), networks=("alexnet",),
                                 executor=executor)
        assert [p.equivalent_macs for p in result.points] == [32, 32]
        assert result.points[0] == result.points[1]

    def test_figure5_empty_configs_give_empty_result(self):
        with JobExecutor() as executor:
            result = figure5.run(configs=(), networks=("alexnet",),
                                 executor=executor)
        assert result.points == []


class TestExploreIntegration:
    def test_shared_executor_simulates_each_unique_job_once(self):
        # A 48-point grid (the acceptance-criterion scale) through one
        # executor: every unique (network, design, config) simulated once.
        space = SweepSpec(
            axes=[
                Axis("equivalent_macs", (32, 64, 128, 256)),
                Axis("accelerator",
                     ("loom", "loom:bits_per_cycle=2",
                      "loom:bits_per_cycle=4", "dstripes")),
                Axis("network", ("alexnet", "nin", "googlenet")),
            ],
        )
        points = space.points()
        assert len(points) == 48
        with JobExecutor() as executor:
            result = explore(space, executor=executor)
            assert executor.stats.max_executions_per_key == 1
            # 48 designs + 12 shared (network x config) DPNN baselines.
            assert executor.stats.executed == 48 + 12
        assert len(result.evaluated) == 48
        assert result.frontier
        ranks = dominance_ranks(result.evaluated, result.objectives)
        assert all(rank >= 0 for rank in ranks)


class TestWireFormat:
    """canonical_point / job_to_point: the serve subsystem's wire format."""

    def test_canonical_point_accepts_explore_style_values(self):
        point = canonical_point({
            "network": "alexnet",
            "accelerator": "loom:bits_per_cycle=2",
            "dram": "lpddr4-4267",
            "equivalent_macs": 256,
        })
        job = point_to_job(point)
        assert job.accelerator == AcceleratorSpec.create("loom",
                                                         bits_per_cycle=2)
        assert job.config.equivalent_macs == 256
        assert job.config.dram == LPDDR4_4267

    def test_canonical_point_rejects_unknown_parameters(self):
        with pytest.raises(ValueError, match="flux"):
            canonical_point({"network": "alexnet", "flux": 88})

    @pytest.mark.parametrize("job", [
        SimJob(network=NetworkSpec("alexnet"),
               accelerator=AcceleratorSpec.create("dpnn")),
        SimJob(network=NetworkSpec("nin", "99%"),
               accelerator=AcceleratorSpec.create("loom", bits_per_cycle=2)),
        SimJob(network=NetworkSpec("resnet18", groups=4),
               accelerator=AcceleratorSpec.create("dstripes"),
               config=AcceleratorConfig(equivalent_macs=256,
                                        dram=LPDDR4_4267)),
        SimJob(network=NetworkSpec("vggm", with_effective_weights=True,
                                   accuracy="99%"),
               accelerator=AcceleratorSpec.create(
                   "loom", use_effective_weight_precision=True)),
        SimJob(network=NetworkSpec("tiny_transformer", heads=8),
               accelerator=AcceleratorSpec.create("loom"),
               config=AcceleratorConfig(am_capacity_bytes=512 * 1024,
                                        charge_offchip_energy=False)),
    ], ids=["plain", "options", "dram-scaled", "effective-weights",
            "structural-override"])
    def test_job_round_trips_through_json_preserving_its_key(self, job):
        wire = json.loads(json.dumps(job_to_point(job)))
        rebuilt = point_to_job(canonical_point(wire))
        assert job_key(rebuilt) == job_key(job)

    def test_job_to_point_omits_defaults(self):
        wire = job_to_point(SimJob(network=NetworkSpec("alexnet"),
                                   accelerator=AcceleratorSpec.create("dpnn")))
        assert wire == {"network": "alexnet", "accelerator": {"kind": "dpnn"}}

    def test_job_to_point_refuses_unencodable_values(self):
        import dataclasses

        from repro.energy.tech import TSMC_65NM

        exotic_tech = SimJob(
            network=NetworkSpec("alexnet"),
            accelerator=AcceleratorSpec.create("dpnn"),
            config=AcceleratorConfig(
                tech=dataclasses.replace(TSMC_65NM, name="exotic-7nm")),
        )
        with pytest.raises(ValueError, match="technology"):
            job_to_point(exotic_tech)

    def test_encode_parameter_round_trips_sweep_specs(self):
        assert encode_parameter("accelerator",
                                "loom:bits_per_cycle=2") == \
            {"kind": "loom", "bits_per_cycle": 2}
        assert encode_parameter("dram", LPDDR4_4267) == "lpddr4-4267"
        assert encode_parameter("equivalent_macs", 64) == 64
        space = SweepSpec(
            axes=[Axis("equivalent_macs", (32, 64)),
                  Axis("accelerator", ("loom", "loom:bits_per_cycle=2"))],
            base={"network": "alexnet", "dram": "lpddr4-4267"},
        )
        round_tripped = SweepSpec.from_dict(
            json.loads(json.dumps(space.to_dict())))
        assert round_tripped.to_dict() == space.to_dict()
        assert [job_key(j) for j in round_tripped.unique_jobs()] == \
            [job_key(j) for j in space.unique_jobs()]

    def test_exploration_result_to_dict_is_json_serialisable(self):
        space = SweepSpec(axes=[Axis("accelerator", ("loom", "dpnn"))],
                          base={"network": "alexnet"})
        result = explore(space, executor=JobExecutor())
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["strategy"] == "grid"
        assert len(payload["evaluated"]) == 2
        assert payload["ranks"] == result.ranks
        assert payload["evaluated"][0]["metrics"]["speedup"] == \
            result.evaluated[0].metrics["speedup"]
        assert payload["space"]["base"]["network"] == "alexnet"


# -- the ask/tell driver -------------------------------------------------------


def _synthetic_metrics(point):
    """Deterministic, positive fake metrics -- a pure function of the point."""
    digest = zlib.crc32(point.label().encode("utf-8"))
    return {
        "speedup": 1.0 + (digest % 997) / 100.0,
        "energy_efficiency": 1.0 + ((digest >> 10) % 991) / 100.0,
        "area_mm2": 1.0 + ((digest >> 20) % 983) / 100.0,
    }


class _StubEvaluator:
    """PointEvaluator stand-in: no simulator, synthetic metrics, same API."""

    def __init__(self, space):
        self.space = space
        self._memo = {}

    def known(self, point):
        return point in self._memo

    def warm(self, points):
        return [point for point in points if point in self._memo]

    def evaluate(self, points):
        for point in points:
            if point not in self._memo:
                self._memo[point] = EvaluatedPoint(
                    point=point, baseline="dpnn",
                    metrics=_synthetic_metrics(point))
        return [self._memo[point] for point in points]


def _trace_json(trace):
    return json.dumps([ep.to_dict() for ep in trace], sort_keys=True)


_DRIVER_OBJECTIVES = resolve_objectives(("speedup", "energy_efficiency",
                                         "area"))


class TestAskTellDriver:
    def test_base_run_shim_warns_and_drives(self):
        space = small_space()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            trace = GridSearch().run(space, _StubEvaluator(space),
                                     _DRIVER_OBJECTIVES)
        assert [ep.point for ep in trace] == space.points()

    def test_legacy_run_override_still_driven_with_warning(self):
        class Legacy(SearchStrategy):
            name = "legacy"

            def run(self, space, evaluator, objectives):
                return evaluator.evaluate(space.points()[:2])

        space = small_space()
        with pytest.warns(DeprecationWarning,
                          match="overrides SearchStrategy.run"):
            trace = drive_search(Legacy(), space, _StubEvaluator(space),
                                 _DRIVER_OBJECTIVES)
        assert [ep.point for ep in trace] == space.points()[:2]

    def test_budget_with_legacy_strategy_rejected(self):
        class Legacy(SearchStrategy):
            def run(self, space, evaluator, objectives):
                return []

        space = small_space()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="ask/tell"):
                drive_search(Legacy(), space, _StubEvaluator(space),
                             _DRIVER_OBJECTIVES, budget=3)

    def test_budget_must_be_positive(self):
        space = small_space()
        with pytest.raises(ValueError, match="budget must be >= 1"):
            drive_search(GridSearch(), space, _StubEvaluator(space),
                         _DRIVER_OBJECTIVES, budget=0)

    def test_budget_caps_fresh_evaluations(self):
        space = small_space()
        trace = drive_search(RandomSearch(samples=4, seed=0), space,
                             _StubEvaluator(space), _DRIVER_OBJECTIVES,
                             budget=2)
        assert len(trace) == 2

    def test_warm_points_do_not_consume_the_budget(self):
        space = small_space()
        evaluator = _StubEvaluator(space)
        evaluator.evaluate(space.points())  # everything warm
        trace = drive_search(GridSearch(), space, evaluator,
                             _DRIVER_OBJECTIVES, budget=1)
        assert len(trace) == len(space.points())

    def test_driver_dedups_batches_and_tracks_state(self):
        space = small_space()

        class Probe(SearchStrategy):
            name = "probe"

            def __init__(self):
                self.observed = []
                self.state = None

            def propose(self, state):
                self.state = state
                if state.rounds:
                    return []
                point = state.space.points()[0]
                return [point, point]  # in-batch duplicate

            def observe(self, evaluated):
                self.observed.append(list(evaluated))

        probe = Probe()
        trace = drive_search(probe, space, _StubEvaluator(space),
                             _DRIVER_OBJECTIVES, budget=5)
        assert len(trace) == 1
        assert [len(batch) for batch in probe.observed] == [1]
        assert probe.state.rounds == 1
        assert probe.state.spent == 1
        assert probe.state.remaining == 4

    def test_strategy_without_propose_or_run_rejected(self):
        space = small_space()
        with pytest.raises(NotImplementedError, match="neither propose"):
            drive_search(SearchStrategy(), space, _StubEvaluator(space),
                         _DRIVER_OBJECTIVES)


# Pre-redesign strategy implementations, reproduced verbatim so the property
# test below can pin that the ask/tell driver yields byte-identical traces.


class _LegacyGrid(SearchStrategy):
    def run(self, space, evaluator, objectives):
        return evaluator.evaluate(space.points())


class _LegacyRandom(SearchStrategy):
    def __init__(self, samples, seed):
        self.samples = samples
        self.seed = seed

    def run(self, space, evaluator, objectives):
        points = space.points()
        if len(points) > self.samples:
            points = random.Random(self.seed).sample(points, self.samples)
        return evaluator.evaluate(points)


class _LegacyCoordinate(SearchStrategy):
    def __init__(self, seed, starts, max_rounds):
        self.seed = seed
        self.starts = starts
        self.max_rounds = max_rounds

    def run(self, space, evaluator, objectives):
        points = space.points()
        if not points:
            return []
        axis_names = space.axis_names
        by_coords = {
            tuple(point[name] for name in axis_names): point
            for point in points
        }
        rng = random.Random(self.seed)
        trace = []
        traced = set()

        def record(evaluated):
            for ep in evaluated:
                if ep.point not in traced:
                    traced.add(ep.point)
                    trace.append(ep)

        def score_of(ep):
            return scalar_score(ep.metrics, objectives)

        for _ in range(self.starts):
            current = rng.choice(points)
            (current_ep,) = evaluator.evaluate([current])
            record([current_ep])
            for _ in range(self.max_rounds):
                improved = False
                for index, axis in enumerate(space.axes):
                    if len(axis.values) < 2:
                        continue
                    coords = tuple(current[name] for name in axis_names)
                    candidates = []
                    for value in axis.values:
                        candidate_coords = (coords[:index] + (value,)
                                            + coords[index + 1:])
                        candidate = by_coords.get(candidate_coords)
                        if candidate is not None:
                            candidates.append(candidate)
                    evaluated = evaluator.evaluate(candidates)
                    record(evaluated)
                    best = max(evaluated, key=score_of)
                    if best.point != current \
                            and score_of(best) > score_of(current_ep):
                        current, current_ep = best.point, best
                        improved = True
                if not improved:
                    break
        return trace


def _equivalence_space():
    return SweepSpec(
        axes=[
            Axis("equivalent_macs", (32, 64, 128)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "dstripes")),
            Axis("am_capacity_bytes", (1 << 20, 2 << 20)),
        ],
        base={"network": "alexnet"},
        constraints=[Constraint(
            "no-big-dstripes",
            lambda p: not (p["equivalent_macs"] == 128
                           and p["accelerator"].kind == "dstripes"))],
    )


class TestLegacyTraceEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), samples=st.integers(1, 18),
           starts=st.integers(1, 3), max_rounds=st.integers(1, 4))
    def test_driver_reproduces_pre_redesign_traces(self, seed, samples,
                                                   starts, max_rounds):
        space = _equivalence_space()
        pairs = [
            (GridSearch(), _LegacyGrid()),
            (RandomSearch(samples=samples, seed=seed),
             _LegacyRandom(samples, seed)),
            (CoordinateDescentSearch(seed=seed, starts=starts,
                                     max_rounds=max_rounds),
             _LegacyCoordinate(seed, starts, max_rounds)),
        ]
        for current, legacy in pairs:
            new_trace = drive_search(current, space, _StubEvaluator(space),
                                     _DRIVER_OBJECTIVES)
            old_trace = legacy.run(space, _StubEvaluator(space),
                                   _DRIVER_OBJECTIVES)
            assert _trace_json(new_trace) == _trace_json(old_trace), \
                f"{type(current).__name__} trace diverged from pre-redesign"


class TestCoordinateInfeasibleAxes:
    def test_axis_with_all_alternatives_infeasible_is_skipped(self):
        # Feasible set is the diagonal {(32, loom), (64, dstripes)}: from
        # either point every single-axis alternative is constraint-pruned,
        # which used to leave the axis sweep with an empty candidate batch
        # (and `max(evaluated)` with an empty sequence).
        space = small_space(constraints=[Constraint(
            "diagonal",
            lambda p: (p["equivalent_macs"] == 32)
            == (p["accelerator"].kind == "loom"))])
        assert len(space.points()) == 2
        with JobExecutor(cache=None) as executor:
            result = explore(
                space, strategy=CoordinateDescentSearch(seed=0, starts=2),
                executor=executor)
        assert 1 <= len(result.evaluated) <= 2
        for ep in result.evaluated:
            assert (ep.point["equivalent_macs"] == 32) \
                == (ep.point["accelerator"].kind == "loom")


class TestStrategyRegistry:
    def test_register_strategy_sets_name_and_resolves(self):
        @register_strategy("registry-probe")
        class Probe(SearchStrategy):
            def propose(self, state):
                return []

        try:
            assert Probe.name == "registry-probe"
            assert isinstance(resolve_strategy("registry-probe"), Probe)
        finally:
            del STRATEGIES["registry-probe"]

    def test_duplicate_name_for_different_class_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("grid")(RandomSearch)

    def test_reregistering_the_same_class_is_idempotent(self):
        assert register_strategy("grid")(GridSearch) is GridSearch

    def test_bad_constructor_options_become_value_errors(self):
        with pytest.raises(ValueError, match="bad option"):
            resolve_strategy("random", bogus=1)


class TestStrategyOptions:
    def test_parse_strategy_options_types_the_values(self):
        assert parse_strategy_options(None) == {}
        assert parse_strategy_options([]) == {}
        assert parse_strategy_options(
            ["samples=8", "model=gp", "kappa=1.5"]
        ) == {"samples": 8, "model": "gp", "kappa": 1.5}

    def test_malformed_and_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_strategy_options(["samples"])
        with pytest.raises(ValueError, match="expected key=value"):
            parse_strategy_options(["=8"])
        with pytest.raises(ValueError, match="duplicate strategy option"):
            parse_strategy_options(["seed=1", "seed=2"])

    def test_strategy_from_request_defaults_to_grid(self):
        strategy, budget = strategy_from_request({})
        assert isinstance(strategy, GridSearch)
        assert budget is None

    def test_strategy_from_request_uniform_form(self):
        strategy, budget = strategy_from_request({
            "strategy": "random",
            "options": {"samples": 3, "seed": 9},
            "budget": 7,
        })
        assert isinstance(strategy, RandomSearch)
        assert (strategy.samples, strategy.seed) == (3, 9)
        assert budget == 7

    def test_strategy_from_request_legacy_keys_still_work(self):
        strategy, budget = strategy_from_request(
            {"strategy": "random", "samples": 5, "seed": 2})
        assert (strategy.samples, strategy.seed) == (5, 2)
        assert budget is None
        # The uniform options form wins over the legacy top-level keys.
        strategy, _ = strategy_from_request(
            {"strategy": "random", "samples": 5, "options": {"samples": 11}})
        assert strategy.samples == 11
        # Legacy keys only apply to the strategies that understand them.
        strategy, _ = strategy_from_request(
            {"strategy": "coordinate", "samples": 5, "seed": 4})
        assert isinstance(strategy, CoordinateDescentSearch)
        assert strategy.seed == 4

    def test_strategy_from_request_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            strategy_from_request({"options": ["samples", 3]})
        with pytest.raises(ValueError, match="budget must be >= 1"):
            strategy_from_request({"budget": 0})
        with pytest.raises(ValueError, match="unknown search strategy"):
            strategy_from_request({"strategy": "annealing"})
