"""Tests for the baseline accelerators: DPNN, Stripes and DStripes."""

import pytest

from repro.accelerators import DPNN, DStripes, AcceleratorConfig, ceil_div
from repro.memory.dram import LPDDR4_4267
from repro.nn import build_network
from repro.quant import get_paper_profile
from repro.quant.dynamic import DynamicPrecisionModel
from repro.sim import run_network


class TestCeilDiv:
    def test_values(self):
        assert ceil_div(10, 5) == 2
        assert ceil_div(11, 5) == 3
        assert ceil_div(0, 5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestAcceleratorConfig:
    def test_defaults(self):
        config = AcceleratorConfig()
        assert config.equivalent_macs == 128
        assert config.scale == 1.0
        assert config.dram is None

    def test_scaling_helpers(self):
        config = AcceleratorConfig().with_scale(256).with_dram(LPDDR4_4267)
        assert config.equivalent_macs == 256
        assert config.scale == 2.0
        assert config.dram is LPDDR4_4267

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(equivalent_macs=100)
        with pytest.raises(ValueError):
            AcceleratorConfig(equivalent_macs=8)
        with pytest.raises(ValueError):
            AcceleratorConfig(clock_ghz=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(abin_bytes=0)


class TestDPNNCycles:
    def test_structure(self, dpnn_default):
        assert dpnn_default.num_ip_units == 8
        assert DPNN(AcceleratorConfig(equivalent_macs=256)).num_ip_units == 16

    def test_conv_cycle_formula(self, alexnet_100, dpnn_default):
        conv1 = alexnet_100.conv_layers()[0]
        # conv1: 55x55 windows, 363 terms, 96 filters.
        expected = 55 * 55 * ceil_div(363, 16) * ceil_div(96, 8)
        assert dpnn_default.compute_cycles(conv1) == expected

    def test_fc_cycle_formula(self, alexnet_100, dpnn_default):
        fc6 = alexnet_100.fc_layers()[0]
        expected = ceil_div(9216, 16) * ceil_div(4096, 8)
        assert dpnn_default.compute_cycles(fc6) == expected

    def test_cycles_independent_of_precision(self, dpnn_default):
        net100 = build_network("alexnet")
        net100.attach_profile(get_paper_profile("alexnet", "100%"))
        net99 = build_network("alexnet")
        net99.attach_profile(get_paper_profile("alexnet", "99%"))
        r100 = run_network(dpnn_default, net100)
        r99 = run_network(dpnn_default, net99)
        assert r100.total_cycles() == r99.total_cycles()

    def test_bigger_config_is_faster(self, alexnet_100):
        small = DPNN(AcceleratorConfig(equivalent_macs=64))
        large = DPNN(AcceleratorConfig(equivalent_macs=256))
        conv3 = alexnet_100.conv_layers()[2]
        assert large.compute_cycles(conv3) < small.compute_cycles(conv3)

    def test_simulate_layer_rejects_non_compute(self, alexnet_100, dpnn_default):
        with pytest.raises(ValueError):
            # Build a fake LayerWithPrecision around a pooling layer.
            from repro.nn.network import LayerWithPrecision
            from repro.nn.layers import Pool2D, TensorShape
            pool = Pool2D(name="p", kernel=2, stride=2)
            lw = LayerWithPrecision(layer=pool,
                                    input_shape=TensorShape(8, 4, 4),
                                    output_shape=TensorShape(8, 2, 2))
            dpnn_default.simulate_layer(lw)

    def test_storage_is_16_bit(self, alexnet_100, dpnn_default):
        conv1 = alexnet_100.conv_layers()[0]
        assert dpnn_default.storage_precisions(conv1) == (16, 16)
        result = dpnn_default.simulate_layer(conv1)
        assert result.weight_bits_read == conv1.weight_count * 16

    def test_utilization_at_most_one(self, alexnet_100, dpnn_default):
        for lw in alexnet_100.compute_layers():
            result = dpnn_default.simulate_layer(lw)
            assert 0 < result.utilization <= 1.0

    def test_describe(self, dpnn_default):
        text = dpnn_default.describe()
        assert "DPNN" in text and "128" in text


class TestStripes:
    def test_fc_matches_dpnn(self, alexnet_100, dpnn_default, stripes_default):
        for fc in alexnet_100.fc_layers():
            assert stripes_default.compute_cycles(fc) == \
                dpnn_default.compute_cycles(fc)

    def test_conv_speedup_close_to_16_over_pa(self, alexnet_100, dpnn_default,
                                              stripes_default):
        # conv3: 384 filters, 2304 terms, 13x13 windows, Pa = 5.
        conv3 = alexnet_100.conv_layers()[2]
        ratio = (dpnn_default.compute_cycles(conv3)
                 / stripes_default.compute_cycles(conv3))
        ideal = 16 / conv3.precision.activation_bits
        assert ratio == pytest.approx(ideal, rel=0.05)

    def test_conv_never_slower_than_dpnn(self, alexnet_100, dpnn_default,
                                         stripes_default):
        for conv in alexnet_100.conv_layers():
            assert stripes_default.compute_cycles(conv) <= \
                dpnn_default.compute_cycles(conv) * 1.05

    def test_activation_storage_precision_scaled(self, alexnet_100,
                                                 stripes_default):
        conv1 = alexnet_100.conv_layers()[0]
        weight_bits, act_bits = stripes_default.storage_precisions(conv1)
        assert weight_bits == 16
        assert act_bits == conv1.precision.activation_bits

    def test_static_by_default(self, stripes_default):
        assert not stripes_default.dynamic_precision.enabled

    def test_power_higher_than_dpnn(self, dpnn_default, stripes_default):
        assert stripes_default.datapath_pj_per_cycle() > \
            dpnn_default.datapath_pj_per_cycle()


class TestDStripes:
    def test_dynamic_enabled(self, dstripes_default):
        assert dstripes_default.dynamic_precision.enabled

    def test_rejects_disabled_model(self):
        with pytest.raises(ValueError):
            DStripes(dynamic_precision=DynamicPrecisionModel(enabled=False))

    def test_conv_faster_than_stripes(self, alexnet_100, stripes_default,
                                      dstripes_default):
        for conv in alexnet_100.conv_layers():
            assert dstripes_default.compute_cycles(conv) < \
                stripes_default.compute_cycles(conv)

    def test_fc_unchanged_vs_stripes(self, alexnet_100, stripes_default,
                                     dstripes_default):
        for fc in alexnet_100.fc_layers():
            assert dstripes_default.compute_cycles(fc) == \
                stripes_default.compute_cycles(fc)

    def test_network_level_ordering(self, alexnet_results):
        # DPNN slowest, then Stripes, then DStripes, then Loom-1b on CVLs.
        conv = {k: v.total_cycles("conv") for k, v in alexnet_results.items()}
        assert conv["dpnn"] > conv["stripes"] > conv["dstripes"] > conv["loom-1b"]


class TestMemoryBoundBehaviour:
    def test_fc_layers_become_memory_bound_with_dram(self, alexnet_100):
        config = AcceleratorConfig(dram=LPDDR4_4267)
        dpnn = DPNN(config)
        fc6 = alexnet_100.fc_layers()[0]
        result = dpnn.simulate_layer(fc6)
        assert result.memory_cycles > result.compute_cycles
        assert result.cycles == result.memory_cycles

    def test_conv_layers_stay_compute_bound(self, alexnet_100):
        config = AcceleratorConfig(dram=LPDDR4_4267)
        dpnn = DPNN(config)
        conv3 = alexnet_100.conv_layers()[2]
        result = dpnn.simulate_layer(conv3)
        assert result.compute_cycles >= result.memory_cycles
