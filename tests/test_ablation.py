"""Tests for the ablation experiment harness (repro.experiments.ablation)."""

import pytest

from repro.experiments import ablation


@pytest.fixture(scope="module")
def ablation_result():
    # A two-network subset keeps the harness fast while covering both a
    # conv-heavy (alexnet) and an FC-underutilised (googlenet) case.
    return ablation.run(networks=("alexnet", "googlenet"))


class TestAblation:
    def test_dynamic_precision_helps_convs(self, ablation_result):
        enabled, disabled = ablation_result.dynamic_precision
        assert enabled > disabled > 1.0
        assert ablation_result.contribution("dynamic_precision") > 1.1

    def test_cascading_helps_fc(self, ablation_result):
        enabled, disabled = ablation_result.cascading
        assert enabled > disabled

    def test_storage_reduces_traffic(self, ablation_result):
        gain, reference = ablation_result.storage_traffic_ratio
        assert reference == 1.0
        assert gain > 1.2

    def test_window_major_tiling_helps_at_512(self, ablation_result):
        enabled, disabled = ablation_result.tiling_at_512
        assert enabled > disabled

    def test_format_table_lists_all_mechanisms(self, ablation_result):
        text = ablation.format_table(ablation_result)
        assert "dynamic activation precision" in text
        assert "SIP cascading" in text
        assert "bit-interleaved storage" in text
        assert "window-major tiling" in text

    def test_contribution_handles_zero_denominator(self):
        result = ablation.AblationResult(dynamic_precision=(2.0, 0.0))
        assert result.contribution("dynamic_precision") == float("inf")
