"""Unit and property tests for repro.quant.fixedpoint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.fixedpoint import (
    FixedPointFormat,
    dequantize,
    quantize,
    quantize_tensor,
    required_precision,
    saturate,
)


class TestFixedPointFormat:
    def test_basic_signed_format(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8, signed=True)
        assert fmt.scale == pytest.approx(1 / 256)
        assert fmt.min_code == -32768
        assert fmt.max_code == 32767
        assert fmt.int_bits == 7

    def test_basic_unsigned_format(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0, signed=False)
        assert fmt.min_code == 0
        assert fmt.max_code == 255
        assert fmt.min_value == 0.0
        assert fmt.max_value == 255.0

    def test_min_max_value_scaled(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=2, signed=True)
        assert fmt.max_value == pytest.approx(7 / 4)
        assert fmt.min_value == pytest.approx(-8 / 4)

    def test_describe(self):
        assert FixedPointFormat(16, 8, True).describe() == "s16.8"
        assert FixedPointFormat(8, 0, False).describe() == "u8.0"

    def test_with_total_bits(self):
        fmt = FixedPointFormat(16, 8, True).with_total_bits(8)
        assert fmt.total_bits == 8
        assert fmt.frac_bits == 8
        assert fmt.signed is True

    def test_invalid_total_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=0)

    def test_invalid_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=-1)

    def test_signed_needs_two_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, signed=True)

    def test_unsigned_single_bit_allowed(self):
        fmt = FixedPointFormat(total_bits=1, signed=False)
        assert fmt.max_code == 1


class TestQuantize:
    def test_integer_values_roundtrip(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0, signed=True)
        values = np.array([-5.0, 0.0, 3.0, 100.0])
        assert np.array_equal(quantize(values, fmt), np.array([-5, 0, 3, 100]))

    def test_fractional_scaling(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4, signed=True)
        codes = quantize(np.array([1.0, 0.5, -0.25]), fmt)
        assert np.array_equal(codes, np.array([16, 8, -4]))

    def test_saturation_positive(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=0, signed=True)
        assert quantize(np.array([100.0]), fmt)[0] == 7

    def test_saturation_negative(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=0, signed=True)
        assert quantize(np.array([-100.0]), fmt)[0] == -8

    def test_unsigned_clamps_negative_to_zero(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=0, signed=False)
        assert quantize(np.array([-3.0]), fmt)[0] == 0

    def test_dequantize_inverse_of_quantize_on_grid(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=3, signed=True)
        values = np.arange(-10, 10) / 8.0
        assert np.allclose(dequantize(quantize(values, fmt), fmt), values)

    def test_quantize_tensor_error_bounded_by_half_lsb(self):
        fmt = FixedPointFormat(total_bits=12, frac_bits=6, signed=True)
        rng = np.random.default_rng(0)
        values = rng.uniform(-10, 10, size=100)
        error = np.abs(quantize_tensor(values, fmt) - values)
        assert np.all(error <= fmt.scale / 2 + 1e-12)

    def test_saturate_function(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=0, signed=True)
        codes = np.array([-100, -8, 0, 7, 100])
        assert np.array_equal(saturate(codes, fmt), np.array([-8, -8, 0, 7, 7]))


class TestRequiredPrecision:
    def test_zero_tensor_needs_one_bit(self):
        assert required_precision(np.zeros(10, dtype=np.int64)) == 1

    def test_empty_tensor(self):
        assert required_precision(np.array([], dtype=np.int64)) == 1

    def test_unsigned_powers_of_two(self):
        assert required_precision(np.array([1]), signed=False) == 1
        assert required_precision(np.array([2]), signed=False) == 2
        assert required_precision(np.array([255]), signed=False) == 8
        assert required_precision(np.array([256]), signed=False) == 9

    def test_signed_boundaries(self):
        # -8..7 fits in 4 bits; 8 needs 5.
        assert required_precision(np.array([-8, 7])) == 4
        assert required_precision(np.array([8])) == 5
        assert required_precision(np.array([-9])) == 5

    @given(st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1))
    @settings(max_examples=60)
    def test_signed_value_fits_in_reported_precision(self, value):
        bits = required_precision(np.array([value]), signed=True)
        assert -(1 << (bits - 1)) <= value <= (1 << (bits - 1)) - 1
        if bits > 1:
            smaller = bits - 1
            fits_smaller = (-(1 << (smaller - 1)) <= value
                            <= (1 << (smaller - 1)) - 1) if smaller > 0 else False
            assert not fits_smaller or value == 0

    @given(st.integers(min_value=0, max_value=2 ** 16 - 1))
    @settings(max_examples=60)
    def test_unsigned_value_fits_in_reported_precision(self, value):
        bits = required_precision(np.array([value]), signed=False)
        assert value <= (1 << bits) - 1
        if value > 0:
            assert value > (1 << (bits - 1)) - 1


class TestQuantizationProperty:
    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=8),
        st.lists(st.floats(min_value=-1e3, max_value=1e3,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=20),
    )
    @settings(max_examples=80)
    def test_codes_always_within_format_range(self, bits, frac, values):
        fmt = FixedPointFormat(total_bits=bits, frac_bits=frac, signed=True)
        codes = quantize(np.array(values), fmt)
        assert codes.min() >= fmt.min_code
        assert codes.max() <= fmt.max_code
