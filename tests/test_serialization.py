"""Tests for JSON serialisation of networks and profiles."""

import pytest

from repro.nn import build_network
from repro.nn.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_network,
)
from repro.quant import get_paper_profile
from repro.sim import run_network


class TestNetworkSerialization:
    def test_roundtrip_preserves_structure(self, tiny_network):
        data = network_to_dict(tiny_network)
        rebuilt = network_from_dict(data)
        assert rebuilt.name == tiny_network.name
        assert len(rebuilt) == len(tiny_network)
        assert rebuilt.resolve_shapes().keys() == tiny_network.resolve_shapes().keys()
        assert rebuilt.total_macs() == tiny_network.total_macs()

    @pytest.mark.parametrize("name", ["alexnet", "googlenet", "nin"])
    def test_roundtrip_zoo_networks(self, name):
        original = build_network(name)
        rebuilt = network_from_dict(network_to_dict(original))
        assert rebuilt.total_macs() == original.total_macs()
        assert rebuilt.total_weights() == original.total_weights()
        assert rebuilt.num_conv_groups() == original.num_conv_groups()

    def test_roundtrip_preserves_simulation_results(self, dpnn_default):
        original = build_network("alexnet")
        original.attach_profile(get_paper_profile("alexnet"))
        rebuilt = network_from_dict(network_to_dict(original))
        rebuilt.attach_profile(get_paper_profile("alexnet"))
        assert run_network(dpnn_default, rebuilt).total_cycles() == \
            run_network(dpnn_default, original).total_cycles()

    def test_file_roundtrip(self, tiny_network, tmp_path):
        path = tmp_path / "tiny.json"
        save_network(tiny_network, path)
        assert path.exists()
        rebuilt = load_network(path)
        assert rebuilt.name == tiny_network.name
        assert rebuilt.total_macs() == tiny_network.total_macs()

    def test_missing_key_raises(self):
        with pytest.raises(ValueError):
            network_from_dict({"name": "x"})

    def test_unknown_layer_type_raises(self):
        data = {"name": "x", "input_shape": [3, 8, 8],
                "layers": [{"type": "Deconv", "name": "d"}]}
        with pytest.raises(ValueError):
            network_from_dict(data)


class TestProfileSerialization:
    def test_roundtrip(self):
        profile = get_paper_profile("alexnet", "99%", with_effective_weights=True)
        rebuilt = profile_from_dict(profile_to_dict(profile))
        assert rebuilt.network == profile.network
        assert rebuilt.accuracy_target == "99%"
        assert rebuilt.conv_activation_bits() == profile.conv_activation_bits()
        assert rebuilt.fc_weight_bits() == profile.fc_weight_bits()
        assert [lp.effective_weight_bits for lp in rebuilt.conv_layers] == \
            [lp.effective_weight_bits for lp in profile.conv_layers]

    def test_roundtrip_without_effective_weights(self):
        profile = get_paper_profile("vgg19")
        rebuilt = profile_from_dict(profile_to_dict(profile))
        assert all(lp.effective_weight_bits is None for lp in rebuilt.conv_layers)

    def test_rebuilt_profile_attaches_to_network(self):
        network = build_network("vggm")
        profile = profile_from_dict(profile_to_dict(get_paper_profile("vggm")))
        network.attach_profile(profile)
        assert network.conv_layers()[0].precision.activation_bits == 7

    def test_missing_key_raises(self):
        with pytest.raises(ValueError):
            profile_from_dict({"network": "x"})
