"""Unit and property tests for repro.quant.bitops (bit-serial primitives)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.bitops import (
    bit_compose,
    bit_decompose,
    bit_serial_dot,
    count_significant_bits,
    pack_bit_interleaved,
    unpack_bit_interleaved,
)


class TestBitDecompose:
    def test_unsigned_simple(self):
        planes = bit_decompose(np.array([5]), bits=4, signed=False)
        assert planes.shape == (4, 1)
        assert list(planes[:, 0]) == [1, 0, 1, 0]

    def test_signed_negative_twos_complement(self):
        # -3 in 4-bit two's complement is 1101.
        planes = bit_decompose(np.array([-3]), bits=4, signed=True)
        assert list(planes[:, 0]) == [1, 0, 1, 1]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            bit_decompose(np.array([16]), bits=4, signed=False)
        with pytest.raises(ValueError):
            bit_decompose(np.array([8]), bits=4, signed=True)
        with pytest.raises(ValueError):
            bit_decompose(np.array([-9]), bits=4, signed=True)

    def test_non_integer_input_raises(self):
        with pytest.raises(TypeError):
            bit_decompose(np.array([1.5]), bits=4)

    def test_zero_bits_raises(self):
        with pytest.raises(ValueError):
            bit_decompose(np.array([0]), bits=0)

    def test_preserves_shape(self):
        codes = np.arange(12).reshape(3, 4)
        planes = bit_decompose(codes, bits=5, signed=False)
        assert planes.shape == (5, 3, 4)

    @given(st.lists(st.integers(min_value=-128, max_value=127),
                    min_size=1, max_size=32))
    @settings(max_examples=80)
    def test_roundtrip_signed(self, values):
        codes = np.array(values, dtype=np.int64)
        planes = bit_decompose(codes, bits=8, signed=True)
        assert np.array_equal(bit_compose(planes, signed=True), codes)

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 12 - 1),
                    min_size=1, max_size=32))
    @settings(max_examples=80)
    def test_roundtrip_unsigned(self, values):
        codes = np.array(values, dtype=np.int64)
        planes = bit_decompose(codes, bits=12, signed=False)
        assert np.array_equal(bit_compose(planes, signed=False), codes)


class TestBitSerialDot:
    def test_matches_numpy_dot_simple(self):
        a = np.array([1, 2, 3, 4])
        w = np.array([-1, 5, 0, 2])
        result, cycles = bit_serial_dot(a, w, act_bits=4, weight_bits=5)
        assert result == int(np.dot(a, w))
        assert cycles == 4 * 5

    def test_signed_activations(self):
        a = np.array([-3, 2, -1, 4])
        w = np.array([1, -2, 3, -4])
        result, _ = bit_serial_dot(a, w, act_bits=4, weight_bits=4,
                                   act_signed=True, weight_signed=True)
        assert result == int(np.dot(a, w))

    def test_all_zero(self):
        a = np.zeros(8, dtype=np.int64)
        w = np.zeros(8, dtype=np.int64)
        result, cycles = bit_serial_dot(a, w, act_bits=1, weight_bits=2)
        assert result == 0
        assert cycles == 2

    def test_cycle_count_scales_with_precision(self):
        a = np.array([1, 1])
        w = np.array([1, 1])
        _, c1 = bit_serial_dot(a, w, act_bits=3, weight_bits=7)
        _, c2 = bit_serial_dot(a, w, act_bits=6, weight_bits=7)
        assert c1 == 21 and c2 == 42

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bit_serial_dot(np.array([1, 2]), np.array([1]), 2, 2)

    def test_two_dimensional_input_raises(self):
        with pytest.raises(ValueError):
            bit_serial_dot(np.ones((2, 2), dtype=np.int64),
                           np.ones((2, 2), dtype=np.int64), 2, 2)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2 ** 31),
    )
    @settings(max_examples=60)
    def test_matches_integer_dot_product(self, act_bits, weight_bits, length, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << act_bits, size=length)
        w = rng.integers(-(1 << (weight_bits - 1)), 1 << (weight_bits - 1),
                         size=length)
        result, cycles = bit_serial_dot(a, w, act_bits, weight_bits,
                                        act_signed=False, weight_signed=True)
        assert result == int(np.dot(a.astype(np.int64), w.astype(np.int64)))
        assert cycles == act_bits * weight_bits


class TestBitInterleavedPacking:
    def test_pack_shape(self):
        codes = np.arange(10)
        rows = pack_bit_interleaved(codes, bits=5, row_width=4, signed=False)
        # 10 values over rows of 4 -> 3 rows per plane, 5 planes.
        assert rows.shape == (15, 4)

    def test_pack_values_are_bits(self):
        codes = np.arange(-8, 8)
        rows = pack_bit_interleaved(codes, bits=4, row_width=8, signed=True)
        assert set(np.unique(rows)).issubset({0, 1})

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(-64, 64, size=37)
        rows = pack_bit_interleaved(codes, bits=7, row_width=16, signed=True)
        recovered = unpack_bit_interleaved(rows, bits=7, count=37, signed=True)
        assert np.array_equal(recovered, codes)

    def test_footprint_scales_with_precision(self):
        codes = np.arange(64)
        rows_8 = pack_bit_interleaved(codes, bits=8, row_width=64, signed=False)
        rows_16 = pack_bit_interleaved(codes, bits=16, row_width=64, signed=False)
        assert rows_16.size == 2 * rows_8.size

    def test_invalid_row_width(self):
        with pytest.raises(ValueError):
            pack_bit_interleaved(np.arange(4), bits=4, row_width=0)

    def test_unpack_bad_shape_raises(self):
        with pytest.raises(ValueError):
            unpack_bit_interleaved(np.zeros((5, 4), dtype=np.int64), bits=2, count=4)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=60),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=60)
    def test_roundtrip_property(self, values, row_width):
        codes = np.array(values, dtype=np.int64)
        rows = pack_bit_interleaved(codes, bits=8, row_width=row_width,
                                    signed=False)
        recovered = unpack_bit_interleaved(rows, bits=8, count=len(values),
                                           signed=False)
        assert np.array_equal(recovered, codes)


class TestCountSignificantBits:
    def test_zero_needs_one_bit(self):
        assert count_significant_bits(np.array([0]))[0] == 1

    def test_unsigned_values(self):
        bits = count_significant_bits(np.array([1, 2, 3, 7, 8, 255]))
        assert list(bits) == [1, 2, 2, 3, 4, 8]

    def test_signed_values(self):
        bits = count_significant_bits(np.array([-1, -2, 1, 3, -8]), signed=True)
        assert list(bits) == [1, 2, 2, 3, 4]

    def test_negative_in_unsigned_mode_raises(self):
        with pytest.raises(ValueError):
            count_significant_bits(np.array([-1]), signed=False)

    def test_exact_for_wide_values(self):
        # Values just below a power of two round up in float64 from 2**53;
        # the count must stay exact over the whole int64 range.
        values = [2 ** 53 - 1, 2 ** 53, 2 ** 54 - 1, 2 ** 54, 2 ** 62 - 1]
        bits = count_significant_bits(np.array(values, dtype=np.int64))
        assert list(bits) == [int(v).bit_length() for v in values]
        signed_bits = count_significant_bits(
            np.array([-(2 ** 54), 2 ** 54 - 1], dtype=np.int64), signed=True)
        assert list(signed_bits) == [55, 55]

    def test_shape_preserved(self):
        codes = np.arange(12).reshape(3, 4)
        assert count_significant_bits(codes).shape == (3, 4)
