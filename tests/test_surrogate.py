"""Tests for surrogate-guided exploration (repro.explore.surrogate)."""

import importlib.util
import json

import numpy as np
import pytest

from repro.explore import (
    Axis,
    Featurizer,
    KernelRidgeSurrogate,
    SearchStrategy,
    SurrogateSearch,
    SweepSpec,
    expected_improvement,
    explore,
    register_surrogate,
    resolve_strategy,
    resolve_surrogate,
    upper_confidence_bound,
)
from repro.sim.jobs import JobExecutor

HAVE_SKLEARN = importlib.util.find_spec("sklearn") is not None

needs_sklearn = pytest.mark.skipif(not HAVE_SKLEARN,
                                   reason="scikit-learn not installed")
without_sklearn = pytest.mark.skipif(HAVE_SKLEARN,
                                     reason="scikit-learn is installed")


def surrogate_space(**overrides):
    kwargs = dict(
        axes=[
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "dstripes")),
        ],
        base={"network": "alexnet"},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def trace_dicts(result):
    return json.dumps([ep.to_dict() for ep in result.evaluated],
                      sort_keys=True)


class TestFeaturizer:
    def test_numeric_axis_log_scaled_onto_unit_interval(self):
        # equivalent_macs spans 256/32 = 8x, which hits LOG_SCALE_RATIO.
        space = surrogate_space()
        featurizer = Featurizer(space)
        points = [p for p in space.points() if p["accelerator"].kind == "loom"
                  and not p["accelerator"].options]
        column = featurizer.transform(points)[:, 0]
        assert column == pytest.approx([0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0])

    def test_numeric_axis_linear_when_span_is_small(self):
        space = surrogate_space(
            axes=[Axis("equivalent_macs", (32, 64, 128)),
                  Axis("accelerator", ("loom", "dstripes"))])
        featurizer = Featurizer(space)
        points = [p for p in space.points()
                  if p["accelerator"].kind == "loom"]
        column = featurizer.transform(points)[:, 0]
        # Linear min-max scaling: 64 sits at (64-32)/(128-32), not at 0.5.
        assert column == pytest.approx([0.0, 32.0 / 96.0, 1.0])

    def test_categorical_axis_one_hot(self):
        space = surrogate_space()
        featurizer = Featurizer(space)
        assert featurizer.width == 1 + 3  # one numeric + 3 accelerators
        matrix = featurizer.transform(space.points())
        onehot = matrix[:, 1:]
        assert np.all(onehot.sum(axis=1) == 1.0)
        assert set(np.unique(onehot)) == {0.0, 1.0}

    def test_constant_axes_and_base_parameters_are_skipped(self):
        space = surrogate_space(
            axes=[Axis("equivalent_macs", (32, 64)),
                  Axis("accelerator", ("loom",))])
        featurizer = Featurizer(space)
        assert featurizer.feature_names == ("equivalent_macs",)

    def test_off_axis_value_rejected(self):
        space = surrogate_space()
        other = surrogate_space(
            axes=[Axis("equivalent_macs", (32, 64, 128, 256)),
                  Axis("accelerator", ("stripes",))])
        featurizer = Featurizer(space)
        with pytest.raises(ValueError, match="not on the sweep's axis"):
            featurizer.transform(other.points()[:1])

    def test_encoding_depends_only_on_the_spec(self):
        space = surrogate_space()
        points = space.points()
        first = Featurizer(space).transform(points)
        second = Featurizer(surrogate_space()).transform(points)
        assert np.array_equal(first, second)


class TestKernelRidgeSurrogate:
    def toy(self):
        X = np.array([[0.0], [0.25], [0.5], [0.75], [1.0]])
        y = np.array([0.0, 1.0, 4.0, 9.0, 16.0])
        return X, y

    def test_near_interpolation_at_training_points(self):
        X, y = self.toy()
        model = KernelRidgeSurrogate()
        model.fit(X, y)
        mean, std = model.predict(X)
        assert mean == pytest.approx(y, abs=1e-2)
        assert np.all(std < 1e-2)

    def test_uncertainty_grows_away_from_training_points(self):
        X, y = self.toy()
        model = KernelRidgeSurrogate()
        model.fit(X, y)
        _, at_train = model.predict(X[:1])
        _, far_away = model.predict(np.array([[5.0]]))
        assert far_away[0] > at_train[0]
        assert far_away[0] > 0.0

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="before fit"):
            KernelRidgeSurrogate().predict(np.zeros((1, 1)))

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError, match="length_scale"):
            KernelRidgeSurrogate(length_scale=0.0)
        with pytest.raises(ValueError, match="noise"):
            KernelRidgeSurrogate(noise=-1.0)

    def test_constant_targets_are_handled(self):
        X, _ = self.toy()
        model = KernelRidgeSurrogate()
        model.fit(X, np.full(len(X), 7.0))
        mean, _ = model.predict(X)
        assert mean == pytest.approx(np.full(len(X), 7.0), abs=1e-3)


class TestSurrogateRegistry:
    def test_default_is_the_ridge_backend(self):
        assert isinstance(resolve_surrogate(None), KernelRidgeSurrogate)
        assert isinstance(resolve_surrogate("ridge"), KernelRidgeSurrogate)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown surrogate model"):
            resolve_surrogate("nonsense")

    def test_instance_passes_through_but_rejects_options(self):
        model = KernelRidgeSurrogate()
        assert resolve_surrogate(model) is model
        with pytest.raises(ValueError, match="options only apply"):
            resolve_surrogate(model, noise=1e-3)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_surrogate("ridge")(object)

    @without_sklearn
    def test_optional_backends_point_back_at_ridge(self):
        for name in ("gp", "gbt"):
            with pytest.raises(ImportError, match="ridge"):
                resolve_surrogate(name)


class TestAcquisitions:
    def test_expected_improvement_prefers_better_mean(self):
        ei = expected_improvement(np.array([1.0, 2.0]), np.array([1.0, 1.0]),
                                  best=1.0)
        assert ei[1] > ei[0] > 0.0

    def test_expected_improvement_prefers_uncertainty_at_equal_mean(self):
        ei = expected_improvement(np.array([1.0, 1.0]), np.array([0.1, 1.0]),
                                  best=1.0)
        assert ei[1] > ei[0]

    def test_expected_improvement_zero_std_falls_back_to_improvement(self):
        ei = expected_improvement(np.array([2.0, 0.5]), np.array([0.0, 0.0]),
                                  best=1.0, xi=0.0)
        assert ei == pytest.approx([1.0, 0.0])

    def test_upper_confidence_bound(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([2.0]),
                                     best=123.0, kappa=1.5)
        assert ucb == pytest.approx([4.0])


class _RecordingStrategy(SearchStrategy):
    """Wraps a strategy to record every proposed batch verbatim."""

    def __init__(self, inner):
        self.inner = inner
        self.batches = []

    def start(self, state):
        self.inner.start(state)

    def propose(self, state):
        batch = list(self.inner.propose(state))
        if batch:
            self.batches.append(batch)
        return batch

    def observe(self, evaluated):
        self.inner.observe(evaluated)


class TestSurrogateSearch:
    def options(self, **overrides):
        kwargs = dict(seed=3, initial=3, batch=2, rounds=3)
        kwargs.update(overrides)
        return kwargs

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            SurrogateSearch(initial=1)
        with pytest.raises(ValueError, match="batch"):
            SurrogateSearch(batch=0)
        with pytest.raises(ValueError, match="rounds"):
            SurrogateSearch(rounds=-1)
        with pytest.raises(ValueError, match="unknown acquisition"):
            SurrogateSearch(acquisition="pi")
        with pytest.raises(ValueError, match="unknown surrogate model"):
            SurrogateSearch(model="nonsense")

    def test_registered_under_its_name(self):
        strategy = resolve_strategy("surrogate", seed=5)
        assert isinstance(strategy, SurrogateSearch)
        assert strategy.name == "surrogate"
        assert strategy.seed == 5

    def test_same_seed_reproduces_the_trace(self):
        space = surrogate_space()
        traces = []
        for _ in range(2):
            with JobExecutor(cache=None) as executor:
                result = explore(space,
                                 strategy=SurrogateSearch(**self.options()),
                                 executor=executor)
            traces.append(trace_dicts(result))
        assert traces[0] == traces[1]

    def test_different_seeds_change_the_initial_design(self):
        space = surrogate_space()
        starts = []
        for seed in (0, 1):
            with JobExecutor(cache=None) as executor:
                result = explore(
                    space,
                    strategy=SurrogateSearch(**self.options(seed=seed)),
                    executor=executor)
            starts.append(tuple(ep.point for ep in result.evaluated[:3]))
        assert starts[0] != starts[1]

    def test_observed_points_never_proposed_twice(self):
        space = surrogate_space()
        recorder = _RecordingStrategy(SurrogateSearch(**self.options()))
        with JobExecutor(cache=None) as executor:
            explore(space, strategy=recorder, executor=executor)
        seen = set()
        for batch in recorder.batches:
            for point in batch:
                assert point not in seen, (
                    f"{point.label()} proposed in two batches"
                )
                seen.add(point)

    def test_budget_caps_true_simulations(self):
        space = surrogate_space()
        with JobExecutor(cache=None) as executor:
            result = explore(space,
                             strategy=SurrogateSearch(**self.options()),
                             executor=executor, budget=5)
        assert len(result.evaluated) == 5

    def test_validated_points_bit_identical_to_grid(self):
        space = surrogate_space()
        with JobExecutor(cache=None) as executor:
            grid = explore(space, strategy="grid", executor=executor)
        with JobExecutor(cache=None) as executor:
            guided = explore(space,
                             strategy=SurrogateSearch(**self.options()),
                             executor=executor)
        reference = {ep.point: ep.metrics for ep in grid.evaluated}
        assert guided.evaluated
        for ep in guided.evaluated:
            assert ep.metrics == reference[ep.point]

    def test_store_warm_results_are_free_training_data(self):
        space = surrogate_space()
        with JobExecutor() as executor:
            explore(space, strategy="grid", executor=executor)
            executed = executor.stats.executed
            result = explore(space,
                             strategy=SurrogateSearch(**self.options()),
                             executor=executor, budget=1)
            # The whole grid is warm in the result cache: the surrogate
            # trains on all of it without issuing a single new simulation,
            # and the budget of 1 never gets charged.
            assert executor.stats.executed == executed
        assert len(result.evaluated) == len(space.points())

    def test_degenerate_space_without_informative_axes(self):
        space = SweepSpec(axes=[Axis("equivalent_macs", (32,))],
                          base={"network": "alexnet", "accelerator": "loom"})
        with JobExecutor(cache=None) as executor:
            result = explore(space,
                             strategy=SurrogateSearch(**self.options()),
                             executor=executor)
        assert len(result.evaluated) == 1

    def test_ucb_acquisition_runs_end_to_end(self):
        space = surrogate_space()
        with JobExecutor(cache=None) as executor:
            result = explore(
                space,
                strategy=SurrogateSearch(**self.options(acquisition="ucb",
                                                        kappa=2.0)),
                executor=executor)
        assert result.evaluated


@needs_sklearn
class TestSklearnBackends:
    def toy(self):
        rng = np.random.RandomState(0)
        X = rng.uniform(size=(30, 2))
        y = X[:, 0] * 2.0 + np.sin(3.0 * X[:, 1])
        return X, y

    def test_gp_fit_predict(self):
        X, y = self.toy()
        model = resolve_surrogate("gp")
        model.fit(X, y)
        mean, std = model.predict(X)
        assert mean == pytest.approx(y, abs=0.2)
        assert std.shape == y.shape
        assert np.all(std >= 0.0)

    def test_gbt_fit_predict(self):
        X, y = self.toy()
        model = resolve_surrogate("gbt", estimators=50)
        model.fit(X, y)
        mean, std = model.predict(X)
        assert mean == pytest.approx(y, abs=0.5)
        assert np.all(std > 0.0)  # floored, never zero

    def test_gbt_bad_options_rejected(self):
        with pytest.raises(ValueError, match="estimators"):
            resolve_surrogate("gbt", estimators=0)

    @pytest.mark.parametrize("backend", ["gp", "gbt"])
    def test_search_with_sklearn_backend_matches_grid_bitwise(self, backend):
        space = surrogate_space()
        with JobExecutor(cache=None) as executor:
            grid = explore(space, strategy="grid", executor=executor)
        with JobExecutor(cache=None) as executor:
            guided = explore(
                space,
                strategy=SurrogateSearch(seed=3, initial=3, batch=2,
                                         rounds=2, model=backend),
                executor=executor)
        reference = {ep.point: ep.metrics for ep in grid.evaluated}
        for ep in guided.evaluated:
            assert ep.metrics == reference[ep.point]
