"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_executor, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure4", "area", "table3",
                        "table4", "ablation", "all"):
            assert parser.parse_args([command]).command == command

    def test_figure5_configs_argument(self):
        args = build_parser().parse_args(["figure5", "--configs", "32", "64"])
        assert args.configs == [32, 64]

    def test_summary_arguments(self):
        args = build_parser().parse_args(
            ["summary", "--network", "vggm", "--accuracy", "99%"])
        assert args.network == "vggm"
        assert args.accuracy == "99%"

    def test_summary_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--network", "resnet"])

    def test_pipeline_flags_default(self):
        args = build_parser().parse_args(["all"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_pipeline_flags_parse(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--cache-dir", "/tmp/c", "table2"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert build_parser().parse_args(["--no-cache", "all"]).no_cache is True

    def test_no_cache_conflicts_with_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--no-cache", "--cache-dir", "/tmp/c", "all"])

    def test_networks_command_parses(self):
        assert build_parser().parse_args(["networks"]).command == "networks"

    def test_verbose_flag_parses(self):
        assert build_parser().parse_args(["-v", "all"]).verbose is True
        assert build_parser().parse_args(["all"]).verbose is False

    def test_summary_csv_flag(self):
        args = build_parser().parse_args(["summary", "--csv", "/tmp/x.csv"])
        assert args.csv == "/tmp/x.csv"

    def test_explore_arguments(self):
        args = build_parser().parse_args([
            "explore", "--axis", "equivalent_macs=32,64",
            "--axis", "accelerator=loom,dstripes",
            "--base", "network=nin", "--strategy", "random",
            "--samples", "4", "--seed", "9",
            "--objectives", "speedup,area", "--csv", "/tmp/sweep.csv",
        ])
        assert args.command == "explore"
        assert args.axis == ["equivalent_macs=32,64", "accelerator=loom,dstripes"]
        assert args.base == ["network=nin"]
        assert args.strategy == "random" and args.samples == 4 and args.seed == 9
        assert args.objectives == "speedup,area"
        assert args.csv == "/tmp/sweep.csv"

    def test_explore_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--strategy", "genetic"])


class TestBuildExecutor:
    def test_default_executor_has_memory_cache(self):
        executor = build_executor(build_parser().parse_args(["all"]))
        assert executor.workers == 1
        assert executor.cache is not None
        assert executor.cache.directory is None

    def test_no_cache_disables_cache(self):
        executor = build_executor(
            build_parser().parse_args(["--no-cache", "all"]))
        assert executor.cache is None

    def test_cache_dir_enables_disk_store(self, tmp_path):
        executor = build_executor(
            build_parser().parse_args(["--cache-dir", str(tmp_path / "c"), "all"]))
        assert executor.cache.directory == tmp_path / "c"

    def test_jobs_flag_sets_workers(self):
        executor = build_executor(
            build_parser().parse_args(["--jobs", "3", "all"]))
        executor.close()
        assert executor.workers == 3


class TestMain:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "alexnet" in out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_area_output(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "area" in out.lower()

    def test_summary_output(self, capsys):
        assert main(["summary", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "TOTAL" in out

    def test_figure5_with_reduced_sweep(self, capsys):
        assert main(["figure5", "--configs", "32", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "512" not in out.split("\n")[2]

    def test_networks_output(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        # Every zoo network with its conv/fc layer counts.
        assert "googlenet" in out and "57" in out
        assert "nin" in out and "vgg19" in out

    def test_no_cache_flag_runs(self, capsys):
        assert main(["--no-cache", "summary", "--network", "alexnet"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_parallel_output_identical_to_serial(self, capsys):
        assert main(["figure5", "--configs", "32"]) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2", "figure5", "--configs", "32"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_dir_reused_across_invocations(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["--cache-dir", cache_dir, "table2"]) == 0
        first = capsys.readouterr().out
        assert main(["--cache-dir", cache_dir, "table2"]) == 0
        assert capsys.readouterr().out == first
        import os
        assert any(name.endswith(".json") for name in os.listdir(cache_dir))

    def test_summary_csv_export(self, capsys, tmp_path):
        path = tmp_path / "layers.csv"
        assert main(["summary", "--network", "alexnet",
                     "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"per-layer CSV written to {path}" in out
        rows = path.read_text().strip().splitlines()
        assert rows[0].startswith("network,accelerator,layer")
        # DPNN and Loom rows for every compute layer, plus the header.
        assert len(rows) > 2 and ",DPNN," in rows[1]
        assert any(",Loom-1b," in row for row in rows)

    def test_summary_csv_unwritable_path_is_a_clean_cli_error(self, capsys,
                                                              tmp_path):
        with pytest.raises(SystemExit):
            main(["summary", "--network", "alexnet",
                  "--csv", str(tmp_path / "missing-dir" / "x.csv")])
        assert "--csv" in capsys.readouterr().err

    def test_figure5_duplicate_configs_accepted(self, capsys):
        assert main(["figure5", "--configs", "32", "32"]) == 0
        header = capsys.readouterr().out.splitlines()[1]
        assert header.count("32") == 2

    def test_verbose_reports_pipeline_stats(self, capsys):
        assert main(["--verbose", "summary", "--network", "alexnet"]) == 0
        captured = capsys.readouterr()
        assert "TOTAL" in captured.out
        assert "pipeline:" in captured.err and "simulated" in captured.err


class TestExploreCommand:
    ARGS = ["explore",
            "--axis", "equivalent_macs=32,64",
            "--axis", "accelerator=loom,dstripes"]

    def test_inline_axes_sweep(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "design-space exploration: grid strategy" in out
        assert "Pareto frontier" in out
        assert "loom-1b" in out and "dstripes" in out

    def test_grid_file_sweep(self, capsys, tmp_path):
        import json
        grid = tmp_path / "sweep.json"
        grid.write_text(json.dumps({
            "axes": {"equivalent_macs": [32, 64],
                     "accelerator": ["loom", "dstripes"]},
            "base": {"network": "alexnet"},
        }))
        assert main(["explore", "--grid", str(grid)]) == 0
        assert "4/4 feasible points" in capsys.readouterr().out

    def test_grid_conflicts_with_axes(self, tmp_path):
        grid = tmp_path / "sweep.json"
        grid.write_text("{}")
        with pytest.raises(SystemExit):
            main(["explore", "--grid", str(grid),
                  "--axis", "equivalent_macs=32"])

    def test_csv_export(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        assert main(self.ARGS + ["--csv", str(path)]) == 0
        assert f"written to {path}" in capsys.readouterr().out
        rows = path.read_text().strip().splitlines()
        assert len(rows) == 1 + 4
        assert "pareto_rank" in rows[0]

    def test_markdown_output(self, capsys):
        assert main(self.ARGS + ["--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("| equivalent_macs |")

    def test_random_strategy_is_reproducible(self, capsys):
        args = self.ARGS + ["--strategy", "random", "--samples", "2",
                            "--seed", "5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert "2/4 feasible points" in first

    def test_repeat_run_with_disk_cache_simulates_nothing(self, capsys,
                                                          tmp_path):
        args = ["--verbose", "--cache-dir", str(tmp_path / "cache")] + self.ARGS
        assert main(args) == 0
        first = capsys.readouterr()
        assert " 6 simulated" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert " 0 simulated" in second.err

    def test_constraint_flag(self, capsys):
        assert main(["explore",
                     "--axis", "am_capacity_bytes=65536,4194304",
                     "--base", "accelerator=dpnn",
                     "--constraint", "am_fits_working_set",
                     "--objectives", "cycles,area"]) == 0
        assert "1/1 feasible points" in capsys.readouterr().out

    def test_unknown_axis_errors_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["explore", "--axis", "warp_drive=1,2"])
