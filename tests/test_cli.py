"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure4", "area", "table3",
                        "table4", "ablation", "all"):
            assert parser.parse_args([command]).command == command

    def test_figure5_configs_argument(self):
        args = build_parser().parse_args(["figure5", "--configs", "32", "64"])
        assert args.configs == [32, 64]

    def test_summary_arguments(self):
        args = build_parser().parse_args(
            ["summary", "--network", "vggm", "--accuracy", "99%"])
        assert args.network == "vggm"
        assert args.accuracy == "99%"

    def test_summary_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--network", "resnet"])


class TestMain:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "alexnet" in out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_area_output(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "area" in out.lower()

    def test_summary_output(self, capsys):
        assert main(["summary", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "TOTAL" in out

    def test_figure5_with_reduced_sweep(self, capsys):
        assert main(["figure5", "--configs", "32", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "512" not in out.split("\n")[2]
