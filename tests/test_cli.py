"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_executor, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure4", "area", "table3",
                        "table4", "ablation", "all"):
            assert parser.parse_args([command]).command == command

    def test_figure5_configs_argument(self):
        args = build_parser().parse_args(["figure5", "--configs", "32", "64"])
        assert args.configs == [32, 64]

    def test_summary_arguments(self):
        args = build_parser().parse_args(
            ["summary", "--network", "vggm", "--accuracy", "99%"])
        assert args.network == "vggm"
        assert args.accuracy == "99%"

    def test_summary_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--network", "resnet"])

    def test_pipeline_flags_default(self):
        args = build_parser().parse_args(["all"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_pipeline_flags_parse(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--cache-dir", "/tmp/c", "table2"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert build_parser().parse_args(["--no-cache", "all"]).no_cache is True

    def test_no_cache_conflicts_with_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--no-cache", "--cache-dir", "/tmp/c", "all"])

    def test_networks_command_parses(self):
        assert build_parser().parse_args(["networks"]).command == "networks"


class TestBuildExecutor:
    def test_default_executor_has_memory_cache(self):
        executor = build_executor(build_parser().parse_args(["all"]))
        assert executor.workers == 1
        assert executor.cache is not None
        assert executor.cache.directory is None

    def test_no_cache_disables_cache(self):
        executor = build_executor(
            build_parser().parse_args(["--no-cache", "all"]))
        assert executor.cache is None

    def test_cache_dir_enables_disk_store(self, tmp_path):
        executor = build_executor(
            build_parser().parse_args(["--cache-dir", str(tmp_path / "c"), "all"]))
        assert executor.cache.directory == tmp_path / "c"

    def test_jobs_flag_sets_workers(self):
        executor = build_executor(
            build_parser().parse_args(["--jobs", "3", "all"]))
        executor.close()
        assert executor.workers == 3


class TestMain:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "alexnet" in out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_area_output(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "area" in out.lower()

    def test_summary_output(self, capsys):
        assert main(["summary", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "TOTAL" in out

    def test_figure5_with_reduced_sweep(self, capsys):
        assert main(["figure5", "--configs", "32", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "512" not in out.split("\n")[2]

    def test_networks_output(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        # Every zoo network with its conv/fc layer counts.
        assert "googlenet" in out and "57" in out
        assert "nin" in out and "vgg19" in out

    def test_no_cache_flag_runs(self, capsys):
        assert main(["--no-cache", "summary", "--network", "alexnet"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_parallel_output_identical_to_serial(self, capsys):
        assert main(["figure5", "--configs", "32"]) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2", "figure5", "--configs", "32"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_dir_reused_across_invocations(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["--cache-dir", cache_dir, "table2"]) == 0
        first = capsys.readouterr().out
        assert main(["--cache-dir", cache_dir, "table2"]) == 0
        assert capsys.readouterr().out == first
        import os
        assert any(name.endswith(".json") for name in os.listdir(cache_dir))
