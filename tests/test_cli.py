"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_executor, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure4", "area", "table3",
                        "table4", "ablation", "all"):
            assert parser.parse_args([command]).command == command

    def test_figure5_configs_argument(self):
        args = build_parser().parse_args(["figure5", "--configs", "32", "64"])
        assert args.configs == [32, 64]

    def test_summary_arguments(self):
        args = build_parser().parse_args(
            ["summary", "--network", "vggm", "--accuracy", "99%"])
        assert args.network == "vggm"
        assert args.accuracy == "99%"

    def test_summary_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--network", "resnet"])

    def test_pipeline_flags_default(self):
        args = build_parser().parse_args(["all"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_pipeline_flags_parse(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--cache-dir", "/tmp/c", "table2"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert build_parser().parse_args(["--no-cache", "all"]).no_cache is True

    def test_no_cache_conflicts_with_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--no-cache", "--cache-dir", "/tmp/c", "all"])

    def test_networks_command_parses(self):
        assert build_parser().parse_args(["networks"]).command == "networks"

    def test_verbose_flag_parses(self):
        assert build_parser().parse_args(["-v", "all"]).verbose is True
        assert build_parser().parse_args(["all"]).verbose is False

    def test_summary_csv_flag(self):
        args = build_parser().parse_args(["summary", "--csv", "/tmp/x.csv"])
        assert args.csv == "/tmp/x.csv"

    def test_explore_arguments(self):
        args = build_parser().parse_args([
            "explore", "--axis", "equivalent_macs=32,64",
            "--axis", "accelerator=loom,dstripes",
            "--base", "network=nin", "--strategy", "random",
            "--samples", "4", "--seed", "9",
            "--objectives", "speedup,area", "--csv", "/tmp/sweep.csv",
        ])
        assert args.command == "explore"
        assert args.axis == ["equivalent_macs=32,64", "accelerator=loom,dstripes"]
        assert args.base == ["network=nin"]
        assert args.strategy == "random" and args.samples == 4 and args.seed == 9
        assert args.objectives == "speedup,area"
        assert args.csv == "/tmp/sweep.csv"

    def test_explore_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--strategy", "genetic"])

    def test_explore_strategy_opt_and_budget(self):
        args = build_parser().parse_args([
            "explore", "--axis", "equivalent_macs=32,64",
            "--strategy", "surrogate",
            "--strategy-opt", "initial=4", "--strategy-opt", "model=ridge",
            "--budget", "12",
        ])
        assert args.strategy == "surrogate"
        assert args.strategy_opt == ["initial=4", "model=ridge"]
        assert args.budget == 12
        assert build_parser().parse_args(["explore"]).budget is None
        assert build_parser().parse_args(["explore"]).strategy_opt == []

    def test_explore_budget_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--budget", "0"])

    def test_explore_bad_strategy_opt_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "--axis", "equivalent_macs=32,64",
                  "--strategy-opt", "initial"])
        assert excinfo.value.code == 2
        assert "key=value" in capsys.readouterr().err

    def test_explore_remote_flag(self):
        args = build_parser().parse_args(
            ["explore", "--remote", "http://127.0.0.1:8100"])
        assert args.remote == "http://127.0.0.1:8100"
        assert build_parser().parse_args(["explore"]).remote is None


class TestJobsValidation:
    """--jobs must be rejected up front with a clear message, never allowed
    to fail deep inside the multiprocessing pool constructor."""

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_jobs_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--jobs", bad, "all"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "--jobs" in message and "must be >= 1" in message

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--jobs", "many", "all"])
        assert "expected an integer" in capsys.readouterr().err

    def test_main_rejects_bad_jobs_before_any_simulation(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--jobs", "0", "table2"])
        assert excinfo.value.code == 2


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8100
        assert args.store == ".loom-serve.db" and args.no_store is False
        assert args.queue_limit == 8
        assert args.max_entries is None and args.max_memory_entries == 512
        assert args.ready_file is None

    def test_serve_port_zero_is_allowed(self):
        assert build_parser().parse_args(["serve", "--port", "0"]).port == 0

    def test_serve_rejects_bad_ports(self, capsys):
        for bad in ("-1", "70000", "http"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--port", bad])

    def test_serve_store_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--store", "/tmp/x.db", "--no-store"])

    def test_serve_conflicts_with_global_cache_flags(self, capsys):
        for flags in (["--no-cache"], ["--cache-dir", "/tmp/c"]):
            with pytest.raises(SystemExit) as excinfo:
                main(flags + ["serve"])
            assert excinfo.value.code == 2
        assert "--store" in capsys.readouterr().err

    def test_remote_commands_reject_local_pipeline_flags(self, capsys):
        # Regression: --engine/--jobs/--cache flags would be silent no-ops
        # on commands that execute on the server; they must error instead.
        cases = [
            ["--engine", "event", "submit", "--url", "http://x"],
            ["--jobs", "4", "stats", "--remote", "http://x"],
            ["--no-cache", "submit", "--url", "http://x"],
            ["--cache-dir", "/tmp/c", "explore", "--remote", "http://x"],
        ]
        for argv in cases:
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no effect" in err and "server" in err
        # Local explore still accepts them all.
        args = build_parser().parse_args(
            ["--engine", "event", "--jobs", "2", "explore"])
        assert args.remote is None


class TestClusterParser:
    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.command == "cluster"
        assert args.workers == 2
        assert args.host == "127.0.0.1" and args.port == 8200
        assert args.store_dir == ".loom-cluster" and args.no_store is False
        assert args.queue_limit == 8
        assert args.rate is None and args.burst == 100 and args.quota is None
        assert args.ready_file is None
        assert args.peer_cache is True
        assert args.peer_timeout_ms == 1000.0

    def test_cluster_port_zero_is_allowed(self):
        assert build_parser().parse_args(["cluster", "--port", "0"]).port == 0

    def test_cluster_store_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--store-dir", "/tmp/x", "--no-store"])

    def test_cluster_peer_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["cluster", "--no-peer-cache", "--peer-timeout-ms", "250"])
        assert args.peer_cache is False
        assert args.peer_timeout_ms == 250.0

    def test_cluster_peer_cache_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--peer-cache", "--no-peer-cache"])

    def test_cluster_rejects_non_positive_rate_at_parse_time(self, capsys):
        # Regression: `--rate 0` used to pass argparse and only explode at
        # the first client's request, deep in the coordinator request path.
        for value in ("0", "-3", "nope"):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(["cluster", "--rate", value])
            assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be > 0" in err and "expected a number" in err

    def test_cluster_rejects_non_positive_peer_timeout(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--peer-timeout-ms", "0"])

    def test_cluster_conflicts_with_global_cache_flags(self, capsys):
        for flags in (["--no-cache"], ["--cache-dir", "/tmp/c"]):
            with pytest.raises(SystemExit) as excinfo:
                main(flags + ["cluster"])
            assert excinfo.value.code == 2

    def test_explore_stream_requires_remote(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "--stream",
                  "--axis", "equivalent_macs=32,64"])
        assert excinfo.value.code == 2
        assert "--remote" in capsys.readouterr().err

    def test_submit_arguments(self):
        args = build_parser().parse_args([
            "submit", "--url", "http://127.0.0.1:8100",
            "--network", "nin", "--accelerator", "loom:bits_per_cycle=2",
            "--set", "equivalent_macs=256", "--json",
        ])
        assert args.url == "http://127.0.0.1:8100"
        assert args.network == "nin"
        assert args.accelerator == "loom:bits_per_cycle=2"
        assert args.set == ["equivalent_macs=256"]
        assert args.json is True

    def test_submit_requires_url(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_stats_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stats", "--remote", "http://x", "--store", "/tmp/x.db"])
        args = build_parser().parse_args(["stats", "--remote", "http://x"])
        assert args.remote == "http://x"


class TestServeMain:
    def test_submit_to_unreachable_server_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "--url", "http://127.0.0.1:1", "--network",
                  "alexnet"])
        assert excinfo.value.code == 2

    def test_submit_rejects_bad_set_tokens(self, capsys):
        with pytest.raises(SystemExit):
            main(["submit", "--url", "http://127.0.0.1:1",
                  "--set", "equivalent_macs"])
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_stats_on_missing_store_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["stats", "--store", "/nonexistent/store.db"])
        assert "no store database" in capsys.readouterr().err

    def test_stats_on_a_directory_is_a_clean_error(self, tmp_path, capsys):
        # Regression: a connect-time SQLite failure (e.g. pointing --store
        # at a directory) must be a parser error, not a raw traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "--store", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "not a result-store database" in capsys.readouterr().err

    def test_stats_never_wipes_an_incompatible_store(self, tmp_path, capsys):
        import sqlite3

        from repro.serve import SQLiteResultStore
        from repro.serve.store import SCHEMA_VERSION

        path = tmp_path / "s.db"
        store = SQLiteResultStore(path)
        store.close()
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        before = path.read_bytes()
        assert main(["stats", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert '"compatible": false' in out
        assert path.read_bytes() == before  # untouched

    def test_stats_reads_a_store_offline(self, tmp_path, capsys):
        from repro.serve import SQLiteResultStore
        store = SQLiteResultStore(tmp_path / "s.db")
        store.close()
        assert main(["stats", "--store", str(tmp_path / "s.db")]) == 0
        out = capsys.readouterr().out
        assert '"backend": "sqlite"' in out and '"entries": 0' in out

    def test_serve_and_submit_round_trip(self, tmp_path, capsys):
        # One in-process service; the CLI submit path runs against it.
        from repro.serve import SimulationService

        with SimulationService() as service:
            assert main(["submit", "--url", service.url,
                         "--network", "alexnet", "--accelerator", "dpnn"]) == 0
            out = capsys.readouterr().out
            assert "served: alexnet on DPNN" in out
            assert "cycles" in out

    def test_explore_remote_round_trip(self, tmp_path, capsys):
        from repro.serve import SimulationService

        with SimulationService() as service:
            assert main([
                "explore", "--remote", service.url,
                "--axis", "equivalent_macs=32,64",
                "--axis", "accelerator=loom,dpnn",
            ]) == 0
            out = capsys.readouterr().out
            assert "Pareto frontier" in out
            assert f"remote: 8 jobs submitted to {service.url}" in out

    def test_serve_command_full_lifecycle(self, tmp_path, capsys):
        # The `loom-repro serve` loop itself, in-process: binds port 0,
        # writes the ready file, serves a submission, stops on /shutdown.
        import threading

        from repro.serve import ServeClient

        ready = tmp_path / "url.txt"
        exit_codes = []

        def run_server():
            exit_codes.append(main([
                "serve", "--port", "0", "--store", str(tmp_path / "s.db"),
                "--queue-limit", "2", "--ready-file", str(ready),
            ]))

        thread = threading.Thread(target=run_server)
        thread.start()
        try:
            for _ in range(200):
                if ready.exists() and ready.read_text().strip():
                    break
                thread.join(timeout=0.05)
            url = ready.read_text().strip()
            client = ServeClient(url)
            done = client.submit(network="alexnet", accelerator="dpnn")
            assert done.status == "executed"
            client.shutdown()
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_codes == [0]
        out = capsys.readouterr().out
        assert "serve: stopped after" in out
        assert "1 points submitted" in out


class TestBuildExecutor:
    def test_default_executor_has_memory_cache(self):
        executor = build_executor(build_parser().parse_args(["all"]))
        assert executor.workers == 1
        assert executor.cache is not None
        assert executor.cache.directory is None

    def test_no_cache_disables_cache(self):
        executor = build_executor(
            build_parser().parse_args(["--no-cache", "all"]))
        assert executor.cache is None

    def test_cache_dir_enables_disk_store(self, tmp_path):
        executor = build_executor(
            build_parser().parse_args(["--cache-dir", str(tmp_path / "c"), "all"]))
        assert executor.cache.directory == tmp_path / "c"

    def test_jobs_flag_sets_workers(self):
        executor = build_executor(
            build_parser().parse_args(["--jobs", "3", "all"]))
        executor.close()
        assert executor.workers == 3


class TestMain:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "alexnet" in out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_area_output(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "area" in out.lower()

    def test_summary_output(self, capsys):
        assert main(["summary", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "TOTAL" in out

    def test_figure5_with_reduced_sweep(self, capsys):
        assert main(["figure5", "--configs", "32", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "512" not in out.split("\n")[2]

    def test_networks_output(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        # Every zoo network with its conv/fc layer counts.
        assert "googlenet" in out and "57" in out
        assert "nin" in out and "vgg19" in out

    def test_no_cache_flag_runs(self, capsys):
        assert main(["--no-cache", "summary", "--network", "alexnet"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_parallel_output_identical_to_serial(self, capsys):
        assert main(["figure5", "--configs", "32"]) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2", "figure5", "--configs", "32"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_dir_reused_across_invocations(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["--cache-dir", cache_dir, "table2"]) == 0
        first = capsys.readouterr().out
        assert main(["--cache-dir", cache_dir, "table2"]) == 0
        assert capsys.readouterr().out == first
        import os
        assert any(name.endswith(".json") for name in os.listdir(cache_dir))

    def test_summary_csv_export(self, capsys, tmp_path):
        path = tmp_path / "layers.csv"
        assert main(["summary", "--network", "alexnet",
                     "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"per-layer CSV written to {path}" in out
        rows = path.read_text().strip().splitlines()
        assert rows[0].startswith("network,accelerator,layer")
        # DPNN and Loom rows for every compute layer, plus the header.
        assert len(rows) > 2 and ",DPNN," in rows[1]
        assert any(",Loom-1b," in row for row in rows)

    def test_summary_csv_unwritable_path_is_a_clean_cli_error(self, capsys,
                                                              tmp_path):
        with pytest.raises(SystemExit):
            main(["summary", "--network", "alexnet",
                  "--csv", str(tmp_path / "missing-dir" / "x.csv")])
        assert "--csv" in capsys.readouterr().err

    def test_figure5_duplicate_configs_accepted(self, capsys):
        assert main(["figure5", "--configs", "32", "32"]) == 0
        header = capsys.readouterr().out.splitlines()[1]
        assert header.count("32") == 2

    def test_verbose_reports_pipeline_stats(self, capsys):
        assert main(["--verbose", "summary", "--network", "alexnet"]) == 0
        captured = capsys.readouterr()
        assert "TOTAL" in captured.out
        assert "pipeline:" in captured.err and "simulated" in captured.err


class TestExploreCommand:
    ARGS = ["explore",
            "--axis", "equivalent_macs=32,64",
            "--axis", "accelerator=loom,dstripes"]

    def test_inline_axes_sweep(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "design-space exploration: grid strategy" in out
        assert "Pareto frontier" in out
        assert "loom-1b" in out and "dstripes" in out

    def test_grid_file_sweep(self, capsys, tmp_path):
        import json
        grid = tmp_path / "sweep.json"
        grid.write_text(json.dumps({
            "axes": {"equivalent_macs": [32, 64],
                     "accelerator": ["loom", "dstripes"]},
            "base": {"network": "alexnet"},
        }))
        assert main(["explore", "--grid", str(grid)]) == 0
        assert "4/4 feasible points" in capsys.readouterr().out

    def test_grid_conflicts_with_axes(self, tmp_path):
        grid = tmp_path / "sweep.json"
        grid.write_text("{}")
        with pytest.raises(SystemExit):
            main(["explore", "--grid", str(grid),
                  "--axis", "equivalent_macs=32"])

    def test_csv_export(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        assert main(self.ARGS + ["--csv", str(path)]) == 0
        assert f"written to {path}" in capsys.readouterr().out
        rows = path.read_text().strip().splitlines()
        assert len(rows) == 1 + 4
        assert "pareto_rank" in rows[0]

    def test_markdown_output(self, capsys):
        assert main(self.ARGS + ["--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("| equivalent_macs |")

    def test_surrogate_strategy_with_options_and_budget(self, capsys):
        assert main(self.ARGS + [
            "--strategy", "surrogate", "--seed", "1", "--budget", "3",
            "--strategy-opt", "initial=2", "--strategy-opt", "batch=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "design-space exploration: surrogate strategy" in out
        # The budget caps the sweep at 3 of the 4 feasible points.
        assert "3/4 feasible points" in out

    def test_random_strategy_is_reproducible(self, capsys):
        args = self.ARGS + ["--strategy", "random", "--samples", "2",
                            "--seed", "5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert "2/4 feasible points" in first

    def test_repeat_run_with_disk_cache_simulates_nothing(self, capsys,
                                                          tmp_path):
        args = ["--verbose", "--cache-dir", str(tmp_path / "cache")] + self.ARGS
        assert main(args) == 0
        first = capsys.readouterr()
        assert " 6 simulated" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert " 0 simulated" in second.err

    def test_constraint_flag(self, capsys):
        assert main(["explore",
                     "--axis", "am_capacity_bytes=65536,4194304",
                     "--base", "accelerator=dpnn",
                     "--constraint", "am_fits_working_set",
                     "--objectives", "cycles,area"]) == 0
        assert "1/1 feasible points" in capsys.readouterr().out

    def test_unknown_axis_errors_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["explore", "--axis", "warp_drive=1,2"])


class TestObservabilityFlags:
    def test_log_flags_default(self):
        args = build_parser().parse_args(["all"])
        assert args.log_level == "info"
        assert args.log_json is False

    def test_log_flags_parse(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "--log-json", "networks"])
        assert args.log_level == "debug"
        assert args.log_json is True

    def test_unknown_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud", "all"])

    def test_trace_out_parses_on_traced_commands(self):
        parser = build_parser()
        for argv in (["run", "--trace-out", "t.json"],
                     ["explore", "--trace-out", "t.json"],
                     ["validate", "--trace-out", "t.json"]):
            assert parser.parse_args(argv).trace_out == "t.json"

    def test_trace_dump_arguments(self):
        args = build_parser().parse_args(
            ["trace", "dump", "--remote", "http://h:1", "--out", "t.json"])
        assert args.command == "trace"
        assert args.trace_command == "dump"
        assert args.remote == "http://h:1"
        assert args.out == "t.json"

    def test_trace_dump_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["run", "--network", "alexnet",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        events = [event for event in document["traceEvents"]
                  if event.get("ph") == "X"]
        names = {event["name"] for event in events}
        assert "cli.run" in names
        assert "executor.run" in names
        # Executor spans nest under the CLI root: one connected trace.
        root = next(e for e in events if e["name"] == "cli.run")
        assert all(event["args"]["trace_id"] == root["args"]["trace_id"]
                   for event in events)

    def test_trace_dump_local_prints_a_document(self, capsys):
        import json

        assert main(["trace", "dump"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "traceEvents" in document

    def test_log_json_mode_emits_parseable_records(self, tmp_path, capsys):
        import json

        assert main(["--log-json", "run", "--network", "alexnet",
                     "--trace-out", str(tmp_path / "t.json")]) == 0
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.splitlines()
                   if line.startswith("{")]
        assert any(record["event"] == "trace.written"
                   for record in records)
