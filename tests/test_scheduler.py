"""Tests for the Loom schedules (repro.core.scheduler)."""

import pytest

from repro.core.scheduler import (
    LoomGeometry,
    choose_cascade_slices,
    schedule_conv_layer,
    schedule_fc_layer,
)
from repro.nn.layers import Conv2D, FullyConnected, TensorShape
from repro.nn.network import LayerWithPrecision
from repro.quant.precision import LayerPrecision


def conv_layer(out_channels=128, kernel=3, in_channels=128, spatial=32,
               act_bits=8, weight_bits=11, stride=1, padding=1):
    layer = Conv2D(name="conv", out_channels=out_channels, kernel=kernel,
                   stride=stride, padding=padding)
    in_shape = TensorShape(in_channels, spatial, spatial)
    return LayerWithPrecision(
        layer=layer, input_shape=in_shape,
        output_shape=layer.output_shape(in_shape),
        precision=LayerPrecision(activation_bits=act_bits,
                                 weight_bits=weight_bits),
    )


def fc_layer(out_features=4096, in_features=9216, weight_bits=10):
    layer = FullyConnected(name="fc", out_features=out_features)
    in_shape = TensorShape(in_features)
    return LayerWithPrecision(
        layer=layer, input_shape=in_shape,
        output_shape=layer.output_shape(in_shape),
        precision=LayerPrecision(activation_bits=16, weight_bits=weight_bits),
    )


class TestLoomGeometry:
    def test_paper_configuration(self):
        geometry = LoomGeometry(equivalent_macs=128, bits_per_cycle=1)
        assert geometry.filter_rows == 128
        assert geometry.window_columns == 16
        assert geometry.num_sips == 2048
        assert geometry.weight_bus_bits == 2048
        assert geometry.activation_bus_bits == 256

    def test_multibit_variants_shrink_grid(self):
        lm2 = LoomGeometry(bits_per_cycle=2)
        lm4 = LoomGeometry(bits_per_cycle=4)
        assert lm2.num_sips == 1024
        assert lm4.num_sips == 512
        # Total 1-bit products per cycle is the same for all variants.
        assert lm2.num_sips * 16 * 2 == 2048 * 16
        assert lm4.num_sips * 16 * 4 == 2048 * 16

    def test_window_fanout_trades_rows_for_columns(self):
        geometry = LoomGeometry(equivalent_macs=128, window_fanout=4)
        assert geometry.filter_rows == 32
        assert geometry.window_columns == 64
        assert geometry.num_sips == 2048

    def test_steps_for_activation_bits(self):
        lm1 = LoomGeometry(bits_per_cycle=1)
        lm4 = LoomGeometry(bits_per_cycle=4)
        assert lm1.steps_for_activation_bits(9) == 9
        assert lm4.steps_for_activation_bits(9) == 3  # ceil(9/4)
        assert lm4.steps_for_activation_bits(7.5) == pytest.approx(1.875)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoomGeometry(equivalent_macs=100)
        with pytest.raises(ValueError):
            LoomGeometry(bits_per_cycle=3)
        with pytest.raises(ValueError):
            LoomGeometry(window_fanout=3)
        with pytest.raises(ValueError):
            LoomGeometry().steps_for_activation_bits(0)


class TestConvSchedule:
    def test_ideal_speedup_formula(self):
        """For a layer that tiles perfectly, Loom beats DPNN by 256/(Pa*Pw)."""
        lw = conv_layer(out_channels=128, in_channels=128, spatial=32,
                        act_bits=8, weight_bits=8)
        geometry = LoomGeometry()
        schedule = schedule_conv_layer(lw, geometry)
        conv = lw.layer
        windows = conv.num_windows(lw.input_shape)
        terms = conv.window_size(lw.input_shape)
        dpnn_cycles = windows * -(-terms // 16) * -(-128 // 8)
        ratio = dpnn_cycles / schedule.total_cycles
        assert ratio == pytest.approx(256 / (8 * 8), rel=0.01)

    def test_worst_case_matches_dpnn(self):
        lw = conv_layer(act_bits=16, weight_bits=16)
        schedule = schedule_conv_layer(lw, LoomGeometry())
        conv = lw.layer
        dpnn_cycles = (conv.num_windows(lw.input_shape)
                       * -(-conv.window_size(lw.input_shape) // 16) * 16)
        assert schedule.total_cycles == pytest.approx(dpnn_cycles, rel=0.01)

    def test_cycles_scale_with_precisions(self):
        base = schedule_conv_layer(conv_layer(act_bits=8, weight_bits=8),
                                   LoomGeometry())
        half_act = schedule_conv_layer(conv_layer(act_bits=4, weight_bits=8),
                                       LoomGeometry())
        half_w = schedule_conv_layer(conv_layer(act_bits=8, weight_bits=4),
                                     LoomGeometry())
        assert half_act.total_cycles == pytest.approx(base.total_cycles / 2,
                                                      rel=0.01)
        assert half_w.total_cycles == pytest.approx(base.total_cycles / 2,
                                                    rel=0.01)

    def test_lm2b_rounds_activation_bits_up(self):
        lm2 = LoomGeometry(bits_per_cycle=2)
        odd = schedule_conv_layer(conv_layer(act_bits=5), lm2)
        even = schedule_conv_layer(conv_layer(act_bits=6), lm2)
        assert odd.cycles_per_pass == even.cycles_per_pass

    def test_filter_underutilisation(self):
        # 96 filters on a 128-row grid: same passes as 128 filters.
        small = schedule_conv_layer(conv_layer(out_channels=96), LoomGeometry())
        full = schedule_conv_layer(conv_layer(out_channels=128), LoomGeometry())
        assert small.filter_chunks == full.filter_chunks == 1
        assert small.occupancy < full.occupancy

    def test_filter_replication_recovers_utilisation(self):
        rigid = schedule_conv_layer(conv_layer(out_channels=32), LoomGeometry(),
                                    replicate_filters=False)
        flexible = schedule_conv_layer(conv_layer(out_channels=32), LoomGeometry(),
                                       replicate_filters=True)
        assert flexible.filter_replication == 4
        assert flexible.total_cycles < rigid.total_cycles
        assert flexible.occupancy > rigid.occupancy

    def test_explicit_precision_overrides(self):
        lw = conv_layer(act_bits=8, weight_bits=11)
        schedule = schedule_conv_layer(lw, LoomGeometry(),
                                       activation_serial_bits=6.5,
                                       weight_serial_bits=7.5)
        assert schedule.activation_serial_steps == pytest.approx(6.5)
        assert schedule.weight_serial_bits == pytest.approx(7.5)

    def test_rejects_fc_layer(self):
        with pytest.raises(ValueError):
            schedule_conv_layer(fc_layer(), LoomGeometry())

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            schedule_conv_layer(conv_layer(), LoomGeometry(),
                                weight_serial_bits=0)


class TestFCSchedule:
    def test_ideal_speedup_formula(self):
        """With >= 2K outputs Loom beats DPNN by 16/Pw on FCLs."""
        lw = fc_layer(out_features=4096, in_features=9216, weight_bits=10)
        schedule = schedule_fc_layer(lw, LoomGeometry())
        dpnn_cycles = -(-9216 // 16) * -(-4096 // 8)
        ratio = dpnn_cycles / schedule.total_cycles
        assert ratio == pytest.approx(16 / 10, rel=0.01)

    def test_worst_case_matches_dpnn(self):
        lw = fc_layer(out_features=4096, in_features=4096, weight_bits=16)
        schedule = schedule_fc_layer(lw, LoomGeometry())
        dpnn_cycles = -(-4096 // 16) * -(-4096 // 8)
        assert schedule.total_cycles == pytest.approx(dpnn_cycles, rel=0.01)

    def test_performance_independent_of_bits_per_cycle(self):
        lw = fc_layer(out_features=4096, in_features=9216, weight_bits=9)
        lm1 = schedule_fc_layer(lw, LoomGeometry(bits_per_cycle=1))
        lm4 = schedule_fc_layer(lw, LoomGeometry(bits_per_cycle=4))
        # Steady-state cycles identical; only the column stagger differs.
        assert lm4.total_cycles <= lm1.total_cycles
        assert lm1.total_cycles - lm4.total_cycles < 20

    def test_cascading_for_small_layers(self):
        lw = fc_layer(out_features=1000, in_features=1024, weight_bits=7)
        with_cascade = schedule_fc_layer(lw, LoomGeometry(), use_cascading=True)
        without = schedule_fc_layer(lw, LoomGeometry(), use_cascading=False)
        assert with_cascade.cascade_slices == 2
        assert with_cascade.total_cycles < without.total_cycles / 1.8
        assert with_cascade.occupancy > without.occupancy

    def test_choose_cascade_slices(self):
        geometry = LoomGeometry()
        assert choose_cascade_slices(4096, geometry) == 1
        assert choose_cascade_slices(2048, geometry) == 1
        assert choose_cascade_slices(1000, geometry) == 2
        assert choose_cascade_slices(100, geometry) == 16
        with pytest.raises(ValueError):
            choose_cascade_slices(0, geometry)

    def test_activation_precision_does_not_change_fc_time(self):
        lw_low = fc_layer(weight_bits=9)
        lw_low.precision = LayerPrecision(activation_bits=5, weight_bits=9)
        lw_high = fc_layer(weight_bits=9)
        assert schedule_fc_layer(lw_low, LoomGeometry()).total_cycles == \
            schedule_fc_layer(lw_high, LoomGeometry()).total_cycles

    def test_rejects_conv_layer(self):
        with pytest.raises(ValueError):
            schedule_fc_layer(conv_layer(), LoomGeometry())
