"""Tests for the network zoo: geometries and compatibility with the profiles."""

import pytest

from repro.nn import build_network, available_networks
from repro.nn.layers import TensorShape
from repro.nn.zoo import modern_networks
from repro.quant import get_paper_profile, paper_networks


class TestZooBasics:
    def test_available_is_paper_order_plus_modern(self):
        assert available_networks() == paper_networks() + modern_networks()
        assert modern_networks() == ["mobilenet_v1", "resnet18",
                                     "tiny_transformer"]

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            build_network("resnet")

    def test_case_insensitive(self):
        assert build_network("AlexNet").name == "alexnet"

    @pytest.mark.parametrize("name", paper_networks())
    def test_shapes_resolve(self, name):
        network = build_network(name)
        shapes = network.resolve_shapes()
        assert len(shapes) == len(network)

    @pytest.mark.parametrize("name", paper_networks())
    def test_profiles_attach(self, name):
        network = build_network(name)
        for accuracy in ("100%", "99%"):
            network.attach_profile(get_paper_profile(name, accuracy))


class TestLayerCounts:
    @pytest.mark.parametrize("name,conv_groups,fc_count", [
        ("nin", 12, 0),
        ("alexnet", 5, 3),
        ("googlenet", 11, 1),
        ("vggs", 5, 3),
        ("vggm", 5, 3),
        ("vgg19", 16, 3),
    ])
    def test_counts_match_profiles(self, name, conv_groups, fc_count):
        network = build_network(name)
        assert network.num_conv_groups() == conv_groups
        assert len(network.fc_layers()) == fc_count

    def test_googlenet_has_57_convolutions(self):
        network = build_network("googlenet")
        assert len(network.conv_layers()) == 57

    def test_nin_has_no_fc(self):
        assert len(build_network("nin").fc_layers()) == 0


class TestGeometries:
    def test_alexnet_conv1_output(self):
        network = build_network("alexnet")
        shapes = network.resolve_shapes()
        assert shapes["conv1"][1] == TensorShape(96, 55, 55)
        assert shapes["conv5"][1] == TensorShape(256, 13, 13)
        assert shapes["fc6"][0] == TensorShape(256, 6, 6)

    def test_alexnet_fc_dimensions(self):
        network = build_network("alexnet")
        fcs = network.fc_layers()
        assert fcs[0].input_activations == 9216
        assert fcs[0].output_activations == 4096
        assert fcs[2].output_activations == 1000

    def test_vgg19_structure(self):
        network = build_network("vgg19")
        shapes = network.resolve_shapes()
        assert shapes["conv1_1"][1] == TensorShape(64, 224, 224)
        assert shapes["conv5_4"][1] == TensorShape(512, 14, 14)
        assert shapes["fc6"][0] == TensorShape(512, 7, 7)

    def test_googlenet_inception_output_channels(self):
        network = build_network("googlenet")
        shapes = network.resolve_shapes()
        assert shapes["inception_3a_output"][1].channels == 256
        assert shapes["inception_4e_output"][1].channels == 832
        assert shapes["inception_5b_output"][1].channels == 1024
        assert shapes["loss3_classifier"][0] == TensorShape(1024, 1, 1)

    def test_googlenet_spatial_reduction(self):
        network = build_network("googlenet")
        shapes = network.resolve_shapes()
        assert shapes["inception_3a_output"][1].height == 28
        assert shapes["inception_4a_output"][1].height == 14
        assert shapes["inception_5a_output"][1].height == 7

    def test_nin_final_classifier(self):
        network = build_network("nin")
        shapes = network.resolve_shapes()
        assert shapes["cccp8"][1].channels == 1000
        assert shapes["pool4"][1] == TensorShape(1000, 1, 1)


class TestWorkloads:
    @pytest.mark.parametrize("name,min_gmacs,max_gmacs", [
        # Published single-inference MAC counts (approximate, our geometries):
        ("alexnet", 0.6, 0.8),
        ("nin", 0.85, 1.3),
        ("googlenet", 1.3, 1.8),
        ("vgg19", 18.0, 21.0),
        ("vggm", 1.4, 2.6),
        ("vggs", 2.3, 3.3),
    ])
    def test_total_macs_in_published_ballpark(self, name, min_gmacs, max_gmacs):
        network = build_network(name)
        gmacs = network.total_macs() / 1e9
        assert min_gmacs <= gmacs <= max_gmacs, f"{name}: {gmacs:.2f} GMACs"

    def test_vgg19_activation_footprint_exceeds_2mb(self):
        # The paper notes VGG-19 needs ~10 MB of activations and must spill.
        network = build_network("vgg19")
        peak_values = network.max_layer_activations()
        assert peak_values * 16 / 8 / 1e6 > 2.0

    def test_alexnet_weight_count(self):
        network = build_network("alexnet")
        millions = network.total_weights() / 1e6
        assert 55 <= millions <= 65  # ~61M parameters
