"""Property-based tests of model-level invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import DPNN, AcceleratorConfig
from repro.accelerators.stripes import Stripes
from repro.core import Loom
from repro.core.scheduler import LoomGeometry, schedule_conv_layer, schedule_fc_layer
from repro.nn.layers import Conv2D, FullyConnected, TensorShape
from repro.nn.network import LayerWithPrecision
from repro.quant.dynamic import DynamicPrecisionModel
from repro.quant.precision import LayerPrecision


def make_conv(out_channels, in_channels, spatial, kernel, act_bits, weight_bits):
    layer = Conv2D(name="conv", out_channels=out_channels, kernel=kernel,
                   padding=kernel // 2)
    in_shape = TensorShape(in_channels, spatial, spatial)
    return LayerWithPrecision(
        layer=layer, input_shape=in_shape,
        output_shape=layer.output_shape(in_shape),
        precision=LayerPrecision(activation_bits=act_bits,
                                 weight_bits=weight_bits),
    )


def make_fc(out_features, in_features, weight_bits):
    layer = FullyConnected(name="fc", out_features=out_features)
    in_shape = TensorShape(in_features)
    return LayerWithPrecision(
        layer=layer, input_shape=in_shape,
        output_shape=layer.output_shape(in_shape),
        precision=LayerPrecision(activation_bits=16, weight_bits=weight_bits),
    )


conv_strategy = st.tuples(
    st.integers(min_value=1, max_value=512),    # out_channels
    st.integers(min_value=1, max_value=64),     # in_channels
    st.integers(min_value=3, max_value=28),     # spatial
    st.sampled_from([1, 3, 5]),                 # kernel
    st.integers(min_value=1, max_value=16),     # act bits
    st.integers(min_value=1, max_value=16),     # weight bits
)


class TestConvScheduleInvariants:
    @given(conv_strategy)
    @settings(max_examples=60, deadline=None)
    def test_loom_speedup_never_exceeds_ideal(self, params):
        out_channels, in_channels, spatial, kernel, act_bits, weight_bits = params
        lw = make_conv(out_channels, in_channels, spatial, kernel,
                       act_bits, weight_bits)
        dpnn = DPNN()
        static_loom = Loom(dynamic_precision=DynamicPrecisionModel(enabled=False))
        speedup = dpnn.compute_cycles(lw) / static_loom.compute_cycles(lw)
        ideal = 256 / (act_bits * weight_bits)
        assert speedup <= ideal * 1.001

    @given(conv_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cycles_positive_and_monotone_in_weight_precision(self, params):
        out_channels, in_channels, spatial, kernel, act_bits, weight_bits = params
        geometry = LoomGeometry()
        low = schedule_conv_layer(
            make_conv(out_channels, in_channels, spatial, kernel, act_bits,
                      max(1, weight_bits - 1)), geometry)
        high = schedule_conv_layer(
            make_conv(out_channels, in_channels, spatial, kernel, act_bits,
                      weight_bits), geometry)
        assert 0 < low.total_cycles <= high.total_cycles

    @given(conv_strategy)
    @settings(max_examples=40, deadline=None)
    def test_occupancy_is_a_fraction(self, params):
        out_channels, in_channels, spatial, kernel, act_bits, weight_bits = params
        schedule = schedule_conv_layer(
            make_conv(out_channels, in_channels, spatial, kernel, act_bits,
                      weight_bits), LoomGeometry())
        assert 0.0 < schedule.occupancy <= 1.0

    @given(conv_strategy)
    @settings(max_examples=40, deadline=None)
    def test_stripes_between_dpnn_and_loom(self, params):
        out_channels, in_channels, spatial, kernel, act_bits, weight_bits = params
        lw = make_conv(out_channels, in_channels, spatial, kernel, act_bits,
                       weight_bits)
        dpnn_cycles = DPNN().compute_cycles(lw)
        stripes_cycles = Stripes().compute_cycles(lw)
        loom_cycles = Loom(
            dynamic_precision=DynamicPrecisionModel(enabled=False)
        ).compute_cycles(lw)
        # Stripes never beats its ideal 16/Pa over DPNN.
        assert dpnn_cycles / stripes_cycles <= 16 / act_bits + 1e-9
        # Loom additionally exploits weight precision, so when the filters
        # tile its 128 rows exactly it is never slower than Stripes (beyond
        # the weight-load fill).  Layers that leave filter rows idle can
        # favour Stripes, which needs only 8 concurrent filters -- that is
        # the under-utilisation story behind Figure 5.
        if out_channels % 128 == 0:
            assert loom_cycles <= stripes_cycles * 1.001 + 2


fc_strategy = st.tuples(
    st.integers(min_value=1, max_value=5000),   # out_features
    st.integers(min_value=1, max_value=10000),  # in_features
    st.integers(min_value=1, max_value=16),     # weight bits
)


class TestFCScheduleInvariants:
    @given(fc_strategy)
    @settings(max_examples=60, deadline=None)
    def test_loom_fc_speedup_never_exceeds_ideal(self, params):
        out_features, in_features, weight_bits = params
        lw = make_fc(out_features, in_features, weight_bits)
        dpnn_cycles = DPNN().compute_cycles(lw)
        loom_cycles = Loom().compute_cycles(lw)
        # The 5% margin covers the difference in padding losses between
        # DPNN's 16-term/8-filter tiling and Loom's cascaded term slicing.
        assert dpnn_cycles / loom_cycles <= (16 / weight_bits) * 1.05

    @given(fc_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cascading_never_hurts(self, params):
        out_features, in_features, weight_bits = params
        lw = make_fc(out_features, in_features, weight_bits)
        geometry = LoomGeometry()
        with_cascade = schedule_fc_layer(lw, geometry, use_cascading=True)
        without = schedule_fc_layer(lw, geometry, use_cascading=False)
        assert with_cascade.total_cycles <= without.total_cycles + 32

    @given(fc_strategy, st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_and_slices_valid(self, params, bits_per_cycle):
        out_features, in_features, weight_bits = params
        geometry = LoomGeometry(bits_per_cycle=bits_per_cycle)
        schedule = schedule_fc_layer(make_fc(out_features, in_features,
                                             weight_bits), geometry)
        assert 1 <= schedule.cascade_slices <= geometry.window_columns
        assert 0.0 < schedule.occupancy <= 1.0


class TestSimulationInvariants:
    @given(st.sampled_from([32, 64, 128, 256]),
           st.sampled_from([1, 2, 4]),
           conv_strategy)
    @settings(max_examples=30, deadline=None)
    def test_layer_result_well_formed(self, macs, bits, params):
        out_channels, in_channels, spatial, kernel, act_bits, weight_bits = params
        lw = make_conv(out_channels, in_channels, spatial, kernel, act_bits,
                       weight_bits)
        loom = Loom(AcceleratorConfig(equivalent_macs=macs), bits_per_cycle=bits)
        result = loom.simulate_layer(lw)
        assert result.cycles > 0
        assert result.energy_pj > 0
        assert 0 < result.utilization <= 1.0
        assert result.weight_bits_read == lw.weight_count * weight_bits
        assert result.macs == lw.macs
