"""Tests for the layer IR and shape inference (repro.nn.layers)."""

import pytest

from repro.nn.layers import (
    Concat,
    Conv2D,
    FullyConnected,
    LRN,
    Pool2D,
    ReLU,
    Softmax,
    TensorShape,
)


class TestTensorShape:
    def test_spatial_shape(self):
        shape = TensorShape(3, 224, 224)
        assert shape.is_spatial
        assert shape.size == 3 * 224 * 224

    def test_flat_shape(self):
        shape = TensorShape(4096)
        assert not shape.is_spatial
        assert shape.size == 4096

    def test_flatten(self):
        assert TensorShape(8, 2, 2).flatten() == TensorShape(32)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            TensorShape(0)

    def test_partial_spatial_dims_rejected(self):
        with pytest.raises(ValueError):
            TensorShape(3, 10, None)

    def test_invalid_spatial_dims(self):
        with pytest.raises(ValueError):
            TensorShape(3, 0, 10)

    def test_str(self):
        assert str(TensorShape(3, 4, 5)) == "3x4x5"
        assert str(TensorShape(10)) == "10"


class TestConv2D:
    def test_output_shape_basic(self):
        conv = Conv2D(name="c", out_channels=64, kernel=3, padding=1)
        out = conv.output_shape(TensorShape(3, 32, 32))
        assert out == TensorShape(64, 32, 32)

    def test_output_shape_stride(self):
        conv = Conv2D(name="c", out_channels=96, kernel=11, stride=4)
        out = conv.output_shape(TensorShape(3, 227, 227))
        assert out == TensorShape(96, 55, 55)

    def test_window_size_and_macs(self):
        conv = Conv2D(name="c", out_channels=64, kernel=3, padding=1)
        in_shape = TensorShape(32, 8, 8)
        assert conv.window_size(in_shape) == 32 * 9
        assert conv.num_windows(in_shape) == 64
        assert conv.macs(in_shape) == 32 * 9 * 64 * 64

    def test_grouped_convolution(self):
        conv = Conv2D(name="c", out_channels=256, kernel=5, padding=2, groups=2)
        in_shape = TensorShape(96, 27, 27)
        assert conv.window_size(in_shape) == 48 * 25
        assert conv.weight_count_for(in_shape) == 48 * 25 * 256

    def test_macs_halved_by_grouping(self):
        in_shape = TensorShape(96, 27, 27)
        dense = Conv2D(name="d", out_channels=256, kernel=5, padding=2)
        grouped = Conv2D(name="g", out_channels=256, kernel=5, padding=2, groups=2)
        assert grouped.macs(in_shape) * 2 == dense.macs(in_shape)

    def test_kernel_too_large_raises(self):
        conv = Conv2D(name="c", out_channels=8, kernel=9)
        with pytest.raises(ValueError):
            conv.output_shape(TensorShape(3, 4, 4))

    def test_flat_input_rejected(self):
        conv = Conv2D(name="c", out_channels=8, kernel=1)
        with pytest.raises(ValueError):
            conv.output_shape(TensorShape(100))

    def test_channels_not_divisible_by_groups(self):
        conv = Conv2D(name="c", out_channels=8, kernel=1, groups=2)
        with pytest.raises(ValueError):
            conv.output_shape(TensorShape(3, 4, 4))

    def test_out_channels_not_divisible_by_groups(self):
        with pytest.raises(ValueError):
            Conv2D(name="c", out_channels=9, kernel=1, groups=2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Conv2D(name="c", out_channels=0)
        with pytest.raises(ValueError):
            Conv2D(name="c", out_channels=8, kernel=0)
        with pytest.raises(ValueError):
            Conv2D(name="c", out_channels=8, padding=-1)

    def test_weight_count_requires_input_shape(self):
        with pytest.raises(ValueError):
            Conv2D(name="c", out_channels=8).weight_count()

    def test_is_compute_flags(self):
        conv = Conv2D(name="c", out_channels=8)
        assert conv.is_conv and conv.is_compute and not conv.is_fc


class TestFullyConnected:
    def test_output_shape(self):
        fc = FullyConnected(name="fc", out_features=4096)
        assert fc.output_shape(TensorShape(256, 6, 6)) == TensorShape(4096)

    def test_macs_and_weights(self):
        fc = FullyConnected(name="fc", out_features=10)
        in_shape = TensorShape(256, 6, 6)
        assert fc.macs(in_shape) == 9216 * 10
        assert fc.weight_count_for(in_shape) == 9216 * 10
        assert fc.in_features(in_shape) == 9216

    def test_invalid_out_features(self):
        with pytest.raises(ValueError):
            FullyConnected(name="fc", out_features=0)

    def test_is_compute_flags(self):
        fc = FullyConnected(name="fc", out_features=8)
        assert fc.is_fc and fc.is_compute and not fc.is_conv


class TestPool2D:
    def test_max_pool_shape(self):
        pool = Pool2D(name="p", kernel=3, stride=2)
        assert pool.output_shape(TensorShape(96, 55, 55)) == TensorShape(96, 27, 27)

    def test_global_pool(self):
        pool = Pool2D(name="p", mode="avg", global_pool=True)
        assert pool.output_shape(TensorShape(1000, 6, 6)) == TensorShape(1000, 1, 1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Pool2D(name="p", mode="median")

    def test_flat_input_rejected(self):
        with pytest.raises(ValueError):
            Pool2D(name="p").output_shape(TensorShape(10))

    def test_no_macs(self):
        assert Pool2D(name="p").macs(TensorShape(8, 4, 4)) == 0
        assert not Pool2D(name="p").is_compute


class TestOtherLayers:
    def test_relu_identity_shape(self):
        assert ReLU(name="r").output_shape(TensorShape(8, 4, 4)) == \
            TensorShape(8, 4, 4)

    def test_lrn_identity_shape(self):
        assert LRN(name="n").output_shape(TensorShape(96, 55, 55)) == \
            TensorShape(96, 55, 55)

    def test_softmax_identity_shape(self):
        assert Softmax(name="s").output_shape(TensorShape(1000)) == \
            TensorShape(1000)

    def test_concat_overrides_channels(self):
        concat = Concat(name="c", out_channels=256)
        assert concat.output_shape(TensorShape(256, 28, 28)) == \
            TensorShape(256, 28, 28)

    def test_concat_requires_spatial(self):
        with pytest.raises(ValueError):
            Concat(name="c", out_channels=8).output_shape(TensorShape(8))
