"""Tests for the simulation infrastructure (results, metrics, engine, runner)."""

import pytest

from repro.sim.engine import CycleEngine
from repro.sim.metrics import efficiency_ratio, geomean, harmonic_mean, speedup
from repro.sim.results import (
    LayerResult,
    NetworkResult,
    combine_layer_results,
    compare,
)
from repro.sim.runner import AcceleratorRunner, LayerSelection, run_network


def make_layer(name="l0", kind="conv", cycles=100.0, energy=50.0, macs=1000):
    return LayerResult(layer_name=name, layer_kind=kind, cycles=cycles,
                       energy_pj=energy, macs=macs)


class TestLayerResult:
    def test_defaults_fill_compute_cycles(self):
        layer = make_layer(cycles=123.0)
        assert layer.compute_cycles == 123.0
        assert layer.memory_cycles == 0.0

    def test_traffic_total(self):
        layer = LayerResult("l", "fc", 10, weight_bits_read=100,
                            activation_bits_read=20, activation_bits_written=5)
        assert layer.total_traffic_bits == 125

    def test_kind_flags(self):
        assert make_layer(kind="conv").is_conv
        assert make_layer(kind="fc").is_fc

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            LayerResult("l", "pool", 10)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            LayerResult("l", "conv", -1)


class TestNetworkResult:
    def build(self):
        result = NetworkResult(network="net", accelerator="acc", clock_ghz=1.0)
        result.add(make_layer("c1", "conv", cycles=100, energy=10, macs=1000))
        result.add(make_layer("c2", "conv", cycles=300, energy=30, macs=3000))
        result.add(make_layer("f1", "fc", cycles=600, energy=60, macs=6000))
        return result

    def test_totals_by_kind(self):
        result = self.build()
        assert result.total_cycles("conv") == 400
        assert result.total_cycles("fc") == 600
        assert result.total_cycles() == 1000
        assert result.total_energy_pj() == 100
        assert result.total_macs("conv") == 4000

    def test_execution_time_and_fps(self):
        result = self.build()
        assert result.execution_time_s() == pytest.approx(1000 / 1e9)
        assert result.frames_per_second() == pytest.approx(1e6)

    def test_layer_lookup(self):
        result = self.build()
        assert result.layer("c2").cycles == 300
        with pytest.raises(KeyError):
            result.layer("missing")

    def test_average_utilization_weighted_by_cycles(self):
        result = NetworkResult("n", "a")
        result.add(LayerResult("a", "conv", 100, utilization=1.0))
        result.add(LayerResult("b", "conv", 300, utilization=0.5))
        assert result.average_utilization() == pytest.approx(0.625)

    def test_select_all(self):
        assert len(self.build().select(None)) == 3


class TestCompare:
    def test_speedup_and_efficiency(self):
        base = NetworkResult("n", "dpnn")
        base.add(make_layer(cycles=1000, energy=100))
        fast = NetworkResult("n", "loom")
        fast.add(make_layer(cycles=250, energy=50))
        comp = compare(fast, base)
        assert comp.speedup == 4.0
        assert comp.energy_efficiency == 2.0
        assert comp.design == "loom" and comp.baseline == "dpnn"

    def test_mismatched_networks_rejected(self):
        a = NetworkResult("n1", "x")
        b = NetworkResult("n2", "y")
        with pytest.raises(ValueError):
            compare(a, b)

    def test_combine_layer_results(self):
        merged = combine_layer_results("merged", [
            make_layer("a", cycles=10, energy=1, macs=5),
            make_layer("b", cycles=30, energy=3, macs=15),
        ])
        assert merged.cycles == 40
        assert merged.energy_pj == 4
        assert merged.macs == 20

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_layer_results("x", [])


class TestMetrics:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_validation(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_speedup_and_efficiency_helpers(self):
        assert speedup(100, 25) == 4.0
        assert efficiency_ratio(10, 5) == 2.0
        with pytest.raises(ValueError):
            speedup(10, 0)
        with pytest.raises(ValueError):
            efficiency_ratio(10, 0)


class TestCycleEngine:
    def test_events_run_in_cycle_order(self):
        engine = CycleEngine()
        order = []
        engine.schedule(5, lambda: order.append("late"))
        engine.schedule(1, lambda: order.append("early"))
        last = engine.run()
        assert order == ["early", "late"]
        assert last == 5
        assert engine.events_processed == 2

    def test_same_cycle_fifo(self):
        engine = CycleEngine()
        order = []
        engine.schedule(3, lambda: order.append(1))
        engine.schedule(3, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_chained_scheduling(self):
        engine = CycleEngine()
        ticks = []

        def tick(n):
            ticks.append(engine.now)
            if n > 0:
                engine.schedule(2, lambda: tick(n - 1))

        engine.schedule(0, lambda: tick(3))
        last = engine.run()
        assert ticks == [0, 2, 4, 6]
        assert last == 6

    def test_schedule_at_and_past_rejected(self):
        engine = CycleEngine()
        engine.schedule_at(4, lambda: None)
        assert engine.run() == 4
        with pytest.raises(ValueError):
            engine.schedule_at(1, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            CycleEngine().schedule(-1, lambda: None)

    def test_max_cycles_pauses(self):
        engine = CycleEngine()
        engine.schedule(10, lambda: None)
        engine.schedule(100, lambda: None)
        engine.run(max_cycles=50)
        assert engine.last_active_cycle == 10
        assert engine.pending == 1
        engine.run()
        assert engine.last_active_cycle == 100


class TestRunner:
    def test_run_network_produces_one_result_per_compute_layer(
            self, alexnet_100, dpnn_default):
        result = run_network(dpnn_default, alexnet_100)
        assert len(result.layers) == 8  # 5 conv + 3 fc
        assert result.network == "alexnet"
        assert result.accelerator == "DPNN"

    def test_runner_batches_designs(self, alexnet_100, dpnn_default, loom_1b):
        runner = AcceleratorRunner(designs={"dpnn": dpnn_default,
                                            "loom-1b": loom_1b})
        results = runner.run([alexnet_100])
        assert set(results["alexnet"]) == {"dpnn", "loom-1b"}
        comparisons = runner.compare_all(results, kind=LayerSelection.CONV)
        assert "loom-1b" in comparisons["alexnet"]
        assert "dpnn" not in comparisons["alexnet"]
        assert comparisons["alexnet"]["loom-1b"].speedup > 1.0

    def test_duplicate_design_label_rejected(self, dpnn_default):
        runner = AcceleratorRunner(designs={"dpnn": dpnn_default})
        with pytest.raises(ValueError):
            runner.add_design("dpnn", dpnn_default)

    def test_missing_baseline_rejected(self, alexnet_100, loom_1b):
        runner = AcceleratorRunner(designs={"loom": loom_1b}, baseline="dpnn")
        results = runner.run([alexnet_100])
        with pytest.raises(ValueError):
            runner.compare_all(results)
