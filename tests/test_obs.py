"""Tests for the observability layer (repro.obs).

The contract verified here:

* spans nest (parent/child linkage), propagate across threads (via
  ``Tracer.propagate``) and asyncio tasks, and round-trip over the wire as
  ``traceparent`` headers -- malformed headers are dropped, never raised;
* the recorder is a bounded ring; ``chrome_trace`` renders any span set as
  valid Chrome trace-event JSON (one pid row per service);
* the structured logger filters by level, renders both human and JSON
  modes, and stamps records with the active trace/span ids;
* the metrics instruments survive concurrent updates without losing counts
  and render byte-exact Prometheus text exposition;
* ``repro.cluster.metrics`` remains a faithful back-compat re-export.
"""

import asyncio
import io
import json
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanContext,
    SpanRecorder,
    Tracer,
    chrome_trace,
    configure_logging,
    get_logger,
    parse_traceparent,
)
from repro.obs.logging import LEVELS


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    configure_logging()  # restore defaults for other test modules


class TestTraceContext:
    def test_traceparent_round_trip(self):
        context = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert parse_traceparent(context.to_traceparent()) == context

    def test_traceparent_header_shape(self):
        header = SpanContext("ab" * 16, "cd" * 8).to_traceparent()
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-short-cdcdcdcdcdcdcdcd-01",
        f"00-{'g' * 32}-{'cd' * 8}-01",       # non-hex
        f"01-{'ab' * 16}-{'cd' * 8}",          # missing flags
        f"00-{'0' * 32}-{'cd' * 8}-01",        # all-zero trace id
        f"00-{'ab' * 16}-{'0' * 16}-01",       # all-zero span id
    ])
    def test_malformed_headers_drop_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_case_and_whitespace_are_tolerated(self):
        header = f"  00-{'AB' * 16}-{'CD' * 8}-01  "
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "ab" * 16


class TestTracer:
    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer(service="t")
        with tracer.span("root", answer=42) as span:
            assert span.parent_id is None
            assert len(span.trace_id) == 32
            assert len(span.span_id) == 16
            assert span.attrs == {"answer": 42}
        [recorded] = tracer.recorder.spans()
        assert recorded.name == "root"
        assert recorded.duration_s >= 0.0

    def test_nested_spans_share_the_trace_and_link_parents(self):
        tracer = Tracer(service="t")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        # After both exit, the context is clean: a new span is a new trace.
        with tracer.span("later") as later:
            assert later.trace_id != outer.trace_id
            assert later.parent_id is None

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer(service="t")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        [span] = tracer.recorder.spans()
        assert span.status == "error"

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer(service="t", enabled=False)
        with tracer.span("invisible") as span:
            assert span is None
        assert len(tracer.recorder) == 0
        assert tracer.current_traceparent() is None
        headers = {}
        tracer.inject_headers(headers)
        assert headers == {}

    def test_remote_parent_links_server_spans_to_the_caller(self):
        tracer = Tracer(service="t")
        header = SpanContext("ab" * 16, "cd" * 8).to_traceparent()
        with tracer.remote_parent(header):
            with tracer.span("handler") as span:
                assert span.trace_id == "ab" * 16
                assert span.parent_id == "cd" * 8
        assert tracer.current_context() is None

    def test_remote_parent_tolerates_garbage(self):
        tracer = Tracer(service="t")
        with tracer.remote_parent("not-a-header") as context:
            assert context is None
            with tracer.span("handler") as span:
                assert span.parent_id is None

    def test_inject_headers_adds_traceparent_inside_a_span(self):
        tracer = Tracer(service="t")
        with tracer.span("client") as span:
            headers = {"Content-Type": "application/json"}
            tracer.inject_headers(headers)
            assert headers["traceparent"] == \
                f"00-{span.trace_id}-{span.span_id}-01"

    def test_inject_headers_never_overrides_an_explicit_header(self):
        tracer = Tracer(service="t")
        pinned = f"00-{'ee' * 16}-{'ff' * 8}-01"
        with tracer.span("client"):
            headers = {"traceparent": pinned}
            tracer.inject_headers(headers)
            assert headers["traceparent"] == pinned

    def test_propagate_carries_context_into_a_thread(self):
        tracer = Tracer(service="t")
        seen = {}

        def work():
            with tracer.span("child") as span:
                seen["trace_id"] = span.trace_id
                seen["parent_id"] = span.parent_id

        with tracer.span("parent") as parent:
            thread = threading.Thread(target=tracer.propagate(work))
            thread.start()
            thread.join()
        assert seen == {"trace_id": parent.trace_id,
                        "parent_id": parent.span_id}

    def test_bare_threads_do_not_inherit_context(self):
        tracer = Tracer(service="t")
        seen = {}

        def work():
            with tracer.span("child") as span:
                seen["parent_id"] = span.parent_id

        with tracer.span("parent"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert seen["parent_id"] is None

    def test_asyncio_tasks_nest_under_the_spawning_span(self):
        tracer = Tracer(service="t")

        async def child():
            with tracer.span("task") as span:
                return span.trace_id, span.parent_id

        async def main():
            with tracer.span("loop") as outer:
                trace_id, parent_id = await asyncio.create_task(child())
                return outer, trace_id, parent_id

        outer, trace_id, parent_id = asyncio.run(main())
        assert trace_id == outer.trace_id
        assert parent_id == outer.span_id

    def test_span_dict_round_trip(self):
        tracer = Tracer(service="svc")
        with tracer.span("op", k="v"):
            pass
        [span] = tracer.recorder.spans()
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()


class TestSpanRecorder:
    def test_ring_keeps_only_the_newest_spans(self):
        recorder = SpanRecorder(capacity=3)
        tracer = Tracer(service="t", recorder=recorder)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in recorder.spans()] == ["s2", "s3", "s4"]
        assert len(recorder) == 3
        recorder.clear()
        assert recorder.spans() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestChromeTrace:
    def test_export_is_valid_json_with_one_pid_per_service(self):
        spans = []
        for service in ("cli", "worker-a", "worker-b"):
            tracer = Tracer(service=service)
            with tracer.span("op"):
                pass
            spans.extend(tracer.recorder.spans())
        document = json.loads(json.dumps(chrome_trace(spans)))
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 3
        assert {e["pid"] for e in complete} == {1, 2, 3}
        assert {e["args"]["name"] for e in metadata} == \
            {"cli", "worker-a", "worker-b"}
        assert document["displayTimeUnit"] == "ms"

    def test_events_carry_ids_and_microsecond_times(self):
        tracer = Tracer(service="t")
        with tracer.span("op") as span:
            pass
        [event] = [e for e in chrome_trace(tracer.recorder.spans())
                   ["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["trace_id"] == span.trace_id
        assert event["ts"] == pytest.approx(span.start_s * 1e6)
        assert event["dur"] == pytest.approx(span.duration_s * 1e6)


class TestStructuredLogging:
    def test_json_mode_emits_one_parseable_object_per_line(self):
        sink = io.StringIO()
        configure_logging(level="debug", json_output=True, stream=sink)
        get_logger("test.json").info("thing.happened", count=3, name="x")
        record = json.loads(sink.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "test.json"
        assert record["event"] == "thing.happened"
        assert record["count"] == 3

    def test_records_carry_the_active_trace_ids(self):
        sink = io.StringIO()
        configure_logging(level="info", json_output=True, stream=sink)
        tracer = Tracer(service="t")
        from repro.obs import set_tracer
        previous = set_tracer(tracer)
        try:
            with tracer.span("op") as span:
                get_logger("test.corr").info("inside")
        finally:
            set_tracer(previous)
        record = json.loads(sink.getvalue())
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id

    def test_level_filtering(self):
        sink = io.StringIO()
        configure_logging(level="warning", stream=sink)
        logger = get_logger("test.levels")
        logger.debug("dropped")
        logger.info("dropped")
        logger.warning("kept")
        logger.error("kept")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert not logger.is_enabled("info")
        assert logger.is_enabled("error")

    def test_human_mode_renders_fields_inline(self):
        sink = io.StringIO()
        configure_logging(level="info", stream=sink)
        get_logger("test.human").info("srv.up", url="http://x:1", n=2)
        line = sink.getvalue()
        assert "INFO" in line and "srv.up" in line
        assert "url=http://x:1" in line and "n=2" in line

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_level_names_are_ordered(self):
        assert LEVELS == ("debug", "info", "warning", "error")

    def test_get_logger_is_memoized(self):
        assert get_logger("same") is get_logger("same")


class TestMetricsConcurrency:
    def test_concurrent_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", labelnames=("path",))
        threads = [threading.Thread(target=lambda: [
            counter.inc(path="/jobs") for _ in range(1000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(path="/jobs") == 8000

    def test_concurrent_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency",
                                       buckets=(0.1, 1.0))
        threads = [threading.Thread(target=lambda: [
            histogram.observe(0.05) for _ in range(500)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count() == 4000

    def test_concurrent_registration_of_distinct_label_sets(self):
        registry = MetricsRegistry()
        counter = registry.counter("paths_total", "paths", labelnames=("path",))
        errors = []

        def bump(index):
            try:
                for _ in range(200):
                    counter.inc(path=f"/p{index}")
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [threading.Thread(target=bump, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(counter.value(path=f"/p{i}") == 200 for i in range(8))


class TestPrometheusRender:
    def test_counter_render_golden(self):
        registry = MetricsRegistry()
        counter = registry.counter("loom_requests_total",
                                   "Requests served.", labelnames=("path",))
        counter.inc(path="/jobs")
        counter.inc(2, path="/stats")
        assert registry.render() == (
            "# HELP loom_requests_total Requests served.\n"
            "# TYPE loom_requests_total counter\n"
            'loom_requests_total{path="/jobs"} 1\n'
            'loom_requests_total{path="/stats"} 2\n'
        )

    def test_gauge_and_histogram_render_golden(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("loom_queue_depth", "Queue depth.")
        gauge.set(4)
        histogram = registry.histogram(
            "loom_wait_seconds", "Wait time.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert registry.render() == (
            "# HELP loom_queue_depth Queue depth.\n"
            "# TYPE loom_queue_depth gauge\n"
            "loom_queue_depth 4\n"
            "# HELP loom_wait_seconds Wait time.\n"
            "# TYPE loom_wait_seconds histogram\n"
            'loom_wait_seconds_bucket{le="0.1"} 1\n'
            'loom_wait_seconds_bucket{le="1"} 2\n'
            'loom_wait_seconds_bucket{le="+Inf"} 3\n'
            "loom_wait_seconds_sum 5.55\n"
            "loom_wait_seconds_count 3\n"
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "esc", labelnames=("v",))
        counter.inc(v='say "hi"\nback\\slash')
        rendered = registry.render()
        assert '\\"hi\\"' in rendered
        assert "\\n" in rendered
        assert "\\\\slash" in rendered


class TestBackCompatShim:
    def test_cluster_metrics_reexports_the_same_objects(self):
        from repro.cluster import metrics as shim
        from repro.obs import metrics as canonical
        assert shim.MetricsRegistry is canonical.MetricsRegistry
        assert shim.Counter is Counter
        assert shim.Gauge is Gauge
        assert shim.Histogram is Histogram
        assert shim.DEFAULT_LATENCY_BUCKETS \
            is canonical.DEFAULT_LATENCY_BUCKETS
        assert shim.PEER_LATENCY_BUCKETS is canonical.PEER_LATENCY_BUCKETS
