"""Benchmark / regeneration harness for Table 4 (per-group weight precision gains)."""

import pytest

from repro.experiments import table4


def test_bench_table4(benchmark, artefacts):
    result = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    artefacts["table4"] = table4.format_table(result)
    measured = result.cells["geomean"]
    paper = table4.PAPER_TABLE4["geomean"]
    for design in ("loom-1b", "loom-2b", "loom-4b"):
        assert measured[design][0] == pytest.approx(paper[design][0], rel=0.15)
        assert measured[design][1] == pytest.approx(paper[design][1], rel=0.15)
    # Per-group weight precisions must beat the profile-only Table 2 numbers
    # (4.38x vs 3.19x all-layer geomean in the paper).
    assert measured["loom-1b"][0] > 3.5
