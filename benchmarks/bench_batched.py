"""Benchmark: the batched sweep engine vs the per-job fast path.

A design-space sweep evaluates hundreds of jobs that share a handful of
network tables but differ in accelerator design point.  The per-job fast
path (:mod:`repro.sim.fastpath`) pays a full closed-form pass -- a few dozen
NumPy calls over arrays with only 8..60 rows -- per job; the batched engine
(:mod:`repro.sim.batched`) merges structurally compatible designs into one
(design x job x layer) plane and pays that cost once per plane.

Script mode is the CI benchmark gate::

    python benchmarks/bench_batched.py \
        --output BENCH_batched.json \
        --check benchmarks/BENCH_baseline_batched.json

measures the batched-vs-per-job speedup over a 240-point Loom design sweep
(scale x activation-memory x clock, AlexNet), writes the results as JSON,
asserts the >= 10x ISSUE target, and -- when given a committed baseline --
fails if the measured speedup regressed by more than 20%.  Like the
simulator gate, the comparison is on the *dimensionless speedup ratio*, so
runner speed does not matter.  Every benchmark run first asserts the two
engines produced bit-identical results over the whole sweep, so a run
doubles as a validation run.
"""

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # script mode; pytest gets this from conftest.py
    sys.path.insert(0, _SRC)

from repro.accelerators.base import AcceleratorConfig
from repro.sim.batched import simulate_jobs_batched
from repro.sim.jobs.spec import (
    AcceleratorSpec,
    NetworkSpec,
    SimJob,
    execute_job,
)

#: Minimum acceptable batched-vs-per-job sweep speedup (the ISSUE's
#: acceptance criterion); the CI gate also compares against the committed
#: baseline with a 20% tolerance.
SPEEDUP_FLOOR = 10.0

#: Fraction of the baseline speedup the measured speedup may lose before the
#: regression gate fails (0.20 = "fails on >20% slowdown").
REGRESSION_TOLERANCE = 0.20


def _sweep_jobs():
    """The benchmark sweep: 240 Loom design points (10 scales x 4 activation
    memories x 6 clocks) on AlexNet -- the shape of a ``bench_explore``-scale
    scaling study, and large enough that per-design grouping alone would not
    clear the floor (cross-design plane merging is what is being measured).
    """
    network = NetworkSpec("alexnet", "100%")
    spec = AcceleratorSpec.create("loom")
    jobs = []
    for macs in (32, 48, 64, 96, 128, 192, 256, 384, 512, 768):
        for am_bytes in (512 * 1024, 1024 * 1024, 2 * 1024 * 1024,
                         4 * 1024 * 1024):
            for clock_ghz in (0.8, 0.9, 1.0, 1.1, 1.2, 1.4):
                jobs.append(SimJob(
                    network=network,
                    accelerator=spec,
                    config=AcceleratorConfig(equivalent_macs=macs,
                                             am_capacity_bytes=am_bytes,
                                             clock_ghz=clock_ghz),
                ))
    return jobs


def _best_of(repeats, task):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        task()
        best = min(best, time.perf_counter() - start)
    return best


def measure_batched(repeats: int = 5) -> dict:
    """Time the batched engine vs a per-job fast-path loop over the sweep.

    Both sides run once untimed first: that warms the shared memos (layer
    tables, accelerator instances, design planes) so the timed passes
    compare steady-state engines, and the warm-up results are asserted
    bit-identical field for field.
    """
    jobs = _sweep_jobs()
    batched = simulate_jobs_batched(jobs)
    per_job = [execute_job(job, engine="fast") for job in jobs]
    for index, (b, p) in enumerate(zip(batched, per_job)):
        if b != p:
            raise AssertionError(
                f"engines disagree on job {index} "
                f"({jobs[index].network.name}); run "
                f"`loom-repro validate --engine batched`"
            )
    per_job_s = _best_of(repeats, lambda: [
        execute_job(job, engine="fast") for job in jobs
    ])
    batched_s = _best_of(repeats, lambda: simulate_jobs_batched(jobs))
    return {
        "benchmark": "batched-sweep-engine",
        "network": "alexnet",
        "design_points": len(jobs),
        "layers_simulated": sum(len(r.layers) for r in batched),
        "repeats": repeats,
        "per_job_s": per_job_s,
        "batched_s": batched_s,
        "speedup": per_job_s / batched_s,
    }


def format_batched(measured: dict) -> str:
    return "\n".join([
        "== sweep simulation: batched engine vs per-job fast path ==",
        f"{measured['design_points']} design points, "
        f"{measured['layers_simulated']} layers "
        f"(best of {measured['repeats']})",
        f"per-job: {measured['per_job_s'] * 1e3:>8.3f} ms   "
        f"batched: {measured['batched_s'] * 1e3:>8.3f} ms   "
        f"{measured['speedup']:>6.2f}x",
    ])


def check_against_baseline(measured: dict, baseline: dict,
                           tolerance: float = REGRESSION_TOLERANCE) -> str:
    """Raise if the measured speedup regressed > ``tolerance`` vs baseline."""
    baseline_speedup = baseline["speedup"]
    measured_speedup = measured["speedup"]
    floor = baseline_speedup * (1.0 - tolerance)
    verdict = (
        f"baseline speedup {baseline_speedup:.2f}x, measured "
        f"{measured_speedup:.2f}x (gate: >= {floor:.2f}x)"
    )
    if measured_speedup < floor:
        raise AssertionError(f"benchmark regression: {verdict}")
    return verdict


# -- pytest entry point --------------------------------------------------------


def test_bench_batched_speedup(artefacts):
    measured = measure_batched(repeats=3)
    artefacts["batched-sweep"] = format_batched(measured)
    assert measured["speedup"] >= SPEEDUP_FLOOR, (
        f"batched sweep speedup {measured['speedup']:.2f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x target"
    )


# -- script mode (the CI gate) -------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repetitions per timed side (default: 5)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the measurements as JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if the speedup regressed more than "
                             f"{REGRESSION_TOLERANCE:.0%} vs BASELINE (JSON)")
    args = parser.parse_args(argv)
    measured = measure_batched(repeats=args.repeats)
    print(format_batched(measured))
    if measured["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {measured['speedup']:.2f}x is below the "
              f"{SPEEDUP_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measurements written to {args.output}")
    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        print("regression gate:",
              check_against_baseline(measured, baseline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
