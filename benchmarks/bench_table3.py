"""Benchmark / regeneration harness for Table 3 (per-group weight precisions)."""


from repro.experiments import table3


def test_bench_table3(benchmark, artefacts):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1,
                                kwargs={"include_synthetic": True, "seed": 0})
    artefacts["table3"] = table3.format_table(result)
    for network, paper_values in result.paper.items():
        measured = result.measured[network]
        assert len(measured) == len(paper_values)
        # The mechanism must find per-group precisions below the per-layer
        # profile for every layer (that is the entire point of Table 3).
        assert all(1.0 <= m <= 16.0 for m in measured)
        assert sum(measured) / len(measured) < 12.0


def test_bench_table3_single_network(benchmark):
    measured = benchmark(table3.measure_synthetic_effective_precisions,
                         "vgg19", "100%", 4096, 0)
    assert len(measured) == 16
