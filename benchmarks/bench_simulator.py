"""Micro-benchmarks of the simulator itself (not a paper artefact).

These track the cost of the building blocks the table/figure harnesses are
made of, so regressions in the models show up independently of the
experiment-level numbers: per-network accelerator simulation, the vectorized
fast-path engine vs the per-layer reference engine, the functional bit-serial
engine, the event-driven tile simulator and the dynamic-precision
measurement.

Script mode is the CI benchmark gate::

    python benchmarks/bench_simulator.py \
        --output BENCH_simulator.json \
        --check benchmarks/BENCH_baseline_simulator.json

measures the fast-vs-event layer-simulation speedup over the benchmark
matrix, writes the results as JSON, asserts the >= 5x ISSUE target, and --
when given a committed baseline -- fails if the measured speedup regressed by
more than 20%.  The gate compares the *dimensionless speedup ratio* rather
than wall-clock seconds so it is robust on noisy shared runners.
"""

import argparse
import dataclasses
import json
import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # script mode; pytest gets this from conftest.py
    sys.path.insert(0, _SRC)

from repro.accelerators import DPNN, DStripes, Stripes
from repro.core import Loom
from repro.core.scheduler import LoomGeometry, schedule_conv_layer
from repro.core.serial_engine import bit_serial_fc
from repro.core.tile import LoomTileSimulator
from repro.experiments.common import build_profiled_network
from repro.quant.dynamic import DynamicPrecisionModel
from repro.sim import run_network
from repro.sim.fastpath import build_layer_table, simulate_layers_fast
from repro.workloads.synthetic import SyntheticTensorGenerator

#: Minimum acceptable fast-vs-event layer-simulation speedup (the ISSUE's
#: acceptance criterion); the CI gate also compares against the committed
#: baseline with a 20% tolerance.
SPEEDUP_FLOOR = 5.0

#: Fraction of the baseline speedup the measured speedup may lose before the
#: regression gate fails (0.20 = "fails on >20% slowdown").
REGRESSION_TOLERANCE = 0.20

#: Maximum acceptable slowdown from leaving tracing enabled (the repro.obs
#: spans are per-batch/per-phase, never per-layer, so the executor path must
#: stay within 5% of the spans-disabled floor).
TRACING_OVERHEAD_LIMIT = 1.05

#: Absolute-seconds escape hatch for the overhead ratio: on a sub-ms batch a
#: scheduler hiccup can dwarf 5%, so a tiny absolute delta also passes.
TRACING_OVERHEAD_EPSILON_S = 0.002

_BENCH_NETWORKS = ("alexnet", "googlenet", "vgg19")


def _bench_accelerators():
    return (
        ("dpnn", DPNN()),
        ("stripes", Stripes()),
        ("dstripes", DStripes()),
        ("loom-1b", Loom(bits_per_cycle=1)),
        ("loom-2b", Loom(bits_per_cycle=2)),
        ("loom-4b", Loom(bits_per_cycle=4)),
    )


def _best_of(repeats, task):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        task()
        best = min(best, time.perf_counter() - start)
    return best


def measure_fastpath(repeats: int = 5) -> dict:
    """Time fast-path vs per-layer reference simulation over the matrix.

    Also cross-checks that the two engines produced identical layer results
    on every configuration, so a benchmark run doubles as a validation run.
    """
    configs = []
    event_total = 0.0
    fast_total = 0.0
    layers_simulated = 0
    for network_name in _BENCH_NETWORKS:
        network = build_profiled_network(network_name, "100%")
        layers = network.compute_layers()
        table = build_layer_table(layers)
        for label, accelerator in _bench_accelerators():
            reference = [accelerator.simulate_layer(layer) for layer in layers]
            fast = simulate_layers_fast(accelerator, table)
            if ([dataclasses.asdict(r) for r in reference]
                    != [dataclasses.asdict(r) for r in fast]):
                raise AssertionError(
                    f"engines disagree on {network_name}/{label}; "
                    f"run `loom-repro validate`"
                )
            event_s = _best_of(repeats, lambda: [
                accelerator.simulate_layer(layer) for layer in layers
            ])
            fast_s = _best_of(repeats, lambda:
                              simulate_layers_fast(accelerator, table))
            configs.append({
                "network": network_name,
                "accelerator": label,
                "layers": len(layers),
                "event_s": event_s,
                "fast_s": fast_s,
                "speedup": event_s / fast_s,
            })
            event_total += event_s
            fast_total += fast_s
            layers_simulated += len(layers)
    return {
        "benchmark": "simulator-fastpath",
        "networks": list(_BENCH_NETWORKS),
        "accelerators": [label for label, _ in _bench_accelerators()],
        "layers_simulated": layers_simulated,
        "configs": configs,
        "event_total_s": event_total,
        "fast_total_s": fast_total,
        "speedup": event_total / fast_total,
    }


def format_fastpath(measured: dict) -> str:
    lines = ["== layer simulation: vectorized fast path vs per-layer "
             "reference =="]
    for entry in measured["configs"]:
        lines.append(
            f"{entry['network']:<10s} {entry['accelerator']:<10s} "
            f"{entry['layers']:>3d} layers  "
            f"event {entry['event_s'] * 1e3:>8.3f} ms  "
            f"fast {entry['fast_s'] * 1e3:>8.3f} ms  "
            f"{entry['speedup']:>6.2f}x"
        )
    lines.append(
        f"{'TOTAL':<10s} {'':<10s} {measured['layers_simulated']:>3d} layers  "
        f"event {measured['event_total_s'] * 1e3:>8.3f} ms  "
        f"fast {measured['fast_total_s'] * 1e3:>8.3f} ms  "
        f"{measured['speedup']:>6.2f}x"
    )
    return "\n".join(lines)


def measure_tracing_overhead(repeats: int = 5) -> dict:
    """Time the traced executor path with spans disabled vs enabled.

    The guard behind "tracing is on by default": the executor opens one
    span per batch/phase (run, cache lookup, simulate, scatter), never one
    per layer, so enabling them must cost within
    ``TRACING_OVERHEAD_LIMIT`` of the disabled floor.
    """
    from repro.obs import get_tracer
    from repro.sim.jobs import (
        AcceleratorSpec,
        JobExecutor,
        NetworkSpec,
        SimJob,
    )

    def run_batch():
        with JobExecutor(cache=None) as executor:
            executor.run([
                SimJob(network=NetworkSpec("alexnet"),
                       accelerator=AcceleratorSpec.create(label))
                for label in ("dpnn", "loom", "dstripes")
            ])

    tracer = get_tracer()
    was_enabled = tracer.enabled
    try:
        run_batch()  # warm the spec/layer-table memos for both arms
        tracer.set_enabled(False)
        disabled_s = _best_of(repeats, run_batch)
        tracer.set_enabled(True)
        enabled_s = _best_of(repeats, run_batch)
    finally:
        tracer.set_enabled(was_enabled)
    return {
        "benchmark": "tracing-overhead",
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_ratio": enabled_s / disabled_s,
    }


def tracing_overhead_ok(measured: dict) -> bool:
    """The 5%-or-2ms acceptance test for :func:`measure_tracing_overhead`."""
    return (measured["overhead_ratio"] <= TRACING_OVERHEAD_LIMIT
            or measured["enabled_s"] - measured["disabled_s"]
            <= TRACING_OVERHEAD_EPSILON_S)


def format_tracing_overhead(measured: dict) -> str:
    return (
        "== tracing overhead: executor batch with spans disabled vs "
        "enabled ==\n"
        f"disabled {measured['disabled_s'] * 1e3:>8.3f} ms  "
        f"enabled {measured['enabled_s'] * 1e3:>8.3f} ms  "
        f"ratio {measured['overhead_ratio']:>5.3f} "
        f"(limit {TRACING_OVERHEAD_LIMIT:.2f})"
    )


def check_against_baseline(measured: dict, baseline: dict,
                           tolerance: float = REGRESSION_TOLERANCE) -> str:
    """Raise if the measured speedup regressed > ``tolerance`` vs baseline."""
    baseline_speedup = baseline["speedup"]
    measured_speedup = measured["speedup"]
    floor = baseline_speedup * (1.0 - tolerance)
    verdict = (
        f"baseline speedup {baseline_speedup:.2f}x, measured "
        f"{measured_speedup:.2f}x (gate: >= {floor:.2f}x)"
    )
    if measured_speedup < floor:
        raise AssertionError(f"benchmark regression: {verdict}")
    return verdict


# -- pytest-benchmark entry points --------------------------------------------


def test_bench_run_network_dpnn(benchmark):
    network = build_profiled_network("googlenet", "100%")
    dpnn = DPNN()
    result = benchmark(run_network, dpnn, network)
    assert len(result.layers) == 58


def test_bench_run_network_loom(benchmark):
    network = build_profiled_network("googlenet", "100%")
    loom = Loom()
    result = benchmark(run_network, loom, network)
    assert result.total_cycles() > 0


def test_bench_fastpath_engine(benchmark):
    network = build_profiled_network("googlenet", "100%")
    table = build_layer_table(network.compute_layers())
    loom = Loom()
    result = benchmark(simulate_layers_fast, loom, table)
    assert len(result) == 58


def test_bench_fastpath_speedup(artefacts):
    measured = measure_fastpath(repeats=3)
    artefacts["simulator-fastpath"] = format_fastpath(measured)
    assert measured["speedup"] >= SPEEDUP_FLOOR, (
        f"fast-path speedup {measured['speedup']:.2f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x target"
    )


def test_bench_tracing_overhead(artefacts):
    measured = measure_tracing_overhead(repeats=3)
    artefacts["tracing-overhead"] = format_tracing_overhead(measured)
    assert tracing_overhead_ok(measured), (
        f"tracing overhead {measured['overhead_ratio']:.3f}x exceeds the "
        f"{TRACING_OVERHEAD_LIMIT:.2f}x limit "
        f"(disabled {measured['disabled_s'] * 1e3:.3f} ms, "
        f"enabled {measured['enabled_s'] * 1e3:.3f} ms)"
    )


def test_bench_functional_bit_serial_fc(benchmark):
    rng = np.random.default_rng(0)
    acts = rng.integers(0, 2 ** 8, size=256)
    weights = rng.integers(-2 ** 7, 2 ** 7, size=(32, 256))
    result = benchmark(bit_serial_fc, acts, weights, 8, 8)
    assert np.array_equal(result.outputs, weights @ acts)


def test_bench_tile_simulator_conv(benchmark):
    from repro.nn.layers import Conv2D, TensorShape
    from repro.nn.network import LayerWithPrecision
    from repro.quant.precision import LayerPrecision
    layer = Conv2D(name="conv", out_channels=32, kernel=3, padding=1)
    in_shape = TensorShape(16, 8, 8)
    lw = LayerWithPrecision(layer=layer, input_shape=in_shape,
                            output_shape=layer.output_shape(in_shape),
                            precision=LayerPrecision(4, 5))
    schedule = schedule_conv_layer(lw, LoomGeometry(equivalent_macs=16))
    simulator = LoomTileSimulator()
    result = benchmark(simulator.run_conv, schedule)
    assert result.cycles == schedule.total_cycles


def test_bench_dynamic_precision_measurement(benchmark):
    generator = SyntheticTensorGenerator(seed=0)
    codes = generator.activations(65536, precision_bits=9)
    model = DynamicPrecisionModel()
    measured = benchmark(model.measured_activation_bits, codes, 9)
    assert 1.0 <= measured <= 9.0


# -- script mode (the CI benchmark gate) --------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the fast-path engine speedup and gate it "
                    "against a committed baseline.",
    )
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the measurements as JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if the speedup regressed >20%% vs this "
                             "baseline JSON")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per configuration "
                             "(best-of; default: 5)")
    args = parser.parse_args(argv)
    from repro.obs import get_tracer

    # The baseline-gated numbers are measured spans-disabled: the gate
    # tracks the engines, and the separate overhead guard tracks tracing.
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.set_enabled(False)
    try:
        measured = measure_fastpath(repeats=args.repeats)
    finally:
        tracer.set_enabled(was_enabled)
    print(format_fastpath(measured))
    overhead = measure_tracing_overhead(repeats=args.repeats)
    print(format_tracing_overhead(overhead))
    measured["tracing_overhead"] = overhead
    # Write the measurements before any gate can fail: when the gate trips
    # is exactly when the per-config timings are needed for diagnosis.
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if measured["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {measured['speedup']:.2f}x is below the "
              f"{SPEEDUP_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    if not tracing_overhead_ok(overhead):
        print(f"FAIL: tracing overhead {overhead['overhead_ratio']:.3f}x "
              f"exceeds the {TRACING_OVERHEAD_LIMIT:.2f}x limit",
              file=sys.stderr)
        return 1
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        try:
            print(check_against_baseline(measured, baseline))
        except AssertionError as error:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
