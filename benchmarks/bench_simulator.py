"""Micro-benchmarks of the simulator itself (not a paper artefact).

These track the cost of the building blocks the table/figure harnesses are
made of, so regressions in the models show up independently of the
experiment-level numbers: per-network accelerator simulation, the functional
bit-serial engine, the event-driven tile simulator and the dynamic-precision
measurement.
"""

import numpy as np

from repro.accelerators import DPNN
from repro.core import Loom
from repro.core.scheduler import LoomGeometry, schedule_conv_layer
from repro.core.serial_engine import bit_serial_fc
from repro.core.tile import LoomTileSimulator
from repro.experiments.common import build_profiled_network
from repro.quant.dynamic import DynamicPrecisionModel
from repro.sim import run_network
from repro.workloads.synthetic import SyntheticTensorGenerator


def test_bench_run_network_dpnn(benchmark):
    network = build_profiled_network("googlenet", "100%")
    dpnn = DPNN()
    result = benchmark(run_network, dpnn, network)
    assert len(result.layers) == 58


def test_bench_run_network_loom(benchmark):
    network = build_profiled_network("googlenet", "100%")
    loom = Loom()
    result = benchmark(run_network, loom, network)
    assert result.total_cycles() > 0


def test_bench_functional_bit_serial_fc(benchmark):
    rng = np.random.default_rng(0)
    acts = rng.integers(0, 2 ** 8, size=256)
    weights = rng.integers(-2 ** 7, 2 ** 7, size=(32, 256))
    result = benchmark(bit_serial_fc, acts, weights, 8, 8)
    assert np.array_equal(result.outputs, weights @ acts)


def test_bench_tile_simulator_conv(benchmark):
    from repro.nn.layers import Conv2D, TensorShape
    from repro.nn.network import LayerWithPrecision
    from repro.quant.precision import LayerPrecision
    layer = Conv2D(name="conv", out_channels=32, kernel=3, padding=1)
    in_shape = TensorShape(16, 8, 8)
    lw = LayerWithPrecision(layer=layer, input_shape=in_shape,
                            output_shape=layer.output_shape(in_shape),
                            precision=LayerPrecision(4, 5))
    schedule = schedule_conv_layer(lw, LoomGeometry(equivalent_macs=16))
    simulator = LoomTileSimulator()
    result = benchmark(simulator.run_conv, schedule)
    assert result.cycles == schedule.total_cycles


def test_bench_dynamic_precision_measurement(benchmark):
    generator = SyntheticTensorGenerator(seed=0)
    codes = generator.activations(65536, precision_bits=9)
    model = DynamicPrecisionModel()
    measured = benchmark(model.measured_activation_bits, codes, 9)
    assert 1.0 <= measured <= 9.0
