"""Benchmark / regeneration harness for Section 4.4 (area overhead)."""

import pytest

from repro.experiments import area


def test_bench_area(benchmark, artefacts):
    result = benchmark(area.run)
    artefacts["area"] = area.format_table(result)
    assert result.area_ratio["loom-1b"] == pytest.approx(1.34, abs=0.08)
    assert result.area_ratio["loom-2b"] == pytest.approx(1.25, abs=0.08)
    assert result.area_ratio["loom-4b"] == pytest.approx(1.16, abs=0.10)
    # The performance gain exceeds the area overhead for every variant.
    for design in ("loom-1b", "loom-2b", "loom-4b"):
        assert result.speedup[design] > result.area_ratio[design]
