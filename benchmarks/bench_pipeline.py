"""Benchmarks for the declarative job pipeline behind ``loom-repro all``.

Three measurements:

* ``test_bench_all_command`` times the current ``loom-repro all`` (every
  table and figure through one shared executor).
* ``test_bench_all_speedup_over_seed`` re-times ``all`` the way the seed
  commit executed it -- every harness re-simulating its full job matrix with
  nothing shared or cached, networks rebuilt per harness, and the seed's
  pure-Python significant-bit counter -- against the pipelined path, checks
  the two produce identical artefacts, and asserts the >= 2x wall-clock
  target the ISSUE sets.  The measured number is printed with the artefacts.
* ``test_bench_pipeline_sharing`` isolates the result-sharing component:
  the five simulation-driven harnesses execute 234 jobs the seed way but
  only 168 unique ones through a shared executor.
"""

import contextlib
import io
import time
from unittest import mock

import numpy as np

from repro.cli import main
from repro.experiments import area, figure4, figure5, table1, table2, table3, table4
from repro.quant import groups
from repro.sim.jobs import JobExecutor
from repro.sim.jobs import spec as jobs_spec


def _clear_memos():
    """Forget memoised networks/accelerators (cold-start conditions)."""
    jobs_spec.build_spec_network.cache_clear()
    jobs_spec._spec_layers.cache_clear()
    jobs_spec.build_accelerator.cache_clear()


def _seed_count_significant_bits(codes, signed=False):
    """The seed commit's per-element Python loop (reference baseline)."""
    codes = np.asarray(codes)
    flat = codes.ravel()
    out = np.empty(flat.shape, dtype=np.int64)
    for i, v in enumerate(flat):
        v = int(v)
        if signed:
            if v >= 0:
                out[i] = max(1, v.bit_length() + 1)
            else:
                out[i] = max(1, (-v - 1).bit_length() + 1)
        else:
            out[i] = max(1, v.bit_length())
    return out.reshape(codes.shape)


_SIM_HARNESSES = (
    lambda executor: table2.run(executor=executor),
    lambda executor: figure4.run(executor=executor),
    lambda executor: area.run(executor=executor),
    lambda executor: figure5.run(executor=executor),
    lambda executor: table4.run(executor=executor),
)


def _run_all_seed_style() -> str:
    """Regenerate every ``all`` artefact exactly the way the seed commit did.

    Each harness gets a fresh, cache-less executor (nothing shared between
    tables), profiled networks are rebuilt per harness, and Table 3 measures
    group precisions with the seed's per-element bit counter.
    """
    outputs = [table1.format_table()]

    def run(harness, formatter):
        _clear_memos()
        with JobExecutor(cache=None) as executor:
            return formatter(harness(executor))

    outputs.append(run(_SIM_HARNESSES[0], table2.format_table))
    outputs.append(run(_SIM_HARNESSES[1], figure4.format_figure))
    outputs.append(run(_SIM_HARNESSES[2], area.format_table))
    outputs.append(run(_SIM_HARNESSES[3], figure5.format_figure))
    with mock.patch.object(groups, "count_significant_bits",
                           _seed_count_significant_bits):
        outputs.append(table3.format_table())
    outputs.append(run(_SIM_HARNESSES[4], table4.format_table))
    return "\n\n".join(outputs) + "\n"


def _run_all_pipelined() -> str:
    """The current ``loom-repro all``: one shared executor, warm memos off."""
    _clear_memos()
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["all"]) == 0
    return buffer.getvalue()


def _best_of(runs: int, task) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        task()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_all_command(benchmark, artefacts):
    output = benchmark.pedantic(_run_all_pipelined, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert "Table 2" in output and "Figure 5" in output


def test_bench_all_speedup_over_seed(artefacts):
    # Warm both paths once (imports, profile parsing), and check the refactor
    # is behaviour-preserving: both execution styles emit identical artefacts.
    assert _run_all_seed_style() == _run_all_pipelined()

    seed_wall = _best_of(3, _run_all_seed_style)
    pipeline_wall = _best_of(3, _run_all_pipelined)
    speedup = seed_wall / pipeline_wall
    artefacts["pipeline-speedup"] = (
        "== loom-repro all: seed-style vs pipelined execution ==\n"
        f"seed-style: {seed_wall:.3f}s   pipelined: {pipeline_wall:.3f}s   "
        f"wall-clock speedup: {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"`loom-repro all` speedup {speedup:.2f}x is below the 2x target"
    )


def test_bench_pipeline_sharing(artefacts):
    """The sharing component alone: 234 submitted jobs, 168 unique."""
    executed_isolated = 0
    for harness in _SIM_HARNESSES:
        with JobExecutor(cache=None) as executor:
            harness(executor)
            executed_isolated += executor.stats.executed

    with JobExecutor() as shared:
        for harness in _SIM_HARNESSES:
            harness(shared)
        assert shared.stats.max_executions_per_key == 1
        executed_shared = shared.stats.executed

    artefacts["pipeline-sharing"] = (
        "== job pipeline: shared executor deduplication ==\n"
        f"isolated harnesses: {executed_isolated} simulations\n"
        f"shared executor:    {executed_shared} simulations "
        f"({executed_isolated / executed_shared:.2f}x fewer)"
    )
    assert executed_shared < executed_isolated
