"""Benchmark / regeneration harness for Table 2.

Regenerates the per-network, per-layer-kind speedup and energy-efficiency
grid for Stripes and the three Loom variants versus DPNN, under both accuracy
profiles, and checks the headline geometric means land near the paper's.
"""

import pytest

from repro.experiments import table2


def test_bench_table2_full(benchmark, artefacts):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    artefacts["table2"] = table2.format_table(result)
    # Paper geometric means (100% profile): conv 3.25x / 2.63x for Loom-1b.
    perf, eff = result.geomeans("100%", "conv")["loom-1b"]
    assert perf == pytest.approx(3.25, rel=0.15)
    assert eff == pytest.approx(2.63, rel=0.15)
    # FC geomeans: 1.74x / 1.41x.
    fc_perf, fc_eff = result.geomeans("100%", "fc")["loom-1b"]
    assert fc_perf == pytest.approx(1.74, rel=0.10)
    assert fc_eff == pytest.approx(1.41, rel=0.10)


def test_bench_table2_conv_single_network(benchmark):
    """Per-network micro-benchmark: how long one network's comparison takes."""
    result = benchmark(table2.run, ("100%",), ("alexnet",))
    cells = result.cells["100%"]["conv"]["alexnet"]
    assert cells["loom-1b"][0] > cells["stripes"][0] > 1.0
