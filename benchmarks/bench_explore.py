"""Benchmark: cache-aware design-space sweeps vs naive re-simulation.

Two execution styles for the same exploration workload (an exhaustive grid
sweep followed by an adaptive coordinate-descent search over the same space,
which is how a sweep is actually used -- broad pass first, refinement after):

* **naive** -- every search gets a fresh, cache-less executor, the way a
  hand-rolled experiment script re-simulates its matrix from scratch;
* **cache-aware** -- both searches share one cached :class:`JobExecutor`
  (what ``loom-repro explore`` does per invocation), so the refinement pass
  answers every revisited point from the cache.

Run under pytest (``python -m pytest benchmarks/bench_explore.py``) for the
measured artefact, or as a script (``python benchmarks/bench_explore.py
[--quick]``) for the CI smoke check, which asserts the simulation counts
rather than wall-clock so it is robust on noisy runners.

Script mode is also the CI regression gate::

    python benchmarks/bench_explore.py \
        --output BENCH_explore.json \
        --check benchmarks/BENCH_baseline_explore.json

which gates the *simulation-reduction ratio* (naive / cache-aware executed
counts -- fully deterministic) against the committed baseline: any change
that makes the shared executor re-simulate points it used to answer from
the cache fails the gate.

A second scenario (``--scenario surrogate``) measures surrogate-guided
exploration against the exhaustive grid over a 640-point space: the
:class:`SurrogateSearch` strategy must land within ``REGRET_CAP`` of the
grid's best composite score while issuing at most ``FRACTION_CAP`` of the
grid's true simulations, and every point it does simulate must be
bit-identical to the grid's result for the same point.  Gate it in CI with::

    python benchmarks/bench_explore.py --scenario surrogate \
        --output BENCH_explore_surrogate.json \
        --check benchmarks/BENCH_baseline_explore_surrogate.json
"""

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # script mode; pytest gets this from conftest.py
    sys.path.insert(0, _SRC)

from repro.explore import (
    Axis,
    CoordinateDescentSearch,
    SweepSpec,
    explore,
    resolve_objectives,
    resolve_strategy,
    scalar_score,
)
from repro.sim.jobs import JobExecutor
from repro.sim.jobs import spec as jobs_spec


def _sweep_space(quick: bool) -> SweepSpec:
    if quick:
        axes = [
            Axis("equivalent_macs", (32, 64)),
            Axis("accelerator", ("loom", "dstripes")),
        ]
    else:
        axes = [
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "loom:bits_per_cycle=4", "dstripes")),
            Axis("network", ("alexnet", "nin", "googlenet")),
        ]
    base = {"network": "alexnet"} if quick else {}
    return SweepSpec(axes=axes, base=base)


def _clear_memos():
    """Forget memoised networks/accelerators (cold-start conditions)."""
    jobs_spec.build_spec_network.cache_clear()
    jobs_spec._spec_layers.cache_clear()
    jobs_spec.build_accelerator.cache_clear()


def _run_workload(space, make_executor):
    """Grid sweep + adaptive refinement; returns (simulations, frontiers)."""
    executed = 0
    frontiers = []
    for strategy in ("grid", CoordinateDescentSearch(seed=0)):
        with make_executor() as executor:
            result = explore(space, strategy=strategy, executor=executor)
            executed += executor.stats.executed
            frontiers.append(
                tuple(sorted(ep.point.label() for ep in result.frontier))
            )
    return executed, frontiers


def _run_workload_shared(space):
    executed_markers = []
    frontiers = []
    with JobExecutor() as executor:
        for strategy in ("grid", CoordinateDescentSearch(seed=0)):
            result = explore(space, strategy=strategy, executor=executor)
            frontiers.append(
                tuple(sorted(ep.point.label() for ep in result.frontier))
            )
        executed_markers = executor.stats.executed
        assert executor.stats.max_executions_per_key == 1
    return executed_markers, frontiers


def measure(quick: bool = False):
    """Time and count both styles; returns a dict of measurements."""
    space = _sweep_space(quick)

    _clear_memos()
    start = time.perf_counter()
    naive_executed, naive_frontiers = _run_workload(
        space, lambda: JobExecutor(cache=None))
    naive_wall = time.perf_counter() - start

    _clear_memos()
    start = time.perf_counter()
    cached_executed, cached_frontiers = _run_workload_shared(space)
    cached_wall = time.perf_counter() - start

    assert naive_frontiers == cached_frontiers, (
        "cache-aware sweep changed the reported frontier"
    )
    assert cached_executed < naive_executed, (
        f"cache-aware sweep ran {cached_executed} simulations, naive ran "
        f"{naive_executed}; caching saved nothing"
    )
    return {
        "benchmark": "explore-cache-reuse",
        "quick": quick,
        "points": len(space.points()),
        "naive_executed": naive_executed,
        "cached_executed": cached_executed,
        "simulation_reduction": naive_executed / cached_executed,
        "naive_wall": naive_wall,
        "cached_wall": cached_wall,
    }


#: Fraction of the baseline simulation-reduction ratio the measured ratio
#: may lose before the regression gate fails.  The counts are deterministic,
#: so any loss at all is a real behaviour change; the tolerance only leaves
#: room for intentional small workload adjustments to land with a baseline
#: refresh in the same change.
REGRESSION_TOLERANCE = 0.20

#: Hard caps for the surrogate scenario: the surrogate's best composite
#: score may trail the exhaustive grid's by at most REGRET_CAP, while
#: issuing at most FRACTION_CAP of the grid's true simulations.
REGRET_CAP = 0.05
FRACTION_CAP = 0.10

#: Absolute regret slack vs the committed surrogate baseline.  The proposal
#: sequence is deterministic in-process, but near-tie acquisition scores can
#: flip across BLAS builds; the hard caps above do the real gating, the
#: baseline comparison only catches drifts that stay under the cap.
SURROGATE_REGRET_SLACK = 0.02


def _surrogate_space(quick: bool) -> SweepSpec:
    """A wide single-network space where exhaustive search is wasteful.

    The full space crosses 10 accelerator designs with 64 distinct
    configurations (640 points); baselines dedupe per configuration, so the
    grid needs 704 true simulations and a budgeted surrogate at most 64.
    """
    megabyte = 1 << 20
    if quick:
        axes = [
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "stripes", "dstripes")),
            Axis("equivalent_macs", (32, 64)),
            Axis("am_capacity_bytes", (megabyte, 2 * megabyte)),
        ]
    else:
        axes = [
            Axis("accelerator", (
                "loom",
                "loom:bits_per_cycle=2",
                "loom:bits_per_cycle=4",
                "loom:bits_per_cycle=2:window_fanout=2",
                "loom:bits_per_cycle=4:window_fanout=2",
                "loom:bits_per_cycle=2:use_cascading=false",
                "loom:bits_per_cycle=4:use_cascading=false",
                "loom:replicate_filters=true",
                "stripes",
                "dstripes",
            )),
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("am_capacity_bytes", (megabyte, 2 * megabyte,
                                       4 * megabyte, 8 * megabyte)),
            Axis("wm_capacity_bytes", (megabyte, 4 * megabyte)),
            Axis("dram", ("lpddr4-4267", None)),
        ]
    return SweepSpec(axes=axes, base={"network": "alexnet"})


def measure_surrogate(quick: bool = False):
    """Grid reference vs budgeted surrogate search; returns a dict.

    Both runs get their own cold executor, so the executed counts are true
    simulation counts (design + deduplicated baselines).  Every point the
    surrogate evaluates is asserted bit-identical to the grid's metrics for
    the same point before any score is compared.
    """
    space = _surrogate_space(quick)
    objectives = resolve_objectives(("speedup", "energy_efficiency", "area"))
    budget = 8 if quick else 32
    surrogate = resolve_strategy(
        "surrogate", seed=0,
        initial=4 if quick else 12,
        batch=2 if quick else 5,
        rounds=2 if quick else 4,
    )

    _clear_memos()
    start = time.perf_counter()
    with JobExecutor() as executor:
        grid_result = explore(space, strategy="grid", executor=executor)
        grid_executed = executor.stats.executed
    grid_wall = time.perf_counter() - start

    _clear_memos()
    start = time.perf_counter()
    with JobExecutor() as executor:
        surrogate_result = explore(space, strategy=surrogate,
                                   executor=executor, budget=budget)
        surrogate_executed = executor.stats.executed
    surrogate_wall = time.perf_counter() - start

    grid_metrics = {ep.point: ep.metrics for ep in grid_result.evaluated}
    for ep in surrogate_result.evaluated:
        assert ep.metrics == grid_metrics[ep.point], (
            f"surrogate result for {ep.point.label()} differs from the grid"
        )
    assert len(surrogate_result.evaluated) <= budget

    best_grid = max(scalar_score(ep.metrics, objectives)
                    for ep in grid_result.evaluated)
    best_surrogate = max(scalar_score(ep.metrics, objectives)
                         for ep in surrogate_result.evaluated)
    regret = 1.0 - best_surrogate / best_grid
    fraction = surrogate_executed / grid_executed
    return {
        "benchmark": "explore-surrogate",
        "quick": quick,
        "points": len(space.points()),
        "budget": budget,
        "grid_executed": grid_executed,
        "surrogate_executed": surrogate_executed,
        "simulation_fraction": fraction,
        "frontier_regret": regret,
        "grid_wall": grid_wall,
        "surrogate_wall": surrogate_wall,
    }


def check_surrogate(measured, baseline=None) -> str:
    """Enforce the surrogate caps (and drift vs ``baseline`` when given)."""
    regret = measured["frontier_regret"]
    fraction = measured["simulation_fraction"]
    verdict = (
        f"regret {regret:.4f} (cap {REGRET_CAP}), simulation fraction "
        f"{fraction:.4f} (cap {FRACTION_CAP})"
    )
    if regret > REGRET_CAP:
        raise AssertionError(f"surrogate regret above cap: {verdict}")
    if fraction > FRACTION_CAP:
        raise AssertionError(f"surrogate simulated too much: {verdict}")
    if baseline is not None:
        allowed = baseline["frontier_regret"] + SURROGATE_REGRET_SLACK
        if regret > allowed:
            raise AssertionError(
                f"surrogate regret drifted: {regret:.4f} vs baseline "
                f"{baseline['frontier_regret']:.4f} (+{SURROGATE_REGRET_SLACK}"
                " slack)"
            )
        if measured["surrogate_executed"] > baseline["surrogate_executed"]:
            raise AssertionError(
                f"surrogate executed {measured['surrogate_executed']} "
                f"simulations, baseline {baseline['surrogate_executed']}"
            )
        verdict += (f"; baseline regret {baseline['frontier_regret']:.4f}, "
                    f"{baseline['surrogate_executed']} simulations")
    return verdict


def check_against_baseline(measured, baseline,
                           tolerance: float = REGRESSION_TOLERANCE) -> str:
    """Raise if the simulation-reduction ratio regressed vs ``baseline``."""
    baseline_ratio = baseline["simulation_reduction"]
    measured_ratio = measured["simulation_reduction"]
    floor = baseline_ratio * (1.0 - tolerance)
    verdict = (
        f"baseline reduction {baseline_ratio:.2f}x, measured "
        f"{measured_ratio:.2f}x (gate: >= {floor:.2f}x)"
    )
    if measured_ratio < floor:
        raise AssertionError(f"benchmark regression: {verdict}")
    return verdict


def _format(measured) -> str:
    ratio = measured["simulation_reduction"]
    return (
        "== repro.explore: cache-aware sweep vs naive re-simulation ==\n"
        f"{measured['points']}-point space, grid sweep + coordinate descent\n"
        f"naive:       {measured['naive_executed']} simulations, "
        f"{measured['naive_wall']:.3f}s\n"
        f"cache-aware: {measured['cached_executed']} simulations, "
        f"{measured['cached_wall']:.3f}s\n"
        f"simulation reduction: {ratio:.2f}x"
    )


def _format_surrogate(measured) -> str:
    return (
        "== repro.explore: surrogate search vs exhaustive grid ==\n"
        f"{measured['points']}-point space, budget "
        f"{measured['budget']} evaluations\n"
        f"grid:      {measured['grid_executed']} simulations, "
        f"{measured['grid_wall']:.3f}s\n"
        f"surrogate: {measured['surrogate_executed']} simulations, "
        f"{measured['surrogate_wall']:.3f}s\n"
        f"simulation fraction: {measured['simulation_fraction']:.4f} "
        f"(cap {FRACTION_CAP})\n"
        f"frontier regret:     {measured['frontier_regret']:.4f} "
        f"(cap {REGRET_CAP})"
    )


def test_bench_explore_cache_reuse(artefacts):
    measured = measure(quick=False)
    artefacts["explore-cache-reuse"] = _format(measured)
    # The adaptive refinement must be (nearly) free on the shared executor;
    # wall-clock is asserted loosely since counts are the robust signal.
    assert measured["cached_executed"] < measured["naive_executed"]
    assert measured["cached_wall"] < measured["naive_wall"] * 1.5


def test_bench_explore_surrogate(artefacts):
    measured = measure_surrogate(quick=False)
    artefacts["explore-surrogate"] = _format_surrogate(measured)
    check_surrogate(measured)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", choices=("cache", "surrogate"),
                        default="cache",
                        help="cache: cache-aware vs naive sweeps (default); "
                             "surrogate: surrogate search vs exhaustive grid")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep for CI smoke runs")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the measurements as JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail on regression vs BASELINE (JSON): the "
                             "simulation-reduction ratio for the cache "
                             "scenario, the regret/fraction caps for the "
                             "surrogate scenario")
    args = parser.parse_args(argv)
    if args.scenario == "surrogate":
        measured = measure_surrogate(quick=args.quick)
        print(_format_surrogate(measured))
    else:
        measured = measure(quick=args.quick)
        print(_format(measured))
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measurements written to {args.output}")
    baseline = None
    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("quick", False) != args.quick:
            raise AssertionError(
                "baseline was measured with a different --quick setting; "
                "the simulation counts are not comparable"
            )
    if args.scenario == "surrogate":
        # The quick space is too small for the fraction cap to be meaningful;
        # quick mode stops at the bit-identity assertions inside the measure.
        if not args.quick:
            print("regression gate:", check_surrogate(measured, baseline))
    elif baseline is not None:
        print("regression gate:", check_against_baseline(measured, baseline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
