"""Benchmark: cache-aware design-space sweeps vs naive re-simulation.

Two execution styles for the same exploration workload (an exhaustive grid
sweep followed by an adaptive coordinate-descent search over the same space,
which is how a sweep is actually used -- broad pass first, refinement after):

* **naive** -- every search gets a fresh, cache-less executor, the way a
  hand-rolled experiment script re-simulates its matrix from scratch;
* **cache-aware** -- both searches share one cached :class:`JobExecutor`
  (what ``loom-repro explore`` does per invocation), so the refinement pass
  answers every revisited point from the cache.

Run under pytest (``python -m pytest benchmarks/bench_explore.py``) for the
measured artefact, or as a script (``python benchmarks/bench_explore.py
[--quick]``) for the CI smoke check, which asserts the simulation counts
rather than wall-clock so it is robust on noisy runners.

Script mode is also the CI regression gate::

    python benchmarks/bench_explore.py \
        --output BENCH_explore.json \
        --check benchmarks/BENCH_baseline_explore.json

which gates the *simulation-reduction ratio* (naive / cache-aware executed
counts -- fully deterministic) against the committed baseline: any change
that makes the shared executor re-simulate points it used to answer from
the cache fails the gate.
"""

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # script mode; pytest gets this from conftest.py
    sys.path.insert(0, _SRC)

from repro.explore import Axis, CoordinateDescentSearch, SweepSpec, explore
from repro.sim.jobs import JobExecutor
from repro.sim.jobs import spec as jobs_spec


def _sweep_space(quick: bool) -> SweepSpec:
    if quick:
        axes = [
            Axis("equivalent_macs", (32, 64)),
            Axis("accelerator", ("loom", "dstripes")),
        ]
    else:
        axes = [
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "loom:bits_per_cycle=4", "dstripes")),
            Axis("network", ("alexnet", "nin", "googlenet")),
        ]
    base = {"network": "alexnet"} if quick else {}
    return SweepSpec(axes=axes, base=base)


def _clear_memos():
    """Forget memoised networks/accelerators (cold-start conditions)."""
    jobs_spec.build_spec_network.cache_clear()
    jobs_spec._spec_layers.cache_clear()
    jobs_spec.build_accelerator.cache_clear()


def _run_workload(space, make_executor):
    """Grid sweep + adaptive refinement; returns (simulations, frontiers)."""
    executed = 0
    frontiers = []
    for strategy in ("grid", CoordinateDescentSearch(seed=0)):
        with make_executor() as executor:
            result = explore(space, strategy=strategy, executor=executor)
            executed += executor.stats.executed
            frontiers.append(
                tuple(sorted(ep.point.label() for ep in result.frontier))
            )
    return executed, frontiers


def _run_workload_shared(space):
    executed_markers = []
    frontiers = []
    with JobExecutor() as executor:
        for strategy in ("grid", CoordinateDescentSearch(seed=0)):
            result = explore(space, strategy=strategy, executor=executor)
            frontiers.append(
                tuple(sorted(ep.point.label() for ep in result.frontier))
            )
        executed_markers = executor.stats.executed
        assert executor.stats.max_executions_per_key == 1
    return executed_markers, frontiers


def measure(quick: bool = False):
    """Time and count both styles; returns a dict of measurements."""
    space = _sweep_space(quick)

    _clear_memos()
    start = time.perf_counter()
    naive_executed, naive_frontiers = _run_workload(
        space, lambda: JobExecutor(cache=None))
    naive_wall = time.perf_counter() - start

    _clear_memos()
    start = time.perf_counter()
    cached_executed, cached_frontiers = _run_workload_shared(space)
    cached_wall = time.perf_counter() - start

    assert naive_frontiers == cached_frontiers, (
        "cache-aware sweep changed the reported frontier"
    )
    assert cached_executed < naive_executed, (
        f"cache-aware sweep ran {cached_executed} simulations, naive ran "
        f"{naive_executed}; caching saved nothing"
    )
    return {
        "benchmark": "explore-cache-reuse",
        "quick": quick,
        "points": len(space.points()),
        "naive_executed": naive_executed,
        "cached_executed": cached_executed,
        "simulation_reduction": naive_executed / cached_executed,
        "naive_wall": naive_wall,
        "cached_wall": cached_wall,
    }


#: Fraction of the baseline simulation-reduction ratio the measured ratio
#: may lose before the regression gate fails.  The counts are deterministic,
#: so any loss at all is a real behaviour change; the tolerance only leaves
#: room for intentional small workload adjustments to land with a baseline
#: refresh in the same change.
REGRESSION_TOLERANCE = 0.20


def check_against_baseline(measured, baseline,
                           tolerance: float = REGRESSION_TOLERANCE) -> str:
    """Raise if the simulation-reduction ratio regressed vs ``baseline``."""
    baseline_ratio = baseline["simulation_reduction"]
    measured_ratio = measured["simulation_reduction"]
    floor = baseline_ratio * (1.0 - tolerance)
    verdict = (
        f"baseline reduction {baseline_ratio:.2f}x, measured "
        f"{measured_ratio:.2f}x (gate: >= {floor:.2f}x)"
    )
    if measured_ratio < floor:
        raise AssertionError(f"benchmark regression: {verdict}")
    return verdict


def _format(measured) -> str:
    ratio = measured["simulation_reduction"]
    return (
        "== repro.explore: cache-aware sweep vs naive re-simulation ==\n"
        f"{measured['points']}-point space, grid sweep + coordinate descent\n"
        f"naive:       {measured['naive_executed']} simulations, "
        f"{measured['naive_wall']:.3f}s\n"
        f"cache-aware: {measured['cached_executed']} simulations, "
        f"{measured['cached_wall']:.3f}s\n"
        f"simulation reduction: {ratio:.2f}x"
    )


def test_bench_explore_cache_reuse(artefacts):
    measured = measure(quick=False)
    artefacts["explore-cache-reuse"] = _format(measured)
    # The adaptive refinement must be (nearly) free on the shared executor;
    # wall-clock is asserted loosely since counts are the robust signal.
    assert measured["cached_executed"] < measured["naive_executed"]
    assert measured["cached_wall"] < measured["naive_wall"] * 1.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep for CI smoke runs")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the measurements as JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if the simulation-reduction ratio "
                             f"regressed more than {REGRESSION_TOLERANCE:.0%} "
                             "vs BASELINE (JSON)")
    args = parser.parse_args(argv)
    measured = measure(quick=args.quick)
    print(_format(measured))
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measurements written to {args.output}")
    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("quick", False) != args.quick:
            raise AssertionError(
                "baseline was measured with a different --quick setting; "
                "the simulation counts are not comparable"
            )
        print("regression gate:", check_against_baseline(measured, baseline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
