"""Benchmark: cache-aware design-space sweeps vs naive re-simulation.

Two execution styles for the same exploration workload (an exhaustive grid
sweep followed by an adaptive coordinate-descent search over the same space,
which is how a sweep is actually used -- broad pass first, refinement after):

* **naive** -- every search gets a fresh, cache-less executor, the way a
  hand-rolled experiment script re-simulates its matrix from scratch;
* **cache-aware** -- both searches share one cached :class:`JobExecutor`
  (what ``loom-repro explore`` does per invocation), so the refinement pass
  answers every revisited point from the cache.

Run under pytest (``python -m pytest benchmarks/bench_explore.py``) for the
measured artefact, or as a script (``python benchmarks/bench_explore.py
[--quick]``) for the CI smoke check, which asserts the simulation counts
rather than wall-clock so it is robust on noisy runners.
"""

import argparse
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # script mode; pytest gets this from conftest.py
    sys.path.insert(0, _SRC)

from repro.explore import Axis, CoordinateDescentSearch, SweepSpec, explore
from repro.sim.jobs import JobExecutor
from repro.sim.jobs import spec as jobs_spec


def _sweep_space(quick: bool) -> SweepSpec:
    if quick:
        axes = [
            Axis("equivalent_macs", (32, 64)),
            Axis("accelerator", ("loom", "dstripes")),
        ]
    else:
        axes = [
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "loom:bits_per_cycle=4", "dstripes")),
            Axis("network", ("alexnet", "nin", "googlenet")),
        ]
    base = {"network": "alexnet"} if quick else {}
    return SweepSpec(axes=axes, base=base)


def _clear_memos():
    """Forget memoised networks/accelerators (cold-start conditions)."""
    jobs_spec.build_spec_network.cache_clear()
    jobs_spec._spec_layers.cache_clear()
    jobs_spec.build_accelerator.cache_clear()


def _run_workload(space, make_executor):
    """Grid sweep + adaptive refinement; returns (simulations, frontiers)."""
    executed = 0
    frontiers = []
    for strategy in ("grid", CoordinateDescentSearch(seed=0)):
        with make_executor() as executor:
            result = explore(space, strategy=strategy, executor=executor)
            executed += executor.stats.executed
            frontiers.append(
                tuple(sorted(ep.point.label() for ep in result.frontier))
            )
    return executed, frontiers


def _run_workload_shared(space):
    executed_markers = []
    frontiers = []
    with JobExecutor() as executor:
        for strategy in ("grid", CoordinateDescentSearch(seed=0)):
            result = explore(space, strategy=strategy, executor=executor)
            frontiers.append(
                tuple(sorted(ep.point.label() for ep in result.frontier))
            )
        executed_markers = executor.stats.executed
        assert executor.stats.max_executions_per_key == 1
    return executed_markers, frontiers


def measure(quick: bool = False):
    """Time and count both styles; returns a dict of measurements."""
    space = _sweep_space(quick)

    _clear_memos()
    start = time.perf_counter()
    naive_executed, naive_frontiers = _run_workload(
        space, lambda: JobExecutor(cache=None))
    naive_wall = time.perf_counter() - start

    _clear_memos()
    start = time.perf_counter()
    cached_executed, cached_frontiers = _run_workload_shared(space)
    cached_wall = time.perf_counter() - start

    assert naive_frontiers == cached_frontiers, (
        "cache-aware sweep changed the reported frontier"
    )
    assert cached_executed < naive_executed, (
        f"cache-aware sweep ran {cached_executed} simulations, naive ran "
        f"{naive_executed}; caching saved nothing"
    )
    return {
        "points": len(space.points()),
        "naive_executed": naive_executed,
        "cached_executed": cached_executed,
        "naive_wall": naive_wall,
        "cached_wall": cached_wall,
    }


def _format(measured) -> str:
    ratio = measured["naive_executed"] / measured["cached_executed"]
    return (
        "== repro.explore: cache-aware sweep vs naive re-simulation ==\n"
        f"{measured['points']}-point space, grid sweep + coordinate descent\n"
        f"naive:       {measured['naive_executed']} simulations, "
        f"{measured['naive_wall']:.3f}s\n"
        f"cache-aware: {measured['cached_executed']} simulations, "
        f"{measured['cached_wall']:.3f}s\n"
        f"simulation reduction: {ratio:.2f}x"
    )


def test_bench_explore_cache_reuse(artefacts):
    measured = measure(quick=False)
    artefacts["explore-cache-reuse"] = _format(measured)
    # The adaptive refinement must be (nearly) free on the shared executor;
    # wall-clock is asserted loosely since counts are the robust signal.
    assert measured["cached_executed"] < measured["naive_executed"]
    assert measured["cached_wall"] < measured["naive_wall"] * 1.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep for CI smoke runs")
    args = parser.parse_args(argv)
    print(_format(measure(quick=args.quick)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
