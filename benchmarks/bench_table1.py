"""Benchmark / regeneration harness for Table 1 (precision profiles).

Two benchmarks:

* ``test_bench_table1_published`` formats the published per-layer precision
  profiles (the data every other experiment consumes).
* ``test_bench_table1_profile_search`` runs the Judd-style profile search end
  to end on a reduced-size network with synthetic weights and profiling
  images, demonstrating the methodology that produced Table 1.
"""

from repro.experiments import table1
from repro.experiments.table1 import derive_profile_for_network
from repro.nn.layers import Conv2D, FullyConnected, Pool2D, ReLU, TensorShape
from repro.nn.network import Network


def _profiling_network() -> Network:
    """A reduced AlexNet-like network small enough to profile in seconds."""
    net = Network("mini-alexnet", TensorShape(3, 32, 32))
    net.add(Conv2D(name="conv1", out_channels=16, kernel=5, stride=2))
    net.add(ReLU(name="relu1"))
    net.add(Pool2D(name="pool1", kernel=2, stride=2))
    net.add(Conv2D(name="conv2", out_channels=32, kernel=3, padding=1))
    net.add(ReLU(name="relu2"))
    net.add(Pool2D(name="pool2", kernel=2, stride=2))
    net.add(Conv2D(name="conv3", out_channels=32, kernel=3, padding=1))
    net.add(ReLU(name="relu3"))
    net.add(FullyConnected(name="fc1", out_features=64))
    net.add(ReLU(name="fc1_relu"))
    net.add(FullyConnected(name="fc2", out_features=10))
    return net


def test_bench_table1_published(benchmark, artefacts):
    rows = benchmark(table1.run)
    assert len(rows) == 12
    artefacts["table1"] = table1.format_table(rows)


def test_bench_table1_profile_search(benchmark, artefacts):
    network = _profiling_network()
    profile = benchmark(derive_profile_for_network, network, 1.0, 3, 0)
    assert profile.num_conv_layers == 3
    assert profile.num_fc_layers == 2
    lines = ["== Table 1 (methodology demo): profile search on mini-alexnet =="]
    lines.append("conv activations: "
                 + "-".join(str(b) for b in profile.conv_activation_bits()))
    lines.append("conv weights    : "
                 + "-".join(str(b) for b in profile.conv_weight_bits()))
    lines.append("fc weights      : "
                 + "-".join(str(b) for b in profile.fc_weight_bits()))
    artefacts["table1_search"] = "\n".join(lines)
