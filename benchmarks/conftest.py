"""Benchmark configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure of
the paper and reports how long each harness takes.  The regenerated artefacts
themselves are printed at the end of the run (captured per benchmark in the
``artefacts`` fixture) so a benchmark run doubles as a reproduction run.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


_ARTEFACTS = {}


@pytest.fixture
def artefacts():
    """Dict the benchmarks drop their formatted tables/figures into."""
    return _ARTEFACTS


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every regenerated table/figure after the benchmark timings."""
    if not _ARTEFACTS:
        return
    terminalreporter.write_sep("=", "regenerated paper artefacts")
    for name in sorted(_ARTEFACTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(_ARTEFACTS[name])
