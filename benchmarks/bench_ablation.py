"""Ablation benchmarks: the contribution of each Loom mechanism (DESIGN.md)."""


from repro.experiments import ablation


def test_bench_ablation(benchmark, artefacts):
    result = benchmark.pedantic(ablation.run, rounds=1, iterations=1)
    artefacts["ablation"] = ablation.format_table(result)
    # Dynamic precision reduction buys a measurable chunk of conv speedup.
    assert result.contribution("dynamic_precision") > 1.1
    # Cascading speeds up the sub-2K-output FC layers (the 1000-way
    # classifiers), which shows up as a >10% FC-level geomean gain.
    assert result.contribution("cascading") > 1.1
    # Bit-interleaved storage cuts traffic by roughly the precision ratio.
    assert result.contribution("storage_traffic_ratio") > 1.2
    # The window-major tiling recovers utilisation at the 512 configuration.
    assert result.contribution("tiling_at_512") > 1.1


def test_bench_ablation_single_network(benchmark):
    result = benchmark(ablation.run, ("alexnet",))
    assert result.dynamic_precision[0] > result.dynamic_precision[1]
