"""Benchmark / regeneration harness for Figure 4 (all-layer perf & efficiency)."""

import pytest

from repro.experiments import figure4


def test_bench_figure4(benchmark, artefacts):
    result = benchmark.pedantic(figure4.run, rounds=1, iterations=1)
    artefacts["figure4"] = figure4.format_figure(result)
    geo_perf = result.performance["geomean"]
    geo_eff = result.efficiency["geomean"]
    # Paper: LM1b > 3x faster and > 2.5x more energy efficient on average.
    assert geo_perf["loom-1b"] == pytest.approx(3.19, rel=0.15)
    assert geo_eff["loom-1b"] == pytest.approx(2.59, rel=0.15)
    # LM1b beats Stripes and DStripes in performance on every network.
    for network, row in result.performance.items():
        assert row["loom-1b"] > row["stripes"]
        assert row["loom-1b"] > row["dstripes"]
