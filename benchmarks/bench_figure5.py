"""Benchmark / regeneration harness for Figure 5 (scaling with LPDDR4 off-chip)."""

import pytest

from repro.experiments import figure5


def test_bench_figure5_full_sweep(benchmark, artefacts):
    result = benchmark.pedantic(figure5.run, rounds=1, iterations=1)
    artefacts["figure5"] = figure5.format_figure(result)
    # Shape assertions mirroring the paper's discussion of the figure.
    perfs_all = result.series("loom_rel_perf_all")
    assert all(a > b for a, b in zip(perfs_all, perfs_all[1:])), \
        "Loom's relative advantage must shrink as the configuration grows"
    p256 = result.point(256)
    p512 = result.point(512)
    # "At 256 LM and DStripes perform nearly identically and at 512 the
    # latter performs better" (convolutional layers).
    assert p256.loom_rel_perf_conv == pytest.approx(p256.dstripes_rel_perf_conv,
                                                    rel=0.25)
    assert p512.loom_rel_perf_conv <= p512.dstripes_rel_perf_conv * 1.05
    # Loom's weight memory scales 0.5 MB ... 8 MB across the sweep.
    assert [p.loom_weight_memory_mb for p in result.points] == \
        [0.5, 1.0, 2.0, 4.0, 8.0]
    # Real-time rates even at the smallest configuration (paper: 47/53 fps).
    assert result.point(32).loom_fps_conv > 30


def test_bench_figure5_single_point(benchmark):
    """Micro-benchmark: one configuration point of the sweep."""
    result = benchmark(figure5.run, (128,))
    assert result.point(128).loom_rel_perf_all > 1.5
