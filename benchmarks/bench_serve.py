"""Benchmarks for the batching simulation service (repro.serve).

Two measurements, written to ``BENCH_serve.json``:

* **warm-store throughput** -- requests/second against a warm
  ``SimulationService`` (the result is in the store, so each request is one
  HTTP round-trip plus a cache lookup).  This is the "amortise everything"
  promise of the serve ISSUE made concrete: a warm request costs
  milliseconds where a cold CLI invocation costs a full interpreter start,
  import, profile load and simulation.
* **amortisation win** -- wall-clock for N *independent cold CLI
  invocations* of the same job (fresh process each time: the pre-serve
  execution model) versus the same N requests against one warm service
  (first request simulates, the rest hit the store; concurrent duplicates
  coalesce onto one execution).

Script mode is the CI smoke check::

    python benchmarks/bench_serve.py --quick

which uses a reduced N, asserts the *deterministic* properties (exactly one
simulation for N identical requests, bit-identical payloads, a >1 win) and
writes the measurements; the full run (no flag) uses a larger N for stabler
numbers.  Asserting counts rather than milliseconds keeps the gate robust on
noisy shared runners.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # script mode; pytest gets this from conftest.py
    sys.path.insert(0, _SRC)

from repro.serve import ServeClient, SimulationService, SQLiteResultStore
from repro.sim.jobs import JobExecutor, ResultCache

#: The job every measurement uses (small but real: 12 conv layers).
POINT = {"network": "nin", "accelerator": "loom"}

#: Warm requests per throughput measurement (quick mode shrinks this).
WARM_REQUESTS = 200

#: Cold CLI invocations the amortisation comparison replays (each one is a
#: full interpreter start + import + simulate; keep it small).
COLD_INVOCATIONS = 4


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _cold_cli_run() -> float:
    """One independent cold CLI invocation of the benchmark job (seconds)."""
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "--no-cache", "run",
         "--network", POINT["network"]],
        check=True, capture_output=True, env=_cli_env(),
    )
    return time.perf_counter() - start


def bench_serve(quick: bool = False) -> dict:
    warm_requests = 25 if quick else WARM_REQUESTS
    cold_invocations = 2 if quick else COLD_INVOCATIONS
    concurrent = 4

    with tempfile.TemporaryDirectory() as tmp:
        store = SQLiteResultStore(os.path.join(tmp, "bench.db"))
        executor = JobExecutor(cache=ResultCache(backend=store,
                                                 max_memory_entries=64))
        with SimulationService(executor=executor) as service:
            client = ServeClient(service.url)

            # -- coalescing: N concurrent identical cold submissions ---------
            barrier = threading.Barrier(concurrent)
            payloads = []

            def submit():
                barrier.wait()
                payloads.append(client.submit(POINT))

            threads = [threading.Thread(target=submit)
                       for _ in range(concurrent)]
            coalesce_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            coalesce_wall = time.perf_counter() - coalesce_start

            executions = service.executor.stats.max_executions_per_key
            assert executions == 1, (
                f"{concurrent} concurrent identical submissions executed "
                f"{executions} times; coalescing is broken"
            )
            reference = payloads[0].result.to_dict()
            assert all(p.result.to_dict() == reference for p in payloads)

            # -- warm-store throughput --------------------------------------
            client.submit(POINT)  # ensure warm
            warm_start = time.perf_counter()
            for _ in range(warm_requests):
                client.submit(POINT)
            warm_wall = time.perf_counter() - warm_start
            warm_rps = warm_requests / warm_wall

            served_stats = service.stats.to_dict()

    # -- N independent cold CLI invocations (the pre-serve model) ------------
    cold_walls = [_cold_cli_run() for _ in range(cold_invocations)]
    cold_total = sum(cold_walls)
    # The service answered the same N requests in: one cold execution
    # (amortised over the concurrent batch) + (N - 1) warm round-trips.
    serve_equivalent = coalesce_wall + (cold_invocations - 1) / warm_rps
    amortisation_win = cold_total / serve_equivalent

    return {
        "benchmark": "serve",
        "point": POINT,
        "warm_requests": warm_requests,
        "warm_requests_per_second": round(warm_rps, 1),
        "warm_request_ms": round(1000.0 / warm_rps, 3),
        "concurrent_submissions": concurrent,
        "coalesced_executions": 1,
        "coalesce_wall_s": round(coalesce_wall, 4),
        "cold_cli_invocations": cold_invocations,
        "cold_cli_wall_s": [round(w, 3) for w in cold_walls],
        "cold_cli_total_s": round(cold_total, 3),
        "serve_equivalent_s": round(serve_equivalent, 3),
        "amortisation_win": round(amortisation_win, 2),
        "service_stats": served_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the batching simulation service: warm-store "
                    "throughput and the amortisation win over independent "
                    "cold CLI invocations.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced request counts (the CI smoke variant)")
    parser.add_argument("--output", default="BENCH_serve.json",
                        metavar="PATH", help="where to write the JSON results "
                        "(default: BENCH_serve.json)")
    args = parser.parse_args(argv)

    measured = bench_serve(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(measured, handle, indent=2, sort_keys=True)

    print("== loom-repro serve: warm store vs cold CLI invocations ==")
    print(f"warm store:       {measured['warm_requests_per_second']:.1f} "
          f"requests/s ({measured['warm_request_ms']:.2f} ms/request)")
    print(f"coalescing:       {measured['concurrent_submissions']} concurrent "
          f"identical submissions -> 1 execution "
          f"({measured['coalesce_wall_s']:.2f}s)")
    print(f"cold CLI:         {measured['cold_cli_invocations']} independent "
          f"invocations, {measured['cold_cli_total_s']:.2f}s total")
    print(f"amortisation win: {measured['amortisation_win']:.2f}x "
          f"(same work through one warm service: "
          f"{measured['serve_equivalent_s']:.2f}s)")
    print(f"results written to {args.output}")

    # Deterministic gates only: the coalescing assertion already ran inside
    # bench_serve; the win must merely exist, not hit a wall-clock target.
    assert measured["amortisation_win"] > 1.0, (
        f"serving was not faster than cold CLI invocations "
        f"({measured['amortisation_win']:.2f}x)"
    )
    return 0


# -- pytest harness entry points ----------------------------------------------


def test_bench_serve(artefacts):
    measured = bench_serve(quick=True)
    artefacts["serve"] = (
        "== serve: warm store vs cold CLI ==\n"
        f"warm: {measured['warm_requests_per_second']:.1f} req/s   "
        f"cold CLI total: {measured['cold_cli_total_s']:.2f}s   "
        f"amortisation win: {measured['amortisation_win']:.2f}x"
    )
    assert measured["amortisation_win"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
