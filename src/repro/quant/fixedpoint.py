"""Fixed-point numeric formats and tensor quantisation.

DPNN (the bit-parallel baseline) and Loom both operate on fixed-point values.
The baseline hardware uses 16-bit fixed point for activations and weights; Loom
exploits the fact that most layers need far fewer bits.  This module provides
the conversion between real-valued tensors (as produced by a trained network)
and the integer fixed-point representation that the accelerator models consume,
plus helpers to determine the minimum precision required to represent a tensor
without clipping.

A fixed-point format is described by a total bit width and the number of
fractional bits, i.e. the classic Q-format ``Q(integer_bits.fraction_bits)``.
Signed values use two's complement, matching the SIP negation block described
in Section 3.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FixedPointFormat",
    "quantize",
    "dequantize",
    "quantize_tensor",
    "required_precision",
    "saturate",
]

#: Baseline hardware word width used by DPNN for both weights and activations.
BASELINE_PRECISION = 16


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed or unsigned fixed-point numeric format.

    Attributes
    ----------
    total_bits:
        Total number of bits in the representation (sign bit included for
        signed formats).
    frac_bits:
        Number of fractional bits.  The represented value of the integer code
        ``q`` is ``q * 2**-frac_bits``.
    signed:
        Whether the format is two's-complement signed.  Weights are signed;
        post-ReLU activations are unsigned (the paper notes activation
        precisions of up to 13 bits which fit in the 16-bit unsigned lanes).
    """

    total_bits: int
    frac_bits: int = 0
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ValueError(f"total_bits must be >= 1, got {self.total_bits}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be >= 0, got {self.frac_bits}")
        if self.signed and self.total_bits < 2:
            raise ValueError("signed formats need at least 2 bits")

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def int_bits(self) -> int:
        """Number of integer (non-fractional, non-sign) bits."""
        sign = 1 if self.signed else 0
        return self.total_bits - self.frac_bits - sign

    @property
    def min_code(self) -> int:
        """Smallest representable integer code."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_code * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.scale

    def with_total_bits(self, total_bits: int) -> "FixedPointFormat":
        """Return a copy of this format with a different total width."""
        return FixedPointFormat(total_bits=total_bits, frac_bits=self.frac_bits,
                                signed=self.signed)

    def describe(self) -> str:
        """Human-readable description, e.g. ``s16.8`` or ``u8.0``."""
        prefix = "s" if self.signed else "u"
        return f"{prefix}{self.total_bits}.{self.frac_bits}"


def saturate(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Clamp integer codes to the representable range of ``fmt``."""
    return np.clip(codes, fmt.min_code, fmt.max_code)


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Quantise real values to integer codes in ``fmt``.

    Rounding is round-to-nearest (ties away from zero, matching ``np.round``
    up to the banker's-rounding caveat which is irrelevant at the precisions
    studied), followed by saturation to the representable range.

    Parameters
    ----------
    values:
        Array of real values.
    fmt:
        Target fixed-point format.

    Returns
    -------
    np.ndarray of int64 integer codes.
    """
    values = np.asarray(values, dtype=np.float64)
    codes = np.round(values / fmt.scale).astype(np.int64)
    return saturate(codes, fmt)


def dequantize(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Convert integer codes back to real values."""
    return np.asarray(codes, dtype=np.float64) * fmt.scale


def quantize_tensor(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Quantise then dequantise, i.e. the real values the hardware would see."""
    return dequantize(quantize(values, fmt), fmt)


def required_precision(codes: np.ndarray, signed: bool = True) -> int:
    """Minimum number of bits needed to represent every integer code.

    For unsigned data this is the position of the most significant one plus
    one; for signed two's-complement data one extra sign bit is required.  An
    all-zero tensor still needs one bit (the hardware cannot use a zero-cycle
    precision; the paper's dynamic precision reduction likewise bottoms out at
    1 bit).

    Parameters
    ----------
    codes:
        Integer codes (any integer dtype).
    signed:
        Whether the codes are two's-complement signed.

    Returns
    -------
    int
        Number of bits, at least 1.
    """
    codes = np.asarray(codes)
    if codes.size == 0:
        return 1
    if signed:
        # For negative v, two's complement needs ceil(log2(|v|)) + 1 bits
        # (e.g. -8 fits in 4 bits); for positive v it needs floor(log2(v)) + 2.
        max_pos = int(codes.max(initial=0))
        min_neg = int(codes.min(initial=0))
        bits_pos = int(max_pos).bit_length() + 1 if max_pos > 0 else 1
        bits_neg = int(-min_neg - 1).bit_length() + 1 if min_neg < 0 else 1
        return max(1, bits_pos, bits_neg)
    max_val = int(np.abs(codes).max())
    return max(1, int(max_val).bit_length())
