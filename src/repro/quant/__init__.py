"""Fixed-point and precision substrate.

This package provides everything Loom needs to reason about reduced numerical
precision:

* :mod:`repro.quant.fixedpoint` -- conversion between real-valued tensors and
  fixed-point integers, the representation DPNN and Loom operate on.
* :mod:`repro.quant.bitops` -- bit-serial decomposition and bit-interleaved
  packing utilities used by the functional Loom model and the memory layout
  model.
* :mod:`repro.quant.precision` -- per-layer precision profiles, including the
  paper's Table 1 (profile-derived) and Table 3 (per-group effective) profiles.
* :mod:`repro.quant.profiler` -- the Judd-style profile-derived precision
  search that selects the smallest per-layer precisions meeting an accuracy
  constraint.
* :mod:`repro.quant.groups` -- per-group (dynamic) precision reduction for
  activations and weights following Lascorz et al.
"""

from repro.quant.fixedpoint import (
    FixedPointFormat,
    quantize,
    dequantize,
    quantize_tensor,
    required_precision,
    saturate,
)
from repro.quant.bitops import (
    bit_decompose,
    bit_compose,
    bit_serial_dot,
    pack_bit_interleaved,
    unpack_bit_interleaved,
    count_significant_bits,
)
from repro.quant.precision import (
    LayerPrecision,
    NetworkPrecisionProfile,
    PAPER_PROFILES_100,
    PAPER_PROFILES_99,
    PAPER_EFFECTIVE_WEIGHT_PRECISIONS,
    get_paper_profile,
    paper_networks,
)
from repro.quant.profiler import PrecisionProfiler, ProfiledPrecision
from repro.quant.groups import (
    group_activation_precisions,
    group_weight_precisions,
    effective_precision,
    GroupPrecisionStats,
)

__all__ = [
    "FixedPointFormat",
    "quantize",
    "dequantize",
    "quantize_tensor",
    "required_precision",
    "saturate",
    "bit_decompose",
    "bit_compose",
    "bit_serial_dot",
    "pack_bit_interleaved",
    "unpack_bit_interleaved",
    "count_significant_bits",
    "LayerPrecision",
    "NetworkPrecisionProfile",
    "PAPER_PROFILES_100",
    "PAPER_PROFILES_99",
    "PAPER_EFFECTIVE_WEIGHT_PRECISIONS",
    "get_paper_profile",
    "paper_networks",
    "PrecisionProfiler",
    "ProfiledPrecision",
    "group_activation_precisions",
    "group_weight_precisions",
    "effective_precision",
    "GroupPrecisionStats",
]
