"""Per-layer precision profiles.

The central data the Loom evaluation revolves around is a *precision profile*:
for each convolutional layer an activation precision ``Pa`` and a weight
precision ``Pw``, and for each fully-connected layer a weight precision.  The
paper reports two profile sets derived with the methodology of Judd et al.
(one guaranteeing no top-1 accuracy loss, "100%", and one accepting a 1%
relative loss, "99%") in its Table 1, and per-layer average *effective* weight
precisions for groups of 16 weights in Table 3.

This module ships those published profiles verbatim (they are the inputs to
every experiment in the paper) and defines the dataclasses used to represent
profiles produced by our own :mod:`repro.quant.profiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LayerPrecision",
    "NetworkPrecisionProfile",
    "PAPER_PROFILES_100",
    "PAPER_PROFILES_99",
    "PAPER_EFFECTIVE_WEIGHT_PRECISIONS",
    "MODERN_PROFILES_100",
    "MODERN_PROFILES_99",
    "MODERN_EFFECTIVE_WEIGHT_PRECISIONS",
    "get_paper_profile",
    "paper_networks",
    "BASELINE_PRECISION",
]

#: The bit-parallel baseline's fixed word width.
BASELINE_PRECISION = 16


@dataclass(frozen=True)
class LayerPrecision:
    """Precision assignment for a single layer.

    Attributes
    ----------
    activation_bits:
        Profile-derived activation precision ``Pa`` for this layer.  For
        fully-connected layers Loom's execution time does not depend on it,
        but it still determines activation memory traffic.
    weight_bits:
        Weight precision ``Pw`` for this layer.  The paper uses a single
        network-wide weight precision for CVLs and per-layer precisions for
        FCLs; both map onto this per-layer field.
    effective_weight_bits:
        Optional average per-group (16-weight) effective weight precision from
        Table 3, used by the Section 4.6 / Table 4 experiments.  ``None`` when
        only the profile-derived precision is available.
    """

    activation_bits: int
    weight_bits: int
    effective_weight_bits: Optional[float] = None

    def __post_init__(self) -> None:
        if not 1 <= self.activation_bits <= BASELINE_PRECISION:
            raise ValueError(
                f"activation_bits must be in [1, {BASELINE_PRECISION}], "
                f"got {self.activation_bits}"
            )
        if not 1 <= self.weight_bits <= BASELINE_PRECISION:
            raise ValueError(
                f"weight_bits must be in [1, {BASELINE_PRECISION}], "
                f"got {self.weight_bits}"
            )
        if self.effective_weight_bits is not None and not (
            0.0 < self.effective_weight_bits <= BASELINE_PRECISION
        ):
            raise ValueError(
                f"effective_weight_bits must be in (0, {BASELINE_PRECISION}], "
                f"got {self.effective_weight_bits}"
            )


@dataclass
class NetworkPrecisionProfile:
    """Precision profile for a whole network.

    Convolutional layer precisions are keyed by position in the network's CVL
    sequence; fully-connected layer precisions by position in the FCL
    sequence.  This matches how the paper reports Table 1 (one row per
    network, a dash-separated list per layer kind).
    """

    network: str
    accuracy_target: str
    conv_layers: List[LayerPrecision] = field(default_factory=list)
    fc_layers: List[LayerPrecision] = field(default_factory=list)

    @property
    def num_conv_layers(self) -> int:
        return len(self.conv_layers)

    @property
    def num_fc_layers(self) -> int:
        return len(self.fc_layers)

    def conv_activation_bits(self) -> List[int]:
        """Per-CVL activation precisions (the Table 1 "Act. / Per Layer" row)."""
        return [lp.activation_bits for lp in self.conv_layers]

    def conv_weight_bits(self) -> List[int]:
        """Per-CVL weight precisions."""
        return [lp.weight_bits for lp in self.conv_layers]

    def fc_weight_bits(self) -> List[int]:
        """Per-FCL weight precisions (the Table 1 FC rows)."""
        return [lp.weight_bits for lp in self.fc_layers]

    def with_effective_weights(
        self, conv_effective: Sequence[float]
    ) -> "NetworkPrecisionProfile":
        """Return a copy whose CVLs carry Table 3 effective weight precisions."""
        if len(conv_effective) != len(self.conv_layers):
            raise ValueError(
                f"expected {len(self.conv_layers)} effective precisions for "
                f"{self.network}, got {len(conv_effective)}"
            )
        new_convs = [
            LayerPrecision(
                activation_bits=lp.activation_bits,
                weight_bits=lp.weight_bits,
                effective_weight_bits=float(eff),
            )
            for lp, eff in zip(self.conv_layers, conv_effective)
        ]
        return NetworkPrecisionProfile(
            network=self.network,
            accuracy_target=self.accuracy_target,
            conv_layers=new_convs,
            fc_layers=list(self.fc_layers),
        )


def _profile(
    network: str,
    accuracy: str,
    conv_act: Sequence[int],
    conv_weight: int,
    fc_weights: Sequence[int],
) -> NetworkPrecisionProfile:
    """Build a profile from the Table 1 encoding (per-layer acts, one CVL weight)."""
    convs = [
        LayerPrecision(activation_bits=a, weight_bits=conv_weight) for a in conv_act
    ]
    # FCL activation precision does not affect Loom FCL performance; the
    # hardware still streams 16 activation bits, so we record the baseline.
    fcs = [
        LayerPrecision(activation_bits=BASELINE_PRECISION, weight_bits=w)
        for w in fc_weights
    ]
    return NetworkPrecisionProfile(
        network=network,
        accuracy_target=accuracy,
        conv_layers=convs,
        fc_layers=fcs,
    )


# ---------------------------------------------------------------------------
# Table 1: profile-derived per-layer precisions (100% and 99% top-1 accuracy).
# ---------------------------------------------------------------------------

PAPER_PROFILES_100: Dict[str, NetworkPrecisionProfile] = {
    "nin": _profile(
        "nin", "100%",
        conv_act=[8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8], conv_weight=11,
        fc_weights=[],
    ),
    "alexnet": _profile(
        "alexnet", "100%",
        conv_act=[9, 8, 5, 5, 7], conv_weight=11,
        fc_weights=[10, 9, 9],
    ),
    "googlenet": _profile(
        "googlenet", "100%",
        conv_act=[10, 8, 10, 9, 8, 10, 9, 8, 9, 10, 7], conv_weight=11,
        fc_weights=[7],
    ),
    "vggs": _profile(
        "vggs", "100%",
        conv_act=[7, 8, 9, 7, 9], conv_weight=12,
        fc_weights=[10, 9, 9],
    ),
    "vggm": _profile(
        "vggm", "100%",
        conv_act=[7, 7, 7, 8, 7], conv_weight=12,
        fc_weights=[10, 8, 8],
    ),
    "vgg19": _profile(
        "vgg19", "100%",
        conv_act=[12, 12, 12, 11, 12, 10, 11, 11, 13, 12, 13, 13, 13, 13, 13, 13],
        conv_weight=12,
        fc_weights=[10, 9, 9],
    ),
}

PAPER_PROFILES_99: Dict[str, NetworkPrecisionProfile] = {
    "nin": _profile(
        "nin", "99%",
        conv_act=[8, 8, 7, 9, 7, 8, 8, 9, 9, 8, 7, 8], conv_weight=10,
        fc_weights=[],
    ),
    "alexnet": _profile(
        "alexnet", "99%",
        conv_act=[9, 7, 4, 5, 7], conv_weight=11,
        fc_weights=[9, 8, 8],
    ),
    "googlenet": _profile(
        "googlenet", "99%",
        conv_act=[10, 8, 9, 8, 8, 9, 10, 8, 9, 10, 8], conv_weight=10,
        fc_weights=[7],
    ),
    "vggs": _profile(
        "vggs", "99%",
        conv_act=[7, 8, 9, 7, 9], conv_weight=11,
        fc_weights=[9, 9, 8],
    ),
    "vggm": _profile(
        "vggm", "99%",
        conv_act=[6, 8, 7, 7, 7], conv_weight=12,
        fc_weights=[9, 8, 8],
    ),
    "vgg19": _profile(
        "vgg19", "99%",
        conv_act=[9, 9, 9, 8, 12, 10, 10, 12, 13, 11, 12, 13, 13, 13, 13, 13],
        conv_weight=12,
        fc_weights=[10, 9, 8],
    ),
}


# ---------------------------------------------------------------------------
# Table 3: average effective per-layer weight precisions (16-weight groups).
# ---------------------------------------------------------------------------

PAPER_EFFECTIVE_WEIGHT_PRECISIONS: Dict[str, Tuple[float, ...]] = {
    "nin": (8.85, 10.29, 10.21, 7.65, 9.13, 9.04, 7.63, 8.65, 8.62, 7.79, 7.96, 8.18),
    "alexnet": (8.36, 7.62, 7.62, 7.44, 7.55),
    "googlenet": (6.19, 5.75, 6.80, 6.28, 5.34, 6.70, 6.31, 5.02, 5.49, 7.89, 4.83),
    "vggs": (9.94, 6.96, 8.53, 8.13, 8.10),
    "vggm": (9.87, 7.55, 8.52, 8.16, 8.14),
    "vgg19": (10.98, 9.81, 9.31, 9.09, 8.58, 8.04, 7.89, 7.86, 7.51, 7.20, 7.36,
              7.47, 7.61, 7.66, 7.66, 7.63),
}


# ---------------------------------------------------------------------------
# Modern-workload profiles (mobilenet_v1 / resnet18 / tiny_transformer).
#
# These networks post-date the paper, so their profiles are NOT published
# values: they were derived with this repository's own Judd-style profiler
# (repro.quant.profiler) on synthetic-weight reference models, then encoded
# in the paper's Table 1 format (per-layer activation precisions, one
# network-wide CVL weight precision, per-FCL weight precisions).  Attention
# MatMul layers profile exactly like CVLs -- they run on the same datapath.
# ---------------------------------------------------------------------------

MODERN_PROFILES_100: Dict[str, NetworkPrecisionProfile] = {
    # Depthwise layers carry fewer terms per window and less headroom for
    # error averaging, so their activation precisions sit above the
    # pointwise layers' (the alternating high/low pattern below).
    "mobilenet_v1": _profile(
        "mobilenet_v1", "100%",
        conv_act=[9,
                  10, 8, 10, 8, 10, 8, 10, 8, 10, 8, 10, 8, 10,
                  8, 10, 8, 10, 8, 10, 8, 10, 8, 10, 8, 10, 9],
        conv_weight=12,
        fc_weights=[10],
    ),
    "resnet18": _profile(
        "resnet18", "100%",
        conv_act=[10, 9, 9, 9, 9, 8, 9, 8, 9, 8, 9, 8, 9, 8, 9, 8, 9, 9, 10,
                  10],
        conv_weight=11,
        fc_weights=[9],
    ),
    # Per encoder block: q, k, v, qk, av, out, ffn1, ffn2.  The dynamic
    # Q@K^T / scores@V multiplies need more activation bits (their operands
    # are post-softmax distributions and raw scores).
    "tiny_transformer": _profile(
        "tiny_transformer", "100%",
        conv_act=[9, 9, 9, 11, 10, 9, 8, 9,
                  9, 9, 9, 11, 10, 9, 8, 9],
        conv_weight=11,
        fc_weights=[9],
    ),
}

MODERN_PROFILES_99: Dict[str, NetworkPrecisionProfile] = {
    "mobilenet_v1": _profile(
        "mobilenet_v1", "99%",
        conv_act=[8,
                  9, 7, 9, 7, 9, 7, 9, 7, 9, 7, 9, 7, 9,
                  7, 9, 7, 9, 7, 9, 7, 9, 7, 9, 7, 9, 8],
        conv_weight=11,
        fc_weights=[9],
    ),
    "resnet18": _profile(
        "resnet18", "99%",
        conv_act=[9, 8, 8, 8, 8, 7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 8, 9, 9],
        conv_weight=10,
        fc_weights=[8],
    ),
    "tiny_transformer": _profile(
        "tiny_transformer", "99%",
        conv_act=[8, 8, 8, 10, 9, 8, 7, 8,
                  8, 8, 8, 10, 9, 8, 7, 8],
        conv_weight=10,
        fc_weights=[8],
    ),
}

#: Average effective per-group weight precisions for the modern networks
#: (measured over 16-weight groups of the synthetic reference models, the
#: same methodology as the paper's Table 3).
MODERN_EFFECTIVE_WEIGHT_PRECISIONS: Dict[str, Tuple[float, ...]] = {
    "mobilenet_v1": (
        8.91,
        9.84, 7.42, 9.66, 7.31, 9.52, 7.20, 9.47, 7.12, 9.41, 7.08, 9.38,
        7.02, 9.35, 6.98, 9.31, 6.95, 9.28, 6.91, 9.26, 6.88, 9.24, 6.85,
        9.21, 6.83, 9.19, 7.64,
    ),
    "resnet18": (
        8.73, 8.12, 8.05, 7.94, 7.88, 7.51, 7.76, 7.43, 7.62, 7.31, 7.55,
        7.24, 7.48, 7.18, 7.41, 7.12, 7.36, 7.52, 8.04, 8.21,
    ),
    "tiny_transformer": (
        7.92, 7.85, 7.78, 9.41, 8.87, 7.71, 7.02, 7.64,
        7.88, 7.81, 7.74, 9.35, 8.82, 7.67, 6.98, 7.60,
    ),
}


def paper_networks() -> List[str]:
    """Names of the networks the paper evaluates, in its reporting order."""
    return ["nin", "alexnet", "googlenet", "vggs", "vggm", "vgg19"]


def get_paper_profile(
    network: str,
    accuracy: str = "100%",
    with_effective_weights: bool = False,
) -> NetworkPrecisionProfile:
    """Look up a published precision profile.

    Parameters
    ----------
    network:
        One of :func:`paper_networks` or a modern zoo network
        (``mobilenet_v1`` / ``resnet18`` / ``tiny_transformer``;
        case-insensitive).  The modern profiles come from this repository's
        own profiler, not from the paper.
    accuracy:
        ``"100%"`` or ``"99%"`` (also accepts ``"100"``/``"99"``).
    with_effective_weights:
        When True, attach the Table 3 (or, for the modern networks, the
        locally measured) effective per-group weight precisions to the
        convolutional layers (used by the Table 4 experiment).
    """
    key = network.lower()
    acc = accuracy.rstrip("%")
    if acc == "100":
        table = {**PAPER_PROFILES_100, **MODERN_PROFILES_100}
    elif acc == "99":
        table = {**PAPER_PROFILES_99, **MODERN_PROFILES_99}
    else:
        raise ValueError(f"accuracy must be '100%' or '99%', got {accuracy!r}")
    if key not in table:
        raise KeyError(
            f"unknown network {network!r}; expected one of "
            f"{paper_networks() + sorted(MODERN_PROFILES_100)}"
        )
    profile = table[key]
    if with_effective_weights:
        effective = {**PAPER_EFFECTIVE_WEIGHT_PRECISIONS,
                     **MODERN_EFFECTIVE_WEIGHT_PRECISIONS}
        profile = profile.with_effective_weights(effective[key])
    return profile
