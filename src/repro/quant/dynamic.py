"""Dynamic (runtime) precision reduction model.

Loom and DStripes shorten the profile-derived activation precisions at
runtime by inspecting the values actually being processed (Lascorz et al.);
Section 4.6 applies the same idea to weights in groups of 16 (Delmas et al.,
Table 3).  Two modes are provided:

* **measured** -- given the actual integer codes of a layer's activations (or
  weights), compute the per-group precisions with
  :mod:`repro.quant.groups` and return the average serial steps per group.
  This is the real mechanism, exercised by the functional model, tests and
  examples.
* **analytical** -- a calibrated closed-form estimate used by the experiment
  harness so that the paper's tables can be regenerated deterministically
  without per-image data: the effective precision is a fixed fraction of the
  profile precision (default 0.78, consistent with the ~20-25% dynamic
  reduction reported by Dynamic Stripes / DPRed on these networks), plus the
  half-step rounding penalty for designs that process 2 or 4 bits per cycle.

EXPERIMENTS.md records how the analytical constant was chosen and how the
resulting table entries compare with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.groups import (
    ACTIVATION_GROUP_SIZE,
    WEIGHT_GROUP_SIZE,
    effective_precision,
    group_activation_precisions,
    group_weight_precisions,
)

__all__ = ["DynamicPrecisionModel"]

#: Default calibrated ratio of effective (runtime) to profile activation precision.
DEFAULT_ACTIVATION_REDUCTION = 0.78


@dataclass(frozen=True)
class DynamicPrecisionModel:
    """Estimates the effective serial cost of a precision under dynamic reduction.

    Parameters
    ----------
    enabled:
        When False, the profile precision is used unchanged (rounded up to
        the design's bits-per-cycle granularity).
    activation_reduction:
        Analytical-mode ratio of effective to profile activation precision.
    """

    enabled: bool = True
    activation_reduction: float = DEFAULT_ACTIVATION_REDUCTION

    def __post_init__(self) -> None:
        if not 0.0 < self.activation_reduction <= 1.0:
            raise ValueError(
                f"activation_reduction must be in (0, 1], got "
                f"{self.activation_reduction}"
            )

    # -- analytical mode ----------------------------------------------------------

    def effective_activation_bits(self, profile_bits: int,
                                  bits_per_cycle: int = 1) -> float:
        """Average serial cost (in bits) of activations at ``profile_bits``.

        The returned value is the expected ``bits_per_cycle * ceil(p / bits_per_cycle)``
        over groups, approximated as the reduced precision plus half a step of
        rounding loss for multi-bit-per-cycle designs, clamped to
        ``[1, profile_bits]``.
        """
        self._validate(profile_bits, bits_per_cycle)
        if not self.enabled:
            steps = -(-profile_bits // bits_per_cycle)
            return float(steps * bits_per_cycle)
        effective = self.activation_reduction * profile_bits
        if bits_per_cycle > 1:
            effective += (bits_per_cycle - 1) / 2.0
        rounded_profile = bits_per_cycle * (-(-profile_bits // bits_per_cycle))
        return float(min(max(1.0, effective), rounded_profile))

    def effective_weight_bits(self, profile_bits: float,
                              bits_per_cycle: int = 1) -> float:
        """Serial cost of weights at ``profile_bits`` (may be fractional).

        Weight bits are always processed one per cycle in Loom (the
        bits-per-cycle knob applies to activations), so this simply clamps the
        (possibly per-group average, hence fractional) precision.
        """
        if profile_bits <= 0:
            raise ValueError(f"profile_bits must be > 0, got {profile_bits}")
        return float(min(max(1.0, profile_bits), 16.0))

    # -- measured mode ------------------------------------------------------------

    def measured_activation_bits(self, activation_codes: np.ndarray,
                                 profile_bits: int,
                                 bits_per_cycle: int = 1,
                                 group_size: int = ACTIVATION_GROUP_SIZE) -> float:
        """Average serial cost measured from actual activation codes."""
        self._validate(profile_bits, bits_per_cycle)
        if not self.enabled:
            return self.effective_activation_bits(profile_bits, bits_per_cycle)
        stats = group_activation_precisions(
            activation_codes, baseline_bits=profile_bits, group_size=group_size
        )
        return effective_precision(stats, bits_per_cycle=bits_per_cycle)

    def measured_weight_bits(self, weight_codes: np.ndarray, profile_bits: int,
                             group_size: int = WEIGHT_GROUP_SIZE) -> float:
        """Average per-group weight precision measured from actual weight codes."""
        if profile_bits < 1:
            raise ValueError(f"profile_bits must be >= 1, got {profile_bits}")
        stats = group_weight_precisions(
            weight_codes, baseline_bits=profile_bits, group_size=group_size
        )
        return stats.average_bits

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _validate(profile_bits: int, bits_per_cycle: int) -> None:
        if profile_bits < 1:
            raise ValueError(f"profile_bits must be >= 1, got {profile_bits}")
        if bits_per_cycle < 1:
            raise ValueError(f"bits_per_cycle must be >= 1, got {bits_per_cycle}")
