"""Per-group dynamic precision reduction.

Loom refines the profile-derived precisions at a much finer granularity:

* **Activations** (Lascorz et al., "Dynamic Stripes"): the hardware inspects
  the group of 256 activations it is about to process concurrently, ORs their
  bit planes together and uses a leading-one detector to find the smallest
  precision that still represents every value in the group.  Execution time of
  the group then scales with that reduced precision.

* **Weights** (Section 4.6, Delmas et al., "DPRed"): the same idea applied to
  groups of 16 weights; detected statically and shipped as metadata, or at
  runtime.  Table 3 reports the resulting *average effective weight precision*
  per layer, and Table 4 the speedups it enables.

This module implements both group reductions on integer-code tensors and the
aggregation into average effective precisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.bitops import count_significant_bits

__all__ = [
    "GroupPrecisionStats",
    "group_activation_precisions",
    "group_weight_precisions",
    "effective_precision",
]

#: Number of activations Loom processes concurrently (16 lanes x 16 windows).
ACTIVATION_GROUP_SIZE = 256

#: Weight group size used by the per-group weight precision scheme (one SIP row lane).
WEIGHT_GROUP_SIZE = 16


@dataclass(frozen=True)
class GroupPrecisionStats:
    """Summary of a per-group precision reduction over one tensor.

    Attributes
    ----------
    group_size:
        Number of values per group.
    num_groups:
        Number of groups the tensor was split into.
    precisions:
        Per-group precision in bits (numpy int array of length ``num_groups``).
    baseline_bits:
        The profile-derived (or baseline) precision the groups started from.
    """

    group_size: int
    num_groups: int
    precisions: np.ndarray
    baseline_bits: int

    @property
    def average_bits(self) -> float:
        """Average effective precision across groups (what Table 3 reports)."""
        if self.num_groups == 0:
            return float(self.baseline_bits)
        return float(np.mean(self.precisions))

    @property
    def max_bits(self) -> int:
        if self.num_groups == 0:
            return self.baseline_bits
        return int(np.max(self.precisions))

    @property
    def min_bits(self) -> int:
        if self.num_groups == 0:
            return self.baseline_bits
        return int(np.min(self.precisions))

    @property
    def reduction(self) -> float:
        """Fraction of bits saved relative to the baseline precision."""
        if self.baseline_bits == 0:
            return 0.0
        return 1.0 - self.average_bits / self.baseline_bits


def _group_precisions(
    codes: np.ndarray,
    group_size: int,
    baseline_bits: int,
    signed: bool,
    pad_value: int = 0,
) -> GroupPrecisionStats:
    """Split ``codes`` into contiguous groups and compute each group's precision."""
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if baseline_bits < 1:
        raise ValueError(f"baseline_bits must be >= 1, got {baseline_bits}")
    flat = np.asarray(codes).ravel()
    if flat.size == 0:
        return GroupPrecisionStats(
            group_size=group_size,
            num_groups=0,
            precisions=np.zeros(0, dtype=np.int64),
            baseline_bits=baseline_bits,
        )
    pad = (-flat.size) % group_size
    if pad:
        flat = np.concatenate([flat, np.full(pad, pad_value, dtype=flat.dtype)])
    groups = flat.reshape(-1, group_size)
    per_value = count_significant_bits(groups, signed=signed)
    per_group = per_value.max(axis=1)
    # The hardware can never exceed the precision the data was stored at.
    per_group = np.minimum(per_group, baseline_bits)
    return GroupPrecisionStats(
        group_size=group_size,
        num_groups=groups.shape[0],
        precisions=per_group.astype(np.int64),
        baseline_bits=baseline_bits,
    )


def group_activation_precisions(
    activation_codes: np.ndarray,
    baseline_bits: int,
    group_size: int = ACTIVATION_GROUP_SIZE,
    signed: bool = False,
) -> GroupPrecisionStats:
    """Dynamic per-group activation precisions (Dynamic Stripes / DStripes).

    Parameters
    ----------
    activation_codes:
        Integer activation codes in processing order.  Post-ReLU activations
        are unsigned.
    baseline_bits:
        The profile-derived per-layer precision the group precisions are
        clamped to (the hardware never transmits more bits than the profile).
    group_size:
        Number of concurrently-processed activations per group (256 in the
        paper's configuration).
    """
    return _group_precisions(activation_codes, group_size, baseline_bits, signed)


def group_weight_precisions(
    weight_codes: np.ndarray,
    baseline_bits: int,
    group_size: int = WEIGHT_GROUP_SIZE,
    signed: bool = True,
) -> GroupPrecisionStats:
    """Per-group (16-weight) effective weight precisions (Section 4.6 / Table 3)."""
    return _group_precisions(weight_codes, group_size, baseline_bits, signed)


def effective_precision(
    stats: GroupPrecisionStats,
    bits_per_cycle: int = 1,
) -> float:
    """Average number of serial steps a group costs, for a ``bits_per_cycle`` design.

    LM2b and LM4b process 2 and 4 bits per cycle, so a group of precision ``p``
    costs ``ceil(p / bits_per_cycle)`` steps; this returns the average cost in
    *equivalent bits* (steps x bits_per_cycle), which is what the performance
    model divides by.
    """
    if bits_per_cycle < 1:
        raise ValueError(f"bits_per_cycle must be >= 1, got {bits_per_cycle}")
    if stats.num_groups == 0:
        steps = -(-stats.baseline_bits // bits_per_cycle)
        return float(steps * bits_per_cycle)
    steps = np.ceil(stats.precisions / bits_per_cycle)
    return float(np.mean(steps) * bits_per_cycle)
