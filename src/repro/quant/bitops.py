"""Bit-serial decomposition and bit-interleaved packing.

Loom processes activations and weights one bit (or two/four bits) at a time.
This module implements the bit-level plumbing that the functional Loom model
and the memory-layout model rely on:

* :func:`bit_decompose` / :func:`bit_compose` -- split integer codes into bit
  planes and reassemble them.  Signed values use a two's-complement
  decomposition where the most significant plane carries negative weight,
  exactly what the SIP negation block implements.
* :func:`bit_serial_dot` -- a reference bit-serial inner product that mirrors
  the SIP datapath (AND gates, adder tree, AC1 shift-accumulate over
  activation bits, AC2 shift-accumulate over weight bits).  It is used to
  verify the cycle-level SIP model against plain integer arithmetic.
* :func:`pack_bit_interleaved` / :func:`unpack_bit_interleaved` -- the
  bit-interleaved memory layout of Section 3.2 ("given 2K 13b weights ...
  pack first their bit 0 onto continuous rows, then their bit 1, ...").
* :func:`count_significant_bits` -- per-element precision requirement, the
  primitive behind dynamic precision reduction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "bit_decompose",
    "bit_compose",
    "bit_serial_dot",
    "pack_bit_interleaved",
    "unpack_bit_interleaved",
    "count_significant_bits",
]


def _as_int_array(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"expected integer codes, got dtype {arr.dtype}")
    return arr.astype(np.int64)


def bit_decompose(codes: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """Decompose integer codes into ``bits`` bit planes.

    The result has shape ``(bits,) + codes.shape`` where plane ``i`` holds bit
    ``i`` (LSB first).  For signed inputs the values are first mapped to their
    ``bits``-wide two's-complement encoding, so plane ``bits - 1`` is the sign
    plane.

    Raises
    ------
    ValueError
        If any code does not fit in ``bits`` bits.
    """
    codes = _as_int_array(codes)
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if codes.size and (codes.min() < lo or codes.max() > hi):
        raise ValueError(
            f"codes out of range for {bits}-bit {'signed' if signed else 'unsigned'} "
            f"decomposition: [{codes.min()}, {codes.max()}] not within [{lo}, {hi}]"
        )
    encoded = np.where(codes < 0, codes + (1 << bits), codes).astype(np.uint64)
    planes = np.empty((bits,) + codes.shape, dtype=np.int64)
    for i in range(bits):
        planes[i] = (encoded >> np.uint64(i)) & np.uint64(1)
    return planes


def bit_compose(planes: np.ndarray, signed: bool = True) -> np.ndarray:
    """Reassemble integer codes from bit planes produced by :func:`bit_decompose`."""
    planes = np.asarray(planes, dtype=np.int64)
    if planes.ndim < 1:
        raise ValueError("planes must have at least one dimension (the bit axis)")
    bits = planes.shape[0]
    weights = np.array([1 << i for i in range(bits)], dtype=np.int64)
    if signed and bits > 0:
        weights[-1] = -(1 << (bits - 1))
    shape = (bits,) + (1,) * (planes.ndim - 1)
    return np.sum(planes * weights.reshape(shape), axis=0)


def bit_serial_dot(
    activations: np.ndarray,
    weights: np.ndarray,
    act_bits: int,
    weight_bits: int,
    act_signed: bool = False,
    weight_signed: bool = True,
) -> Tuple[int, int]:
    """Reference bit-serial inner product mirroring the SIP datapath.

    The computation follows the Loom schedule for a single SIP: the same
    weight bit plane is held in the weight registers for ``act_bits`` cycles
    while successive activation bit planes stream through; the adder tree
    output is shift-accumulated over activation bits (AC1) and then the AC1
    result is shift-accumulated over weight bits into the output register
    (AC2).  Sign planes contribute negatively, which is what the SIP negation
    block implements for the weight MSB.

    Parameters
    ----------
    activations, weights:
        One-dimensional integer code arrays of equal length.
    act_bits, weight_bits:
        Precisions used for the serial decomposition.
    act_signed, weight_signed:
        Signedness of each operand.

    Returns
    -------
    (result, cycles):
        ``result`` is the integer inner product and ``cycles`` the number of
        bit-serial cycles consumed (``act_bits * weight_bits``).
    """
    activations = _as_int_array(activations)
    weights = _as_int_array(weights)
    if activations.shape != weights.shape or activations.ndim != 1:
        raise ValueError(
            f"activations and weights must be 1-D arrays of equal length, "
            f"got shapes {activations.shape} and {weights.shape}"
        )
    a_planes = bit_decompose(activations, act_bits, signed=act_signed)
    w_planes = bit_decompose(weights, weight_bits, signed=weight_signed)

    total = 0
    cycles = 0
    for wi in range(weight_bits):
        w_plane = w_planes[wi]
        w_sign = -1 if (weight_signed and wi == weight_bits - 1) else 1
        ac1 = 0
        for ai in range(act_bits):
            a_plane = a_planes[ai]
            a_sign = -1 if (act_signed and ai == act_bits - 1) else 1
            # 16 AND gates + adder tree in the SIP; here vectorised.
            partial = int(np.sum(a_plane & w_plane))
            ac1 += a_sign * partial * (1 << ai)
            cycles += 1
        total += w_sign * ac1 * (1 << wi)
    return total, cycles


def pack_bit_interleaved(codes: np.ndarray, bits: int, row_width: int,
                         signed: bool = True) -> np.ndarray:
    """Pack integer codes into the bit-interleaved row layout used by Loom.

    The paper stores a group of values "bit 0 onto continuous rows, then bit 1,
    and so on": for ``n`` values and a memory row of ``row_width`` bits, bit
    plane 0 of all values occupies the first ``ceil(n / row_width)`` rows, bit
    plane 1 the next, etc.  Only ``bits`` planes are stored, which is where the
    footprint reduction of ``(16 - P) / 16`` comes from.

    Returns
    -------
    np.ndarray
        Array of shape ``(bits * rows_per_plane, row_width)`` with 0/1 entries.
        Padding positions are zero.
    """
    codes = _as_int_array(codes).ravel()
    if row_width < 1:
        raise ValueError(f"row_width must be >= 1, got {row_width}")
    planes = bit_decompose(codes, bits, signed=signed)
    n = codes.size
    rows_per_plane = max(1, -(-n // row_width))
    padded = np.zeros((bits, rows_per_plane * row_width), dtype=np.int64)
    padded[:, :n] = planes
    return padded.reshape(bits * rows_per_plane, row_width)


def unpack_bit_interleaved(rows: np.ndarray, bits: int, count: int,
                           signed: bool = True) -> np.ndarray:
    """Inverse of :func:`pack_bit_interleaved` (the transposer's job on reads)."""
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    total_rows, row_width = rows.shape
    if bits < 1 or total_rows % bits:
        raise ValueError(
            f"row count {total_rows} is not a multiple of bits={bits}"
        )
    rows_per_plane = total_rows // bits
    planes = rows.reshape(bits, rows_per_plane * row_width)[:, :count]
    return bit_compose(planes, signed=signed)


def count_significant_bits(codes: np.ndarray, signed: bool = False) -> np.ndarray:
    """Per-element number of significant bits.

    For unsigned codes this is the index of the leading one plus one (zero
    values need 1 bit).  For signed codes the magnitude plus a sign bit is
    counted.  This is the primitive used by the per-group dynamic precision
    logic (an OR tree across the group followed by a leading-one detector).
    """
    codes = _as_int_array(codes)
    flat = codes.ravel()
    if signed:
        # Two's-complement magnitude: -v needs as many bits as (-v - 1),
        # plus the sign bit; non-negative v needs bit_length(v) + 1.
        magnitude = np.where(flat >= 0, flat, -flat - 1)
    else:
        if flat.size and int(flat.min()) < 0:
            raise ValueError("negative code in unsigned count_significant_bits")
        magnitude = flat
    # The exponent frexp reports for a positive integer is its bit length
    # (and 0 for zero) -- except that the float64 conversion can round a
    # value just below a power of two up to it (first possible at 2**53),
    # overestimating by one.  It can never underestimate, so one downward
    # correction step keeps the result exact for the full int64 range.
    bit_length = np.frexp(magnitude.astype(np.float64))[1].astype(np.int64)
    positive = bit_length > 0
    overshoot = np.zeros(bit_length.shape, dtype=np.int64)
    overshoot[positive] = (
        magnitude[positive] >> (bit_length[positive] - 1)
    ) == 0
    bit_length -= overshoot
    out = np.maximum(1, bit_length + 1 if signed else bit_length)
    return out.reshape(codes.shape)
