"""Profile-derived per-layer precision selection.

The precisions in Table 1 come from the methodology of Judd et al. ("Reduced
precision strategies for bounded memory in deep neural nets"): starting from
the 16-bit baseline, each layer's activation (and weight) precision is lowered
as far as possible while the network's top-1 accuracy on a profiling set stays
above a target (100% or 99% of the full-precision accuracy).

We do not have ImageNet or the pretrained models, so the profiler here is
written against an abstract *evaluation function*: any callable that maps a
per-layer precision assignment to a score in ``[0, 1]``.  Two evaluation
functions are provided out of the box:

* :func:`fidelity_evaluator` -- runs the reference NumPy forward pass of a
  (synthetic-weight) network at the candidate precisions and scores how often
  the arg-max of the quantised output matches the full-precision output, i.e.
  a top-1 agreement rate.  This is the same measurement the paper uses, with a
  synthetic data distribution standing in for ImageNet (see DESIGN.md).
* Any user-supplied callable, for experimentation.

The search itself is the standard per-layer descent: precisions are lowered
one layer at a time (most-benefit-first) and a candidate is kept whenever the
score stays above the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.quant.fixedpoint import BASELINE_PRECISION
from repro.quant.precision import LayerPrecision, NetworkPrecisionProfile

__all__ = ["ProfiledPrecision", "PrecisionProfiler", "fidelity_evaluator"]

#: Signature of an evaluation function: maps {layer_name: (act_bits, weight_bits)}
#: to a score in [0, 1].
Evaluator = Callable[[Mapping[str, Tuple[int, int]]], float]


@dataclass
class ProfiledPrecision:
    """Result of a precision search for one layer."""

    layer_name: str
    activation_bits: int
    weight_bits: int
    is_conv: bool

    def as_layer_precision(self) -> LayerPrecision:
        return LayerPrecision(
            activation_bits=self.activation_bits, weight_bits=self.weight_bits
        )


@dataclass
class PrecisionProfiler:
    """Greedy per-layer precision search.

    Parameters
    ----------
    evaluator:
        Callable scoring a precision assignment; higher is better, 1.0 means
        "identical to full precision".
    target_score:
        Minimum acceptable score (1.0 for the 100% profile, 0.99 for the 99%
        profile).
    min_bits / max_bits:
        Search bounds; the paper's hardware supports 1..16 bits.
    search_weights:
        Whether weight precisions are searched too (the paper searches weight
        precisions network-wide for CVLs and per-layer for FCLs; here we
        search per layer and callers may post-process to a network-wide
        maximum, which :meth:`profile_network` does for CVLs).
    """

    evaluator: Evaluator
    target_score: float = 1.0
    min_bits: int = 1
    max_bits: int = BASELINE_PRECISION
    search_weights: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.target_score <= 1.0:
            raise ValueError(
                f"target_score must be in (0, 1], got {self.target_score}"
            )
        if not 1 <= self.min_bits <= self.max_bits <= BASELINE_PRECISION:
            raise ValueError(
                f"invalid bit bounds [{self.min_bits}, {self.max_bits}]"
            )

    # -- single-dimension search ------------------------------------------------

    def _lowest_acceptable(
        self,
        assignment: Dict[str, Tuple[int, int]],
        layer: str,
        dimension: int,
    ) -> int:
        """Binary-search the smallest precision for ``layer``'s ``dimension``.

        ``dimension`` is 0 for activations, 1 for weights.  Monotonicity of
        score in precision is assumed (as in the original methodology); the
        returned precision is the smallest one whose score meets the target
        with every other layer held at its current assignment.
        """
        current = list(assignment[layer])
        lo, hi = self.min_bits, current[dimension]
        best = current[dimension]
        while lo <= hi:
            mid = (lo + hi) // 2
            trial = dict(assignment)
            candidate = list(current)
            candidate[dimension] = mid
            trial[layer] = (candidate[0], candidate[1])
            score = self.evaluator(trial)
            if score >= self.target_score:
                best = mid
                hi = mid - 1
            else:
                lo = mid + 1
        return best

    # -- public API --------------------------------------------------------------

    def profile_layers(
        self,
        layer_names: Sequence[str],
        conv_flags: Sequence[bool],
    ) -> List[ProfiledPrecision]:
        """Search per-layer precisions for the given layers.

        Parameters
        ----------
        layer_names:
            Names of the layers, in network order.
        conv_flags:
            For each layer, True if it is convolutional (both activation and
            weight precision matter for Loom), False if fully connected (only
            weight precision matters for performance, but activations are
            still profiled because they determine memory traffic).
        """
        if len(layer_names) != len(conv_flags):
            raise ValueError("layer_names and conv_flags must have equal length")
        assignment: Dict[str, Tuple[int, int]] = {
            name: (self.max_bits, self.max_bits) for name in layer_names
        }
        results: List[ProfiledPrecision] = []
        # Activations first (the original methodology profiles activations and
        # weights separately), then weights, each layer independently with all
        # other layers at their already-chosen precisions.
        for name in layer_names:
            act_bits = self._lowest_acceptable(assignment, name, dimension=0)
            assignment[name] = (act_bits, assignment[name][1])
        if self.search_weights:
            for name in layer_names:
                w_bits = self._lowest_acceptable(assignment, name, dimension=1)
                assignment[name] = (assignment[name][0], w_bits)
        for name, is_conv in zip(layer_names, conv_flags):
            act_bits, w_bits = assignment[name]
            results.append(
                ProfiledPrecision(
                    layer_name=name,
                    activation_bits=act_bits,
                    weight_bits=w_bits,
                    is_conv=is_conv,
                )
            )
        return results

    def profile_network(
        self,
        network_name: str,
        layer_names: Sequence[str],
        conv_flags: Sequence[bool],
        accuracy_label: Optional[str] = None,
        uniform_conv_weight: bool = True,
    ) -> NetworkPrecisionProfile:
        """Produce a :class:`NetworkPrecisionProfile` in the paper's format.

        When ``uniform_conv_weight`` is True the convolutional weight
        precision is collapsed to the network-wide maximum, matching the
        paper's choice of "a common across all CVLs weight precision".
        """
        per_layer = self.profile_layers(layer_names, conv_flags)
        conv = [p for p in per_layer if p.is_conv]
        fc = [p for p in per_layer if not p.is_conv]
        conv_weight = max((p.weight_bits for p in conv), default=self.max_bits)
        conv_precisions = [
            LayerPrecision(
                activation_bits=p.activation_bits,
                weight_bits=conv_weight if uniform_conv_weight else p.weight_bits,
            )
            for p in conv
        ]
        fc_precisions = [
            LayerPrecision(
                activation_bits=BASELINE_PRECISION, weight_bits=p.weight_bits
            )
            for p in fc
        ]
        label = accuracy_label or f"{self.target_score:.0%}"
        return NetworkPrecisionProfile(
            network=network_name,
            accuracy_target=label,
            conv_layers=conv_precisions,
            fc_layers=fc_precisions,
        )


def fidelity_evaluator(
    forward: Callable[[Mapping[str, Tuple[int, int]]], np.ndarray],
    reference_output: np.ndarray,
) -> Evaluator:
    """Build an evaluator that scores top-1 agreement with a reference output.

    Parameters
    ----------
    forward:
        Callable that runs the network forward pass at the candidate per-layer
        precisions and returns the output logits with shape
        ``(batch, classes)``.
    reference_output:
        Full-precision logits with the same shape; the score is the fraction
        of samples whose arg-max class matches.
    """
    reference_output = np.asarray(reference_output)
    if reference_output.ndim != 2:
        raise ValueError(
            f"reference_output must be 2-D (batch, classes), got shape "
            f"{reference_output.shape}"
        )
    reference_top1 = np.argmax(reference_output, axis=1)

    def evaluate(assignment: Mapping[str, Tuple[int, int]]) -> float:
        logits = np.asarray(forward(assignment))
        if logits.shape != reference_output.shape:
            raise ValueError(
                f"forward() returned shape {logits.shape}, expected "
                f"{reference_output.shape}"
            )
        top1 = np.argmax(logits, axis=1)
        return float(np.mean(top1 == reference_top1))

    return evaluate
