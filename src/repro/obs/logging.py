"""Structured JSON-lines logging with trace correlation (stdlib only).

Every log record is an *event* plus key=value fields, stamped with the
current trace/span ids from :mod:`repro.obs.trace` -- so a grep for one
``trace_id`` pulls the coordinator's routing decision, the worker's
execution and the client's retry out of three different log streams.

Two render modes share one record shape:

* **human** (default): ``HH:MM:SS level logger event key=value ...`` on
  stderr -- what an operator watches in a terminal;
* **json** (``--log-json``): one JSON object per line with ``ts`` /
  ``level`` / ``logger`` / ``event`` / ``trace_id`` / ``span_id`` plus the
  event fields -- what a collector ingests.

:func:`configure_logging` sets the process-wide level/mode once (the CLI
calls it from ``--log-level`` / ``--log-json``); :func:`get_logger` hands
out named loggers that all write through that configuration.  Writes are
serialised by a lock so interleaved threads never shear a line.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, Optional, TextIO

from repro.obs.trace import get_tracer

__all__ = ["LEVELS", "StructuredLogger", "configure_logging", "get_logger"]

#: Severity order; ``configure_logging(level=...)`` filters below the bar.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_INDEX = {name: index for index, name in enumerate(LEVELS)}


class _LogConfig:
    """Process-wide sink configuration shared by every logger."""

    def __init__(self) -> None:
        self.level_index = _LEVEL_INDEX["info"]
        self.json_output = False
        self.stream: Optional[TextIO] = None  # None -> sys.stderr at write
        self.lock = threading.Lock()


_config = _LogConfig()
_loggers: Dict[str, "StructuredLogger"] = {}
_loggers_lock = threading.Lock()


def configure_logging(level: str = "info", json_output: bool = False,
                      stream: Optional[TextIO] = None) -> None:
    """Set the process-wide log level, render mode, and sink.

    ``stream=None`` means "whatever ``sys.stderr`` is at write time" --
    important under pytest's capture, which swaps stderr per test.
    """
    if level not in _LEVEL_INDEX:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LEVELS}")
    _config.level_index = _LEVEL_INDEX[level]
    _config.json_output = json_output
    _config.stream = stream


def get_logger(name: str) -> "StructuredLogger":
    """A named logger (one instance per name, process-wide)."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructuredLogger(name)
            _loggers[name] = logger
        return logger


class StructuredLogger:
    """Emits level-filtered, trace-correlated records for one component."""

    def __init__(self, name: str) -> None:
        self.name = name

    # -- level methods --------------------------------------------------------

    def debug(self, event: str, **fields: object) -> None:
        self._log("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log("error", event, fields)

    def is_enabled(self, level: str) -> bool:
        return _LEVEL_INDEX[level] >= _config.level_index

    # -- record assembly ------------------------------------------------------

    def _log(self, level: str, event: str, fields: Dict[str, object]) -> None:
        if _LEVEL_INDEX[level] < _config.level_index:
            return
        now = time.time()
        context = get_tracer().current_context()
        if _config.json_output:
            record: Dict[str, object] = {
                "ts": round(now, 6),
                "level": level,
                "logger": self.name,
                "event": event,
            }
            if context is not None:
                record["trace_id"] = context.trace_id
                record["span_id"] = context.span_id
            for key, value in fields.items():
                if key not in record:
                    record[key] = _jsonable(value)
            line = json.dumps(record, sort_keys=False,
                              separators=(",", ":"))
        else:
            clock = time.strftime("%H:%M:%S", time.localtime(now))
            parts = [clock, level.upper().ljust(7), self.name, event]
            for key, value in fields.items():
                parts.append(f"{key}={_human(value)}")
            if context is not None:
                parts.append(f"trace={context.trace_id[:8]}")
            line = " ".join(parts)
        with _config.lock:
            stream = _config.stream if _config.stream is not None \
                else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:
                # The sink was closed under us (interpreter teardown, pytest
                # capture churn); losing a log line beats crashing the caller.
                pass


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


def _human(value: object) -> str:
    text = str(value)
    if " " in text or text == "":
        return json.dumps(text)
    return text
