"""Request-scoped tracing: spans, context propagation, Chrome export.

One trace follows one piece of work -- a CLI invocation, an HTTP request, a
sweep -- across every process it touches.  The pieces:

* :class:`SpanContext` -- the (trace_id, span_id) pair that travels.  On
  the wire it is a W3C-``traceparent``-style header
  (``00-<32 hex>-<16 hex>-01``); :func:`parse_traceparent` /
  :meth:`SpanContext.to_traceparent` convert.
* :class:`Span` -- one named, timed operation with attributes and a parent
  link.  Spans from different processes join into one trace purely through
  shared ``trace_id``/``parent_id`` values.
* :class:`Tracer` -- hands out spans via the ``span("name", **attrs)``
  context manager.  The active context lives in a
  :class:`contextvars.ContextVar`, so nesting works identically on
  threads and asyncio tasks, and ``asyncio.run_coroutine_threadsafe`` /
  ``loop.call_soon_threadsafe`` carry it across loop boundaries for free.
  Thread pools do **not** inherit context; wrap the callable with
  :meth:`Tracer.propagate` (the cluster worker does this for its executor
  pool).
* :class:`SpanRecorder` -- a bounded ring buffer of finished spans.  Every
  node exposes its recorder on ``GET /trace``; :func:`chrome_trace` turns
  any span collection into Chrome trace-event JSON (load it in
  ``chrome://tracing`` or Perfetto).

The process-wide default tracer (:func:`get_tracer`) is **enabled** with a
ring recorder: span creation is a few dict operations on request-scoped
paths only, and ``benchmarks/bench_simulator.py`` gates the overhead so it
stays negligible.  ``Tracer.set_enabled(False)`` turns ``span()`` into a
no-op for benchmarking the floor.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Tracer",
    "chrome_trace",
    "get_tracer",
    "parse_traceparent",
    "set_tracer",
]

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of the active span."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        """Render as a ``traceparent`` header value (sampled flag set)."""
        return f"00-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(header: Optional[str]) -> Optional[SpanContext]:
    """Parse a ``traceparent`` header; ``None`` on absent/malformed input.

    Malformed headers are dropped rather than raised: a trace is telemetry,
    and a bad header from an old client must never fail its request.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.group(1), match.group(2)
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One finished (or finishing) named operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_s: float  # Unix epoch seconds
    duration_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"  # "ok" or "error"
    service: str = "loom"
    thread: str = ""

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attr(self, name: str, value: object) -> None:
        self.attrs[name] = value

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (the ``GET /trace`` wire format)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "status": self.status,
            "service": self.service,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=(str(payload["parent_id"])
                       if payload.get("parent_id") else None),
            start_s=float(payload["start_s"]),
            duration_s=float(payload.get("duration_s", 0.0)),
            attrs=dict(payload.get("attrs") or {}),
            status=str(payload.get("status", "ok")),
            service=str(payload.get("service", "loom")),
            thread=str(payload.get("thread", "")),
        )


class SpanRecorder:
    """Bounded ring buffer of finished spans (oldest evicted first)."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Hands out spans; tracks the active context per thread/task.

    ``span("name", **attrs)`` opens a child of the current context (or a
    fresh trace root when there is none) and restores the previous context
    on exit.  ``remote_parent(header)`` activates a context received over
    the wire, so server-side spans link into the caller's trace.
    """

    def __init__(self, service: str = "loom",
                 recorder: Optional[SpanRecorder] = None,
                 enabled: bool = True) -> None:
        self.service = service
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self._enabled = enabled
        self._current: "contextvars.ContextVar[Optional[SpanContext]]" = \
            contextvars.ContextVar(f"loom-trace-{id(self)}", default=None)

    # -- switches -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = enabled

    # -- context --------------------------------------------------------------

    def current_context(self) -> Optional[SpanContext]:
        return self._current.get()

    def current_traceparent(self) -> Optional[str]:
        """The header value to propagate, or ``None`` outside any span."""
        context = self._current.get()
        return context.to_traceparent() if context is not None else None

    def inject_headers(self, headers: Dict[str, str]) -> Dict[str, str]:
        """Add ``traceparent`` to ``headers`` (in place) when active.

        A caller-supplied ``traceparent`` is left alone -- explicit beats
        ambient.
        """
        if self._enabled and "traceparent" not in {
                name.lower() for name in headers}:
            value = self.current_traceparent()
            if value is not None:
                headers["traceparent"] = value
        return headers

    @contextlib.contextmanager
    def remote_parent(self, header_or_context):
        """Activate a remote caller's context as the current parent.

        Accepts a ``traceparent`` header string, a :class:`SpanContext`, or
        ``None``/malformed input (a no-op, so handlers can call this
        unconditionally).
        """
        context = (header_or_context
                   if isinstance(header_or_context, SpanContext)
                   else parse_traceparent(header_or_context))
        if context is None or not self._enabled:
            yield None
            return
        token = self._current.set(context)
        try:
            yield context
        finally:
            self._current.reset(token)

    def propagate(self, fn):
        """Bind ``fn`` to a snapshot of the current context.

        Thread pools and ``threading.Thread`` targets do not inherit
        contextvars; wrap the callable so spans opened inside still link to
        the caller's trace.
        """
        snapshot = contextvars.copy_context()
        return lambda *args, **kwargs: snapshot.run(fn, *args, **kwargs)

    # -- spans ----------------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, **attrs: object):
        """Open a span named ``name``; yields the live :class:`Span`.

        Yields ``None`` when tracing is disabled (callers must tolerate
        it).  An exception escaping the block marks the span
        ``status="error"`` (and re-raises); the span is recorded either
        way.
        """
        if not self._enabled:
            yield None
            return
        parent = self._current.get()
        context = SpanContext(
            trace_id=parent.trace_id if parent is not None
            else _new_trace_id(),
            span_id=_new_span_id(),
        )
        span = Span(
            name=name,
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=parent.span_id if parent is not None else None,
            start_s=time.time(),
            attrs=dict(attrs),
            service=self.service,
            thread=threading.current_thread().name,
        )
        token = self._current.set(context)
        started = time.perf_counter()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.duration_s = time.perf_counter() - started
            self._current.reset(token)
            self.recorder.record(span)


def chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Chrome trace-event JSON for ``spans`` (one complete 'X' event each).

    Spans from different services map to different ``pid`` rows (with
    ``process_name`` metadata), threads within a service to ``tid`` rows --
    so a merged multi-process trace renders as one timeline per node.
    """
    events: List[Dict[str, object]] = []
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    for span in spans:
        pid = pids.setdefault(span.service, len(pids) + 1)
        tid = tids.setdefault(f"{span.service}/{span.thread}",
                              len(tids) + 1)
        args: Dict[str, object] = dict(span.attrs)
        args.update({"trace_id": span.trace_id, "span_id": span.span_id,
                     "status": span.status})
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": "loom",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for service, pid in pids.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": service}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- process-wide default tracer -----------------------------------------------

_tracer_lock = threading.Lock()
_tracer: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-wide tracer every tier records into by default."""
    global _tracer
    with _tracer_lock:
        if _tracer is None:
            _tracer = Tracer(service="loom")
        return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process default; returns the previous one.

    The CLI uses this to name the service per role (``cli``, ``serve``,
    ``worker-<port>``...), which is what keeps merged Chrome traces
    readable.
    """
    global _tracer
    with _tracer_lock:
        previous = _tracer
        _tracer = tracer
        return previous
