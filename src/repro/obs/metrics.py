"""Prometheus-text-format metrics for every tier (stdlib only).

Each node that speaks HTTP -- the single-box serve service, the cluster
coordinator and the workers -- exposes ``GET /metrics`` in the Prometheus
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_, so a
stock Prometheus scrape -- or ``curl`` -- can watch request rates,
latencies, queue depth, cache efficiency and shard health without any new
dependencies.  (This module started life as ``repro.cluster.metrics``;
that import path remains as a back-compat re-export.)  Three instrument
types cover the stack's needs:

* :class:`Counter` -- monotonically increasing totals, optionally with
  labels (``loom_requests_total{path="/jobs",status="200"}``);
* :class:`Gauge` -- point-in-time values.  A gauge may be *callback-backed*
  (``registry.gauge(..., collect=fn)``): the value is pulled at render
  time, which is how executor/cache statistics surface without having to
  thread increments through the hot path;
* :class:`Histogram` -- cumulative-bucket latency distributions with
  ``_bucket``/``_sum``/``_count`` series.

All instruments are thread-safe (worker cores run request handlers on
threads) and render deterministically (sorted label sets).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS", "PEER_LATENCY_BUCKETS"]

#: Request-latency buckets (seconds): sub-ms store hits up to minute-long
#: cold sweeps.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0,
                           120.0)

#: Peer-cache fetch buckets (seconds): a peer lookup is one localhost (or
#: rack-local) store read, budgeted well under a second -- the interesting
#: resolution is all sub-second.
PEER_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                        0.5, 1.0)


def _format_value(value: float) -> str:
    """Prometheus-friendly number rendering (integers without '.0')."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(name, str(value).replace("\\", r"\\")
                         .replace('"', r"\"").replace("\n", r"\n"))
        for name, value in labels
    )
    return "{" + body + "}"


class _Instrument:
    """Shared name/help/type plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _labels_tuple(self, labelvalues: Dict[str, object]
                      ) -> Tuple[Tuple[str, str], ...]:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        return tuple((name, str(labelvalues[name]))
                     for name in self.labelnames)

    def header(self) -> List[str]:
        return [f"# HELP {self.name} {self.help_text}",
                f"# TYPE {self.name} {self.kind}"]


class Counter(_Instrument):
    """Monotonic total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labelvalues: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._labels_tuple(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labelvalues: object) -> float:
        key = self._labels_tuple(labelvalues)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            series = sorted(self._values.items())
        if not series and not self.labelnames:
            series = [((), 0.0)]
        for labels, value in series:
            lines.append(f"{self.name}{_render_labels(labels)} "
                         f"{_format_value(value)}")
        return lines


class Gauge(_Instrument):
    """Point-in-time value; optionally pulled from a callback at render."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 collect: Optional[Callable[[], float]] = None) -> None:
        if collect is not None and labelnames:
            raise ValueError("callback gauges cannot be labelled")
        super().__init__(name, help_text, labelnames)
        self._collect = collect
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def set(self, value: float, **labelvalues: object) -> None:
        if self._collect is not None:
            raise ValueError(f"{self.name} is callback-backed; it cannot "
                             f"be set directly")
        key = self._labels_tuple(labelvalues)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labelvalues: object) -> float:
        if self._collect is not None:
            return float(self._collect())
        key = self._labels_tuple(labelvalues)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        if self._collect is not None:
            # A collect callback that raises must not take /metrics down
            # with it: report NaN for this series and keep the scrape alive.
            try:
                value = float(self._collect())
            except Exception:
                value = float("nan")
            lines.append(f"{self.name} {_format_value(value)}"
                         if value == value else f"{self.name} NaN")
            return lines
        with self._lock:
            series = sorted(self._values.items())
        if not series and not self.labelnames:
            series = [((), 0.0)]
        for labels, value in series:
            lines.append(f"{self.name}{_render_labels(labels)} "
                         f"{_format_value(value)}")
        return lines


class Histogram(_Instrument):
    """Cumulative-bucket distribution (the Prometheus histogram type)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
        self._totals: Dict[Tuple[Tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labelvalues: object) -> None:
        key = self._labels_tuple(labelvalues)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labelvalues: object) -> int:
        key = self._labels_tuple(labelvalues)
        with self._lock:
            return self._totals.get(key, 0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            keys = sorted(self._counts)
            if not keys and not self.labelnames:
                keys = [()]
                self._counts[()] = [0] * len(self.buckets)
                self._sums[()] = 0.0
                self._totals[()] = 0
            for key in keys:
                counts = self._counts[key]
                for bound, count in zip(self.buckets, counts):
                    labels = key + (("le", _format_value(bound)),)
                    lines.append(f"{self.name}_bucket{_render_labels(labels)} "
                                 f"{count}")
                labels = key + (("le", "+Inf"),)
                lines.append(f"{self.name}_bucket{_render_labels(labels)} "
                             f"{self._totals[key]}")
                lines.append(f"{self.name}_sum{_render_labels(key)} "
                             f"{_format_value(self._sums[key])}")
                lines.append(f"{self.name}_count{_render_labels(key)} "
                             f"{self._totals[key]}")
        return lines


class MetricsRegistry:
    """One node's instruments, rendered as a single /metrics page."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            if instrument.name in self._instruments:
                raise ValueError(
                    f"metric {instrument.name!r} is already registered")
            self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = (),
              collect: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames,
                                    collect=collect))

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  labelnames: Sequence[str] = ()) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, labelnames))

    def render(self) -> str:
        """The /metrics page: every instrument, names sorted, newline-ended."""
        with self._lock:
            instruments = [self._instruments[name]
                           for name in sorted(self._instruments)]
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"
