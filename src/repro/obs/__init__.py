"""Observability layer shared by every tier (stdlib only).

``repro.obs`` is the substrate the CLI, the single-box serve service, the
cluster nodes and the job executor all report through:

* :mod:`repro.obs.trace` -- a thread- and asyncio-safe :class:`Tracer`
  with ``span()`` context managers, W3C-``traceparent``-style context
  propagation over HTTP, a ring-buffer :class:`SpanRecorder` and Chrome
  trace-event JSON export (``loom-repro trace dump`` /
  ``--trace-out FILE``);
* :mod:`repro.obs.metrics` -- the Prometheus-text-format instruments
  (promoted from ``repro.cluster.metrics``; that import path remains as a
  back-compat re-export);
* :mod:`repro.obs.logging` -- a JSON-lines structured logger whose records
  carry the current trace/span ids, behind the CLI's ``--log-level`` /
  ``--log-json`` flags.

Everything here is dependency-free and cheap enough to stay on by default;
the tracing-overhead guard in ``benchmarks/bench_simulator.py`` enforces
that staying true.
"""

from repro.obs.logging import (
    LEVELS,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PEER_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    SpanRecorder,
    Tracer,
    chrome_trace,
    get_tracer,
    parse_traceparent,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "LEVELS",
    "PEER_LATENCY_BUCKETS",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "StructuredLogger",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "get_logger",
    "get_tracer",
    "parse_traceparent",
    "set_tracer",
]
