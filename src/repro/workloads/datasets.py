"""Synthetic input images and tiny classification datasets.

Stand-ins for the ImageNet profiling images: natural-image-like tensors
(smooth low-frequency content plus texture noise, centred the way Caffe
preprocessing centres its inputs) used by the examples and by the precision
profiler tests.  Loom's results do not depend on image *content* -- only on
the value distributions the images induce -- so these synthetic inputs
exercise the full pipeline.
"""

from __future__ import annotations


import numpy as np

from repro.nn.layers import TensorShape

__all__ = ["synthetic_image", "synthetic_image_batch"]


def synthetic_image(shape: TensorShape, seed: int = 0,
                    smooth_scale: float = 40.0,
                    noise_scale: float = 12.0) -> np.ndarray:
    """Generate one natural-image-like input tensor.

    The image is a sum of a smooth low-frequency field (object-scale
    structure) and per-pixel noise (texture), zero-centred like
    mean-subtracted ImageNet inputs.

    Parameters
    ----------
    shape:
        Spatial tensor shape, e.g. ``TensorShape(3, 224, 224)``.
    seed:
        Random seed.
    smooth_scale / noise_scale:
        Amplitudes of the low-frequency and per-pixel components.
    """
    if not shape.is_spatial:
        raise ValueError("synthetic_image requires a spatial TensorShape")
    rng = np.random.default_rng(seed)
    channels, height, width = shape.channels, shape.height, shape.width
    # Low-frequency field: upsample a coarse random grid with bilinear-ish
    # interpolation (outer product of smooth 1-D profiles).
    coarse = rng.normal(0.0, 1.0, size=(channels, 8, 8))
    ys = np.linspace(0, 7, height)
    xs = np.linspace(0, 7, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, 7)
    x1 = np.minimum(x0 + 1, 7)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    smooth = (
        coarse[:, y0][:, :, x0] * (1 - wy) * (1 - wx)
        + coarse[:, y1][:, :, x0] * wy * (1 - wx)
        + coarse[:, y0][:, :, x1] * (1 - wy) * wx
        + coarse[:, y1][:, :, x1] * wy * wx
    )
    noise = rng.normal(0.0, 1.0, size=(channels, height, width))
    return smooth * smooth_scale + noise * noise_scale


def synthetic_image_batch(shape: TensorShape, batch: int,
                          seed: int = 0) -> np.ndarray:
    """A batch of synthetic images with shape ``(batch, C, H, W)``."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    images = [synthetic_image(shape, seed=seed + i) for i in range(batch)]
    return np.stack(images, axis=0)
