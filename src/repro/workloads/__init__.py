"""Synthetic workload generation.

The paper profiles precisions and activity factors on ImageNet images run
through pretrained Caffe models.  Neither is available offline, so this
package generates synthetic stand-ins whose *statistics* exercise the same
code paths (see DESIGN.md, "Substitutions"):

* :mod:`repro.workloads.synthetic` -- per-layer activation and weight code
  generators with CNN-like value distributions (sparse, heavy-tailed,
  post-ReLU non-negative activations), used by the dynamic-precision
  machinery and the functional model.
* :mod:`repro.workloads.datasets` -- synthetic input images and tiny
  classification datasets used by the examples and the profiler tests.
"""

from repro.workloads.synthetic import (
    SyntheticTensorGenerator,
    synthetic_activation_codes,
    synthetic_weight_codes,
)
from repro.workloads.datasets import synthetic_image, synthetic_image_batch

__all__ = [
    "SyntheticTensorGenerator",
    "synthetic_activation_codes",
    "synthetic_weight_codes",
    "synthetic_image",
    "synthetic_image_batch",
]
