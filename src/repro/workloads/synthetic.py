"""Synthetic activation and weight code generators.

CNN activations after ReLU are non-negative, sparse (many exact zeros) and
heavy-tailed: most values are small and a few rare values reach the top of the
representable range.  Trained weights are roughly zero-centred with a
bell-shaped distribution whose tails set the per-layer precision.  The
generators below produce integer codes with those properties so that the
dynamic-precision machinery (per-group leading-one detection) and the
functional bit-serial model can be exercised without ImageNet data.

Two knobs matter for the dynamic-precision behaviour:

``sparsity``
    Fraction of exact zeros among activations (typically 40-60% in the
    networks studied).
``tail_exponent``
    Controls how heavy the tail is; larger values concentrate the mass near
    zero and make per-group dynamic precision reduction more effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "SyntheticTensorGenerator",
    "synthetic_activation_codes",
    "synthetic_weight_codes",
]


@dataclass
class SyntheticTensorGenerator:
    """Reproducible generator of CNN-like integer code tensors.

    Parameters
    ----------
    seed:
        Seed for the underlying random generator.
    sparsity:
        Fraction of exact-zero activations.
    tail_exponent:
        Exponent of the power-law used to shape activation magnitudes; higher
        means more small values.
    """

    seed: int = 0
    sparsity: float = 0.5
    tail_exponent: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {self.sparsity}")
        if self.tail_exponent <= 0:
            raise ValueError(
                f"tail_exponent must be > 0, got {self.tail_exponent}"
            )
        self._rng = np.random.default_rng(self.seed)

    # -- activations --------------------------------------------------------------

    def activations(self, count: int, precision_bits: int) -> np.ndarray:
        """Unsigned activation codes that need up to ``precision_bits`` bits.

        The maximum representable value does occur (so a per-layer profile of
        ``precision_bits`` is justified) but most values are much smaller, so
        per-group dynamic reduction finds shorter precisions for most groups.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if precision_bits < 1 or precision_bits > 16:
            raise ValueError(
                f"precision_bits must be in [1, 16], got {precision_bits}"
            )
        max_code = (1 << precision_bits) - 1
        # Beta(2, 6 * tail_exponent) magnitudes: mass concentrated near zero
        # with a light upper tail, the shape post-ReLU CNN activations have.
        # Larger tail_exponent -> lighter tail -> stronger per-group dynamic
        # precision reduction.
        fractions = self._rng.beta(2.0, 6.0 * self.tail_exponent, size=count)
        magnitudes = np.floor(max_code * fractions).astype(np.int64)
        zero_mask = self._rng.random(count) < self.sparsity
        magnitudes[zero_mask] = 0
        # Guarantee the profile precision is actually exercised.
        if count >= 1:
            magnitudes[self._rng.integers(count)] = max_code
        return magnitudes

    # -- weights -------------------------------------------------------------------

    def weights(self, count: int, precision_bits: int) -> np.ndarray:
        """Signed weight codes that need up to ``precision_bits`` bits.

        Weights follow a clipped, discretised normal whose standard deviation
        is a small fraction of the representable range (trained CNN weights
        are tightly concentrated around zero, with the per-layer precision set
        by rare outliers); group-of-16 maxima therefore sit 2-4 bits below the
        per-layer precision, which is what the per-group weight precision
        scheme of Section 4.6 (Table 3) exploits.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if precision_bits < 2 or precision_bits > 16:
            raise ValueError(
                f"precision_bits must be in [2, 16], got {precision_bits}"
            )
        limit = (1 << (precision_bits - 1)) - 1
        values = self._rng.normal(0.0, limit / 14.0, size=count)
        codes = np.clip(np.round(values), -limit - 1, limit).astype(np.int64)
        # Make sure the extreme of the range occurs so the per-layer profile
        # is tight.
        codes[self._rng.integers(count)] = limit
        return codes

    # -- convenience ---------------------------------------------------------------

    def layer_pair(self, activation_count: int, weight_count: int,
                   activation_bits: int, weight_bits: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Activation and weight codes for one layer."""
        return (
            self.activations(activation_count, activation_bits),
            self.weights(weight_count, weight_bits),
        )


def synthetic_activation_codes(count: int, precision_bits: int,
                               seed: int = 0, sparsity: float = 0.5,
                               tail_exponent: float = 3.0) -> np.ndarray:
    """One-shot helper around :class:`SyntheticTensorGenerator.activations`."""
    generator = SyntheticTensorGenerator(
        seed=seed, sparsity=sparsity, tail_exponent=tail_exponent
    )
    return generator.activations(count, precision_bits)


def synthetic_weight_codes(count: int, precision_bits: int,
                           seed: int = 0) -> np.ndarray:
    """One-shot helper around :class:`SyntheticTensorGenerator.weights`."""
    generator = SyntheticTensorGenerator(seed=seed)
    return generator.weights(count, precision_bits)
