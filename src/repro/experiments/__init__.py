"""Experiment harnesses: one module per table / figure of the paper.

Each module exposes a ``run()`` function returning a structured result and a
``format_table()`` / ``format_figure()`` helper that prints the same rows or
series the paper reports, so the benchmarks and the CLI can regenerate every
artefact of the evaluation section:

* :mod:`repro.experiments.table1` -- per-layer precision profiles.
* :mod:`repro.experiments.table2` -- speedup / energy efficiency of Stripes
  and Loom 1/2/4-bit vs DPNN, FCLs and CVLs, 100% and 99% profiles.
* :mod:`repro.experiments.figure4` -- per-network performance and efficiency
  of Loom variants, Stripes and DStripes vs DPNN (all layers, 100% profile).
* :mod:`repro.experiments.area` -- Section 4.4 relative core areas.
* :mod:`repro.experiments.figure5` -- scaling study (32..512 MAC equivalents)
  with an LPDDR4-4267 off-chip channel.
* :mod:`repro.experiments.table3` -- per-group effective weight precisions.
* :mod:`repro.experiments.table4` -- all-layer speedup / efficiency with
  per-group weight precisions.
"""

from repro.experiments import (  # noqa: F401
    ablation,
    area,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.common import (
    ExperimentResult,
    build_profiled_network,
    default_designs,
    format_ratio_table,
)

__all__ = [
    "ablation",
    "area",
    "figure4",
    "figure5",
    "table1",
    "table2",
    "table3",
    "table4",
    "ExperimentResult",
    "build_profiled_network",
    "default_designs",
    "format_ratio_table",
]
