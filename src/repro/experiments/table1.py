"""Table 1: per-layer activation and weight precision profiles.

The paper's Table 1 reports, for each network, the profile-derived per-layer
activation precisions and the network weight precision for the convolutional
layers, and the per-layer weight precisions for the fully-connected layers,
under the 100% and 99% relative top-1 accuracy constraints.

Those profiles are shipped verbatim in :mod:`repro.quant.precision` (they are
inputs to every other experiment); this harness (a) regenerates the table from
that data and (b) optionally re-derives a profile with our own
:class:`repro.quant.profiler.PrecisionProfiler` on a synthetic-weight network
to demonstrate the methodology end to end (``derive=True``; used by the
benchmark on a reduced-size network because a full profile search over the
zoo networks is slow in pure Python).

Unlike the other harnesses this one dispatches no accelerator simulations,
so it takes no :class:`~repro.sim.jobs.JobExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn import Network, ReferenceModel
from repro.quant import (
    NetworkPrecisionProfile,
    get_paper_profile,
    paper_networks,
)
from repro.quant.profiler import PrecisionProfiler, fidelity_evaluator
from repro.workloads.datasets import synthetic_image_batch

__all__ = ["Table1Row", "run", "format_table", "derive_profile_for_network"]


@dataclass
class Table1Row:
    """One network's row of Table 1."""

    network: str
    accuracy: str
    conv_activation_bits: List[int]
    conv_weight_bits: int
    fc_weight_bits: List[int]

    def conv_activation_string(self) -> str:
        return "-".join(str(b) for b in self.conv_activation_bits)

    def fc_weight_string(self) -> str:
        if not self.fc_weight_bits:
            return "N/A"
        return "-".join(str(b) for b in self.fc_weight_bits)


def run(accuracies: Tuple[str, ...] = ("100%", "99%")) -> List[Table1Row]:
    """Regenerate Table 1 from the shipped profiles."""
    rows: List[Table1Row] = []
    for accuracy in accuracies:
        for name in paper_networks():
            profile = get_paper_profile(name, accuracy)
            rows.append(
                Table1Row(
                    network=name,
                    accuracy=accuracy,
                    conv_activation_bits=profile.conv_activation_bits(),
                    conv_weight_bits=max(profile.conv_weight_bits()),
                    fc_weight_bits=profile.fc_weight_bits(),
                )
            )
    return rows


def format_table(rows: Optional[List[Table1Row]] = None) -> str:
    """Render the Table 1 rows the way the paper prints them."""
    rows = rows if rows is not None else run()
    lines = ["== Table 1: activation and weight precision profiles =="]
    lines.append(f"{'network':<12s} {'accuracy':<9s} "
                 f"{'CVL activations / per layer':<44s} {'CVL W':>6s} "
                 f"{'FCL W / per layer':>18s}")
    for row in rows:
        lines.append(
            f"{row.network:<12s} {row.accuracy:<9s} "
            f"{row.conv_activation_string():<44s} {row.conv_weight_bits:>6d} "
            f"{row.fc_weight_string():>18s}"
        )
    return "\n".join(lines)


def derive_profile_for_network(
    network: Network,
    target_score: float = 1.0,
    batch: int = 4,
    seed: int = 0,
) -> NetworkPrecisionProfile:
    """Re-derive a precision profile with the Judd-style search.

    Uses synthetic weights and synthetic profiling images; the score is top-1
    agreement between the quantised and full-precision forward passes, the
    same criterion the paper's methodology uses (with ImageNet accuracy).
    """
    rng = np.random.default_rng(seed)
    model = ReferenceModel(network, rng=rng)
    images = synthetic_image_batch(network.input_shape, batch, seed=seed)
    reference_logits = np.stack(
        [np.ravel(model.forward(img)) for img in images], axis=0
    )
    layers = network.compute_layers()
    layer_names = [lw.name for lw in layers]
    conv_flags = [lw.is_conv for lw in layers]

    def forward(assignment) -> np.ndarray:
        return np.stack(
            [np.ravel(model.forward(img, precisions=assignment)) for img in images],
            axis=0,
        )

    evaluator = fidelity_evaluator(forward, reference_logits)
    profiler = PrecisionProfiler(evaluator=evaluator, target_score=target_score)
    return profiler.profile_network(
        network.name, layer_names, conv_flags,
        accuracy_label=f"{target_score:.0%}",
    )
