"""Section 4.4: area overhead of the Loom variants relative to DPNN.

The paper reports post-layout core areas of 1.34x (LM1b), 1.25x (LM2b) and
1.16x (LM4b) relative to DPNN at the 128-MAC-equivalent configuration, and
argues that Loom's performance-per-area therefore beats the baseline's.  This
harness computes the same ratios from the area model, plus the
performance-vs-area figure of merit the section discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accelerators import AcceleratorConfig
from repro.experiments.common import loom_spec
from repro.quant import paper_networks
from repro.sim import AcceleratorRunner, AcceleratorSpec, NetworkSpec, geomean
from repro.sim.jobs import build_accelerator
from repro.sim.results import compare

__all__ = ["run", "format_table", "PAPER_AREA_RATIOS"]

#: Paper-reported relative core areas (Section 4.4).
PAPER_AREA_RATIOS: Dict[str, float] = {
    "loom-1b": 1.34,
    "loom-2b": 1.25,
    "loom-4b": 1.16,
}

#: Paper-reported all-layer speedups quoted alongside the areas.
PAPER_AREA_SPEEDUPS: Dict[str, float] = {
    "loom-1b": 3.19,
    "loom-2b": 3.05,
    "loom-4b": 2.74,
}


@dataclass
class AreaResult:
    """Relative core area, speedup and performance/area for each Loom variant."""

    area_ratio: Dict[str, float] = field(default_factory=dict)
    speedup: Dict[str, float] = field(default_factory=dict)

    def performance_per_area(self, design: str) -> float:
        return self.speedup[design] / self.area_ratio[design]


def run(config: Optional[AcceleratorConfig] = None,
        accuracy: str = "100%", executor=None) -> AreaResult:
    """Compute area ratios and the matching all-layer geomean speedups."""
    config = config or AcceleratorConfig()
    dpnn_spec = AcceleratorSpec.create("dpnn")
    design_specs = {f"loom-{bits}b": loom_spec(bits_per_cycle=bits)
                    for bits in (1, 2, 4)}
    runner = AcceleratorRunner(
        designs={"dpnn": dpnn_spec, **design_specs}, baseline="dpnn",
        config=config, executor=executor,
    )
    raw = runner.run([NetworkSpec(name, accuracy) for name in paper_networks()])
    result = AreaResult()
    base_area = build_accelerator(dpnn_spec, config).core_area_mm2()
    for label, spec in design_specs.items():
        design = build_accelerator(spec, config)
        result.area_ratio[label] = design.core_area_mm2() / base_area
        speedups = [
            compare(per_design[label], per_design["dpnn"]).speedup
            for per_design in raw.values()
        ]
        result.speedup[label] = geomean(speedups)
    return result


def format_table(result: Optional[AreaResult] = None) -> str:
    """Render the Section 4.4 comparison (measured vs. paper)."""
    result = result if result is not None else run()
    lines = ["== Section 4.4: area overhead vs DPNN (128-MAC configuration) =="]
    lines.append(f"{'design':<10s} {'area ratio':>12s} {'paper':>8s} "
                 f"{'speedup':>9s} {'paper':>8s} {'perf/area':>10s}")
    for design in ("loom-1b", "loom-2b", "loom-4b"):
        lines.append(
            f"{design:<10s} {result.area_ratio[design]:>12.2f} "
            f"{PAPER_AREA_RATIOS[design]:>8.2f} "
            f"{result.speedup[design]:>9.2f} "
            f"{PAPER_AREA_SPEEDUPS[design]:>8.2f} "
            f"{result.performance_per_area(design):>10.2f}"
        )
    return "\n".join(lines)
