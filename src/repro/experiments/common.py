"""Shared helpers for the experiment harnesses.

The harnesses declare their simulation matrices with
:func:`default_design_specs` and network specs, and hand them to a
:class:`~repro.sim.jobs.JobExecutor` (the CLI shares one executor across all
of ``loom-repro all``, so overlapping matrices are simulated once).
:func:`default_designs` materialises the same designs as live accelerator
instances for callers that want to poke at the models directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.accelerators import AcceleratorConfig
from repro.nn import Network, build_network
from repro.quant import get_paper_profile
from repro.sim.jobs import AcceleratorSpec, build_accelerator

__all__ = [
    "ExperimentResult",
    "build_profiled_network",
    "default_design_specs",
    "default_designs",
    "design_label",
    "format_ratio_table",
    "loom_spec",
]


@dataclass
class ExperimentResult:
    """Generic experiment result: a label, column names and rows of values.

    ``rows`` maps a row label (usually a network name) to a mapping from
    column name to value; ``reference`` optionally carries the paper's values
    for the same cells so EXPERIMENTS.md can show paper-vs-measured.
    """

    name: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    reference: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, label: str, values: Mapping[str, float]) -> None:
        self.rows[label] = dict(values)

    def cell(self, row: str, column: str) -> float:
        return self.rows[row][column]


def build_profiled_network(name: str, accuracy: str = "100%",
                           with_effective_weights: bool = False) -> Network:
    """Build a zoo network with the matching paper precision profile attached."""
    network = build_network(name)
    profile = get_paper_profile(
        name, accuracy, with_effective_weights=with_effective_weights
    )
    network.attach_profile(profile)
    return network


def loom_spec(bits_per_cycle: int = 1, **options) -> AcceleratorSpec:
    """Spec for a Loom variant (LM1b/LM2b/LM4b plus any ablation knobs)."""
    return AcceleratorSpec.create("loom", bits_per_cycle=bits_per_cycle,
                                  **options)


def design_label(spec: AcceleratorSpec) -> str:
    """Stable display label for a design spec (``loom-1b``, ``dstripes``, ...).

    Matches the naming the experiment tables use; non-default options beyond
    the Loom ``bits_per_cycle`` are appended so ablated variants stay
    distinguishable in sweep reports.
    """
    options = spec.options_dict()
    if spec.kind == "loom":
        bits = options.pop("bits_per_cycle", 1)
        label = f"loom-{bits}b"
    else:
        label = spec.kind
    if options:
        label += "[" + ",".join(
            f"{key}={value}" for key, value in sorted(options.items())
        ) + "]"
    return label


def default_design_specs(include_stripes: bool = True,
                         include_dstripes: bool = False
                         ) -> Dict[str, AcceleratorSpec]:
    """Declarative form of the design matrix most experiments compare."""
    specs: Dict[str, AcceleratorSpec] = {"dpnn": AcceleratorSpec.create("dpnn")}
    if include_stripes:
        specs["stripes"] = AcceleratorSpec.create("stripes")
    if include_dstripes:
        specs["dstripes"] = AcceleratorSpec.create("dstripes")
    for bits in (1, 2, 4):
        specs[f"loom-{bits}b"] = loom_spec(bits_per_cycle=bits)
    return specs


def default_designs(config: Optional[AcceleratorConfig] = None,
                    include_stripes: bool = True,
                    include_dstripes: bool = False) -> Dict[str, object]:
    """The designs most experiments compare: DPNN baseline, Loom 1/2/4-bit.

    Returns live accelerator instances (shared, stateless); experiments use
    :func:`default_design_specs` instead and go through the job executor.
    """
    return {
        label: build_accelerator(spec, config)
        for label, spec in default_design_specs(
            include_stripes=include_stripes,
            include_dstripes=include_dstripes,
        ).items()
    }


def format_ratio_table(result: ExperimentResult, width: int = 9,
                       precision: int = 2) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = ["network".ljust(12)] + [c.rjust(width) for c in result.columns]
    lines = [f"== {result.name} =="]
    if result.notes:
        lines.append(result.notes)
    lines.append(" ".join(header))
    for label, values in result.rows.items():
        cells = [label.ljust(12)]
        for column in result.columns:
            value = values.get(column)
            if value is None:
                cells.append("n/a".rjust(width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(width))
        lines.append(" ".join(cells))
    return "\n".join(lines)
