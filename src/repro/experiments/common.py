"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.accelerators import DPNN, DStripes, Stripes, AcceleratorConfig
from repro.core import Loom
from repro.nn import Network, build_network
from repro.quant import get_paper_profile

__all__ = [
    "ExperimentResult",
    "build_profiled_network",
    "default_designs",
    "format_ratio_table",
]


@dataclass
class ExperimentResult:
    """Generic experiment result: a label, column names and rows of values.

    ``rows`` maps a row label (usually a network name) to a mapping from
    column name to value; ``reference`` optionally carries the paper's values
    for the same cells so EXPERIMENTS.md can show paper-vs-measured.
    """

    name: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    reference: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, label: str, values: Mapping[str, float]) -> None:
        self.rows[label] = dict(values)

    def cell(self, row: str, column: str) -> float:
        return self.rows[row][column]


def build_profiled_network(name: str, accuracy: str = "100%",
                           with_effective_weights: bool = False) -> Network:
    """Build a zoo network with the matching paper precision profile attached."""
    network = build_network(name)
    profile = get_paper_profile(
        name, accuracy, with_effective_weights=with_effective_weights
    )
    network.attach_profile(profile)
    return network


def default_designs(config: Optional[AcceleratorConfig] = None,
                    include_stripes: bool = True,
                    include_dstripes: bool = False) -> Dict[str, object]:
    """The designs most experiments compare: DPNN baseline, Loom 1/2/4-bit."""
    designs: Dict[str, object] = {"dpnn": DPNN(config)}
    if include_stripes:
        designs["stripes"] = Stripes(config)
    if include_dstripes:
        designs["dstripes"] = DStripes(config)
    designs["loom-1b"] = Loom(config, bits_per_cycle=1)
    designs["loom-2b"] = Loom(config, bits_per_cycle=2)
    designs["loom-4b"] = Loom(config, bits_per_cycle=4)
    return designs


def format_ratio_table(result: ExperimentResult, width: int = 9,
                       precision: int = 2) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = ["network".ljust(12)] + [c.rjust(width) for c in result.columns]
    lines = [f"== {result.name} =="]
    if result.notes:
        lines.append(result.notes)
    lines.append(" ".join(header))
    for label, values in result.rows.items():
        cells = [label.ljust(12)]
        for column in result.columns:
            value = values.get(column)
            if value is None:
                cells.append("n/a".rjust(width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(width))
        lines.append(" ".join(cells))
    return "\n".join(lines)
