"""Figure 5: scaling with equivalent peak compute bandwidth (LPDDR4 off-chip).

The paper's scaling study sweeps configurations whose peak compute bandwidth
matches a bit-parallel accelerator of 32, 64, 128, 256 and 512 16b x 16b MACs
per cycle, with a single LPDDR4-4267 off-chip channel attached and activation
memories sized as in Section 4.5 (2 MB for DPNN, 1 MB for Loom).  For each
point it reports:

* relative performance of Loom-1b and DStripes over DPNN, for convolutional
  layers only and for all layers (the four plotted series);
* absolute Loom frames per second (conv-only and all-layer annotations);
* Loom's weight-memory capacity, its total-area ratio and its energy
  efficiency relative to DPNN.

The qualitative behaviours to look for (and which the tests assert) are that
Loom's advantage shrinks as the configuration grows (more filter lanes ->
more under-utilisation) while DStripes' stays flat, with the crossover around
the 256-512 configurations, and that fps still scales up with size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accelerators import AcceleratorConfig
from repro.experiments.common import loom_spec
from repro.explore.space import Axis, SweepSpec
from repro.memory.dram import LPDDR4_4267
from repro.quant import paper_networks
from repro.sim import AcceleratorSpec, geomean
from repro.sim.jobs import build_accelerator, get_default_executor
from repro.sim.results import compare

__all__ = ["run", "format_figure", "sweep_space", "CONFIG_SWEEP",
           "PAPER_FIGURE5"]

#: The x-axis of Figure 5: equivalent DPNN peak MACs per cycle.
CONFIG_SWEEP = (32, 64, 128, 256, 512)

#: Paper-reported annotations (used for paper-vs-measured reporting).
PAPER_FIGURE5: Dict[str, Dict[int, float]] = {
    "loom_fps_all": {32: 47, 64: 92, 128: 169, 256: 205, 512: 240},
    "loom_fps_conv": {32: 53, 64: 102, 128: 190, 256: 234, 512: 278},
    "weight_memory_mb": {32: 0.5, 64: 1.0, 128: 2.0, 256: 4.0, 512: 8.0},
    "energy_efficiency": {32: 2.6, 64: 1.88, 128: 1.27, 256: 0.7, 512: 0.33},
    "area_ratio": {32: 0.94, 64: 1.23, 128: 1.72, 256: 2.46, 512: 3.84},
}


@dataclass
class Figure5Point:
    """Measurements for one configuration size."""

    equivalent_macs: int
    loom_rel_perf_all: float
    loom_rel_perf_conv: float
    dstripes_rel_perf_all: float
    dstripes_rel_perf_conv: float
    loom_fps_all: float
    loom_fps_conv: float
    loom_weight_memory_mb: float
    loom_area_ratio: float
    loom_energy_efficiency: float


@dataclass
class Figure5Result:
    points: List[Figure5Point] = field(default_factory=list)

    def series(self, attribute: str) -> List[float]:
        return [getattr(p, attribute) for p in self.points]

    def point(self, equivalent_macs: int) -> Figure5Point:
        for p in self.points:
            if p.equivalent_macs == equivalent_macs:
                return p
        raise KeyError(f"no point for {equivalent_macs} MACs")


def sweep_space(configs: Tuple[int, ...] = CONFIG_SWEEP,
                networks: Optional[Tuple[str, ...]] = None,
                accuracy: str = "100%") -> SweepSpec:
    """The Figure 5 study as a declarative design-space sweep.

    Axes (in product order): equivalent MACs, network, design (DPNN baseline,
    Loom-1b, DStripes); base values pin the single LPDDR4-4267 channel and
    exclude off-chip transfer energy, matching the paper's accounting for
    this figure.
    """
    networks = networks or tuple(paper_networks())
    designs = (AcceleratorSpec.create("dpnn"), loom_spec(bits_per_cycle=1),
               AcceleratorSpec.create("dstripes"))
    return SweepSpec(
        axes=[
            Axis("equivalent_macs", tuple(configs)),
            Axis("network", tuple(networks)),
            Axis("accelerator", designs),
        ],
        base={"accuracy": accuracy, "dram": LPDDR4_4267,
              "charge_offchip_energy": False},
    )


def run(configs: Tuple[int, ...] = CONFIG_SWEEP,
        networks: Optional[Tuple[str, ...]] = None,
        accuracy: str = "100%", executor=None) -> Figure5Result:
    """Run the scaling sweep (job matrix declared by :func:`sweep_space`)."""
    result = Figure5Result()
    if not configs:
        return result
    networks = networks or tuple(paper_networks())
    executor = executor if executor is not None else get_default_executor()
    # Sweep axes hold unique values; repeated --configs entries reuse the
    # unique point's slice (and report the row again, as the seed did).
    unique_configs = tuple(dict.fromkeys(configs))
    space = sweep_space(configs=unique_configs, networks=networks,
                        accuracy=accuracy)
    flat_all = executor.run(space.jobs())
    loom_1b_spec = loom_spec(bits_per_cycle=1)
    dpnn_spec = AcceleratorSpec.create("dpnn")
    per_config = len(networks) * 3
    config_index_of = {macs: i for i, macs in enumerate(unique_configs)}
    for macs in configs:
        config_index = config_index_of[macs]
        config = AcceleratorConfig(equivalent_macs=macs, dram=LPDDR4_4267,
                                   charge_offchip_energy=False)
        flat = flat_all[config_index * per_config:(config_index + 1) * per_config]
        loom_perf_all, loom_perf_conv = [], []
        ds_perf_all, ds_perf_conv = [], []
        loom_eff_all = []
        loom_fps_all, loom_fps_conv = [], []
        for index, _ in enumerate(networks):
            base, loom_result, ds_result = flat[3 * index:3 * index + 3]
            loom_perf_all.append(compare(loom_result, base).speedup)
            loom_perf_conv.append(compare(loom_result, base, kind="conv").speedup)
            ds_perf_all.append(compare(ds_result, base).speedup)
            ds_perf_conv.append(compare(ds_result, base, kind="conv").speedup)
            loom_eff_all.append(compare(loom_result, base).energy_efficiency)
            loom_fps_all.append(loom_result.frames_per_second())
            loom_fps_conv.append(loom_result.frames_per_second(kind="conv"))
        loom = build_accelerator(loom_1b_spec, config)
        dpnn = build_accelerator(dpnn_spec, config)
        wm_mb = loom.hierarchy.weight_memory.capacity_mb
        area_ratio = loom.total_area_mm2() / dpnn.total_area_mm2()
        result.points.append(
            Figure5Point(
                equivalent_macs=macs,
                loom_rel_perf_all=geomean(loom_perf_all),
                loom_rel_perf_conv=geomean(loom_perf_conv),
                dstripes_rel_perf_all=geomean(ds_perf_all),
                dstripes_rel_perf_conv=geomean(ds_perf_conv),
                loom_fps_all=geomean(loom_fps_all),
                loom_fps_conv=geomean(loom_fps_conv),
                loom_weight_memory_mb=wm_mb,
                loom_area_ratio=area_ratio,
                loom_energy_efficiency=geomean(loom_eff_all),
            )
        )
    return result


def format_figure(result: Optional[Figure5Result] = None) -> str:
    """Render the Figure 5 series (one configuration per column)."""
    result = result if result is not None else run()
    configs = [p.equivalent_macs for p in result.points]
    lines = ["== Figure 5: scaling vs equivalent DPNN peak compute bandwidth "
             "(LPDDR4-4267 off-chip) =="]
    header = f"{'series':<26s}" + "".join(f"{c:>10d}" for c in configs)
    lines.append(header)
    rows = [
        ("Loom rel perf (all)", "loom_rel_perf_all", None),
        ("Loom rel perf (conv)", "loom_rel_perf_conv", None),
        ("DStripes rel perf (all)", "dstripes_rel_perf_all", None),
        ("DStripes rel perf (conv)", "dstripes_rel_perf_conv", None),
        ("Loom fps (all)", "loom_fps_all", "loom_fps_all"),
        ("Loom fps (conv)", "loom_fps_conv", "loom_fps_conv"),
        ("Loom WM capacity (MB)", "loom_weight_memory_mb", "weight_memory_mb"),
        ("Loom area ratio", "loom_area_ratio", "area_ratio"),
        ("Loom energy efficiency", "loom_energy_efficiency", "energy_efficiency"),
    ]
    for label, attribute, paper_key in rows:
        values = result.series(attribute)
        lines.append(f"{label:<26s}" + "".join(f"{v:>10.2f}" for v in values))
        if paper_key is not None:
            paper_vals = [PAPER_FIGURE5[paper_key][c] for c in configs]
            lines.append(f"{'  (paper)':<26s}"
                         + "".join(f"{v:>10.2f}" for v in paper_vals))
    return "\n".join(lines)
