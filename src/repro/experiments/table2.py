"""Table 2: speedup and energy efficiency vs. DPNN, FCLs and CVLs separately.

For each network, the paper reports relative execution time (Perf) and energy
efficiency (Eff) of Stripes and of Loom 1/2/4-bit against the DPNN baseline,
separately for fully-connected and convolutional layers and for the 100% and
99% accuracy precision profiles, plus geometric means.

This harness runs all designs at the 128-MAC-equivalent configuration with
unconstrained off-chip bandwidth (the paper's main evaluation mode) and
returns the same grid of numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import default_design_specs
from repro.quant import paper_networks
from repro.sim import AcceleratorRunner, NetworkSpec, geomean

__all__ = ["run", "format_table", "PAPER_TABLE2", "DESIGN_LABELS"]

#: Design labels in the paper's column order.
DESIGN_LABELS = ("stripes", "loom-1b", "loom-2b", "loom-4b")

#: The paper's Table 2 values, ``{accuracy: {kind: {network: {design: (perf, eff)}}}}``.
#: Used for paper-vs-measured reporting; n/a cells are omitted.
PAPER_TABLE2: Dict[str, Dict[str, Dict[str, Dict[str, Tuple[float, float]]]]] = {
    "100%": {
        "fc": {
            "alexnet": {"stripes": (1.00, 0.88), "loom-1b": (1.65, 1.34),
                        "loom-2b": (1.66, 1.56), "loom-4b": (1.66, 1.74)},
            "googlenet": {"stripes": (0.99, 0.87), "loom-1b": (2.25, 1.82),
                          "loom-2b": (2.27, 2.14), "loom-4b": (2.28, 2.39)},
            "vggs": {"stripes": (1.00, 0.88), "loom-1b": (1.63, 1.32),
                     "loom-2b": (1.63, 1.54), "loom-4b": (1.63, 1.71)},
            "vggm": {"stripes": (1.00, 0.88), "loom-1b": (1.63, 1.32),
                     "loom-2b": (1.64, 1.54), "loom-4b": (1.64, 1.72)},
            "vgg19": {"stripes": (1.00, 0.88), "loom-1b": (1.62, 1.31),
                      "loom-2b": (1.63, 1.53), "loom-4b": (1.63, 1.71)},
        },
        "conv": {
            "nin": {"stripes": (1.76, 1.54), "loom-1b": (2.97, 2.40),
                    "loom-2b": (2.92, 2.75), "loom-4b": (2.91, 3.05)},
            "alexnet": {"stripes": (2.34, 2.04), "loom-1b": (4.25, 3.43),
                        "loom-2b": (4.20, 3.96), "loom-4b": (3.66, 3.84)},
            "googlenet": {"stripes": (1.76, 1.50), "loom-1b": (2.63, 2.12),
                          "loom-2b": (2.49, 2.34), "loom-4b": (2.12, 2.22)},
            "vggs": {"stripes": (1.89, 1.65), "loom-1b": (3.98, 3.21),
                     "loom-2b": (3.78, 3.56), "loom-4b": (3.02, 3.17)},
            "vggm": {"stripes": (2.12, 1.86), "loom-1b": (4.12, 3.33),
                     "loom-2b": (3.69, 3.47), "loom-4b": (3.34, 3.50)},
            "vgg19": {"stripes": (1.34, 1.17), "loom-1b": (2.17, 1.76),
                      "loom-2b": (2.09, 1.97), "loom-4b": (2.03, 2.13)},
        },
    },
    "99%": {
        "fc": {
            "alexnet": {"stripes": (1.00, 0.88), "loom-1b": (1.85, 1.49),
                        "loom-2b": (1.85, 1.74), "loom-4b": (1.85, 1.94)},
            "googlenet": {"stripes": (0.99, 0.87), "loom-1b": (2.25, 1.82),
                          "loom-2b": (2.27, 2.14), "loom-4b": (2.28, 2.39)},
            "vggs": {"stripes": (1.00, 0.88), "loom-1b": (1.78, 1.44),
                     "loom-2b": (1.78, 1.68), "loom-4b": (1.79, 1.87)},
            "vggm": {"stripes": (1.00, 0.88), "loom-1b": (1.79, 1.45),
                     "loom-2b": (1.80, 1.69), "loom-4b": (1.80, 1.89)},
            "vgg19": {"stripes": (1.00, 0.88), "loom-1b": (1.63, 1.32),
                      "loom-2b": (1.63, 1.54), "loom-4b": (1.63, 1.71)},
        },
        "conv": {
            "nin": {"stripes": (2.31, 2.02), "loom-1b": (4.21, 3.40),
                    "loom-2b": (4.09, 3.85), "loom-4b": (3.78, 3.96)},
            "alexnet": {"stripes": (2.57, 2.25), "loom-1b": (4.62, 3.73),
                        "loom-2b": (4.49, 4.23), "loom-4b": (4.36, 4.57)},
            "googlenet": {"stripes": (1.80, 1.58), "loom-1b": (2.91, 2.35),
                          "loom-2b": (2.74, 2.58), "loom-4b": (2.30, 2.42)},
            "vggs": {"stripes": (1.89, 1.65), "loom-1b": (3.98, 3.21),
                     "loom-2b": (3.78, 3.56), "loom-4b": (3.15, 3.30)},
            "vggm": {"stripes": (2.12, 1.86), "loom-1b": (4.49, 3.63),
                     "loom-2b": (4.03, 3.79), "loom-4b": (3.64, 3.82)},
            "vgg19": {"stripes": (1.45, 1.27), "loom-1b": (2.28, 1.84),
                      "loom-2b": (2.21, 2.08), "loom-4b": (2.07, 2.17)},
        },
    },
}


@dataclass
class Table2Result:
    """Measured Table 2: ``cells[accuracy][kind][network][design] = (perf, eff)``."""

    cells: Dict[str, Dict[str, Dict[str, Dict[str, Tuple[float, float]]]]] = \
        field(default_factory=dict)

    def geomeans(self, accuracy: str, kind: str) -> Dict[str, Tuple[float, float]]:
        """Geometric means across networks for each design."""
        per_design: Dict[str, List[Tuple[float, float]]] = {}
        for network, designs in self.cells[accuracy][kind].items():
            for design, (perf, eff) in designs.items():
                per_design.setdefault(design, []).append((perf, eff))
        return {
            design: (geomean([p for p, _ in vals]), geomean([e for _, e in vals]))
            for design, vals in per_design.items()
        }


def run(accuracies: Tuple[str, ...] = ("100%", "99%"),
        networks: Optional[Tuple[str, ...]] = None,
        executor=None) -> Table2Result:
    """Run the Table 2 experiment (job matrix dispatched via ``executor``)."""
    networks = networks or tuple(paper_networks())
    result = Table2Result()
    runner = AcceleratorRunner(designs=default_design_specs(),
                               baseline="dpnn", executor=executor)
    for accuracy in accuracies:
        result.cells[accuracy] = {"fc": {}, "conv": {}}
        nets = [NetworkSpec(name, accuracy) for name in networks]
        raw = runner.run(nets)
        for kind in ("fc", "conv"):
            comparisons = runner.compare_all(raw, kind=kind)
            for network_name, per_design in comparisons.items():
                base_cycles = raw[network_name]["dpnn"].total_cycles(kind)
                if base_cycles == 0:
                    continue  # e.g. NiN has no FC layers
                cells = {
                    design: (comp.speedup, comp.energy_efficiency)
                    for design, comp in per_design.items()
                    if design in DESIGN_LABELS
                }
                result.cells[accuracy][kind][network_name] = cells
    return result


def format_table(result: Optional[Table2Result] = None) -> str:
    """Render the measured Table 2 alongside the paper's numbers."""
    result = result if result is not None else run()
    lines = ["== Table 2: relative speedup / energy efficiency vs DPNN =="]
    for accuracy in result.cells:
        for kind in ("fc", "conv"):
            title = "FULLY-CONNECTED" if kind == "fc" else "CONVOLUTIONAL"
            lines.append(f"-- {title} LAYERS, {accuracy} top-1 accuracy --")
            header = f"{'network':<12s}"
            for design in DESIGN_LABELS:
                header += f" {design + ' perf':>14s} {design + ' eff':>14s}"
            lines.append(header)
            for network, designs in result.cells[accuracy][kind].items():
                row = f"{network:<12s}"
                paper = PAPER_TABLE2.get(accuracy, {}).get(kind, {}).get(network, {})
                for design in DESIGN_LABELS:
                    perf, eff = designs.get(design, (float("nan"), float("nan")))
                    ref = paper.get(design)
                    perf_txt = f"{perf:.2f}"
                    eff_txt = f"{eff:.2f}"
                    if ref:
                        perf_txt += f"({ref[0]:.2f})"
                        eff_txt += f"({ref[1]:.2f})"
                    row += f" {perf_txt:>14s} {eff_txt:>14s}"
                lines.append(row)
            means = result.geomeans(accuracy, kind)
            row = f"{'geomean':<12s}"
            for design in DESIGN_LABELS:
                perf, eff = means.get(design, (float("nan"), float("nan")))
                row += f" {perf:>14.2f} {eff:>14.2f}"
            lines.append(row)
    lines.append("(values in parentheses are the paper's)")
    return "\n".join(lines)
