"""Table 4: all-layer speedup / efficiency with per-group weight precisions.

Section 4.6 estimates what Loom gains when it exploits the per-group
*effective* weight precisions of Table 3 instead of the per-layer
profile-derived precisions: 4.38x / 4.20x / 3.76x speedup and 3.54x / 3.95x /
3.94x energy efficiency over DPNN for the 1/2/4-bit variants (geometric mean,
all layers combined).

This harness attaches the Table 3 effective precisions to the convolutional
layers (the paper leaves FCL weights at their per-layer profile precisions)
and runs the Loom variants in ``use_effective_weight_precision`` mode, which
is the "performance scales linearly with weight precision" assumption the
paper makes for these estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.accelerators import AcceleratorConfig
from repro.experiments.common import loom_spec
from repro.quant import paper_networks
from repro.sim import AcceleratorRunner, AcceleratorSpec, NetworkSpec, geomean
from repro.sim.results import compare

__all__ = ["run", "format_table", "PAPER_TABLE4"]

#: Paper Table 4 values: {network: {design: (perf, eff)}} for all layers, 100%.
PAPER_TABLE4: Dict[str, Dict[str, Tuple[float, float]]] = {
    "nin": {"loom-1b": (3.38, 2.73), "loom-2b": (3.32, 3.13), "loom-4b": (3.31, 3.48)},
    "alexnet": {"loom-1b": (5.66, 4.57), "loom-2b": (5.61, 4.57),
                "loom-4b": (4.95, 5.19)},
    "googlenet": {"loom-1b": (3.19, 2.57), "loom-2b": (3.02, 2.84),
                  "loom-4b": (2.80, 2.93)},
    "vggs": {"loom-1b": (5.72, 4.62), "loom-2b": (5.46, 5.13),
             "loom-4b": (4.42, 4.63)},
    "vggm": {"loom-1b": (6.03, 4.87), "loom-2b": (5.46, 5.14),
             "loom-4b": (4.60, 4.83)},
    "vgg19": {"loom-1b": (3.38, 2.73), "loom-2b": (3.28, 3.09),
              "loom-4b": (3.01, 3.15)},
    "geomean": {"loom-1b": (4.38, 3.54), "loom-2b": (4.20, 3.95),
                "loom-4b": (3.76, 3.94)},
}

DESIGNS = ("loom-1b", "loom-2b", "loom-4b")


@dataclass
class Table4Result:
    """Measured Table 4: ``cells[network][design] = (perf, eff)``."""

    cells: Dict[str, Dict[str, Tuple[float, float]]] = field(default_factory=dict)


def run(config: Optional[AcceleratorConfig] = None,
        networks: Optional[Tuple[str, ...]] = None,
        accuracy: str = "100%", executor=None) -> Table4Result:
    """Run the Table 4 experiment (all layers, per-group weight precisions)."""
    config = config or AcceleratorConfig()
    networks = networks or tuple(paper_networks())
    designs = {"dpnn": AcceleratorSpec.create("dpnn")}
    for bits in (1, 2, 4):
        designs[f"loom-{bits}b"] = loom_spec(
            bits_per_cycle=bits, use_effective_weight_precision=True
        )
    runner = AcceleratorRunner(designs=designs, baseline="dpnn",
                               config=config, executor=executor)
    nets = [NetworkSpec(name, accuracy, with_effective_weights=True)
            for name in networks]
    raw = runner.run(nets)
    result = Table4Result()
    for name in networks:
        per_design = raw[name]
        baseline = per_design["dpnn"]
        row: Dict[str, Tuple[float, float]] = {}
        for label in DESIGNS:
            comp = compare(per_design[label], baseline)
            row[label] = (comp.speedup, comp.energy_efficiency)
        result.cells[name] = row
    result.cells["geomean"] = {
        label: (
            geomean([result.cells[n][label][0] for n in networks]),
            geomean([result.cells[n][label][1] for n in networks]),
        )
        for label in DESIGNS
    }
    return result


def format_table(result: Optional[Table4Result] = None) -> str:
    """Render the measured Table 4 next to the paper's values."""
    result = result if result is not None else run()
    lines = ["== Table 4: all layers, per-group weight precisions "
             "(measured(paper)) =="]
    header = f"{'network':<12s}"
    for design in DESIGNS:
        header += f" {design + ' perf':>18s} {design + ' eff':>18s}"
    lines.append(header)
    for network, row in result.cells.items():
        line = f"{network:<12s}"
        paper_row = PAPER_TABLE4.get(network, {})
        for design in DESIGNS:
            perf, eff = row[design]
            ref = paper_row.get(design)
            perf_txt = f"{perf:.2f}" + (f"({ref[0]:.2f})" if ref else "")
            eff_txt = f"{eff:.2f}" + (f"({ref[1]:.2f})" if ref else "")
            line += f" {perf_txt:>18s} {eff_txt:>18s}"
        lines.append(line)
    return "\n".join(lines)
