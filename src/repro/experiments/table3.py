"""Table 3: average effective per-layer weight precisions (16-weight groups).

Section 4.6 observes that weight precisions can be trimmed at a much finer
granularity than a layer: for groups of 16 weights (one SIP row's worth) the
precision needed by the group is usually well below the per-layer profile.
Table 3 reports the resulting average effective precision per layer.

This harness does two things:

* returns the paper's Table 3 values (shipped in
  :data:`repro.quant.precision.PAPER_EFFECTIVE_WEIGHT_PRECISIONS`), which are
  the inputs the Table 4 experiment uses; and
* demonstrates the mechanism by generating synthetic per-layer weight tensors
  (CNN-like distributions) at the profile precisions and measuring their
  per-group effective precisions with :mod:`repro.quant.groups` -- the same
  computation the hardware's detection logic (or an offline pass producing
  per-group metadata) performs.

Like Table 1 this harness dispatches no accelerator simulations (the
measurement operates on synthetic weight tensors directly), so it takes no
:class:`~repro.sim.jobs.JobExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.quant import (
    PAPER_EFFECTIVE_WEIGHT_PRECISIONS,
    get_paper_profile,
    paper_networks,
)
from repro.quant.groups import group_weight_precisions
from repro.workloads.synthetic import SyntheticTensorGenerator

__all__ = ["run", "format_table", "measure_synthetic_effective_precisions"]


@dataclass
class Table3Result:
    """Paper and (optionally) synthetic-measured effective weight precisions."""

    paper: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    measured: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    def average(self, network: str, source: str = "paper") -> float:
        values = (self.paper if source == "paper" else self.measured)[network]
        return sum(values) / len(values)


def measure_synthetic_effective_precisions(
    network: str,
    accuracy: str = "100%",
    weights_per_layer: int = 4096,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Measure per-layer effective weight precisions on synthetic weight tensors.

    Each convolutional layer gets a synthetic signed weight tensor whose
    range matches the profile precision; the per-group (16) precisions are
    measured and averaged, which is exactly the Table 3 computation.
    """
    profile = get_paper_profile(network, accuracy)
    generator = SyntheticTensorGenerator(seed=seed)
    measured: List[float] = []
    for layer in profile.conv_layers:
        codes = generator.weights(weights_per_layer, layer.weight_bits)
        stats = group_weight_precisions(codes, baseline_bits=layer.weight_bits)
        measured.append(stats.average_bits)
    return tuple(measured)


def run(include_synthetic: bool = True, seed: int = 0) -> Table3Result:
    """Collect paper values and synthetic measurements for every network."""
    result = Table3Result()
    for name in paper_networks():
        result.paper[name] = PAPER_EFFECTIVE_WEIGHT_PRECISIONS[name]
        if include_synthetic:
            result.measured[name] = measure_synthetic_effective_precisions(
                name, seed=seed
            )
    return result


def format_table(result: Optional[Table3Result] = None) -> str:
    """Render Table 3 (paper values, plus synthetic measurements if present)."""
    result = result if result is not None else run()
    lines = ["== Table 3: average effective per-layer weight precisions "
             "(groups of 16 weights) =="]
    for network, values in result.paper.items():
        paper_txt = "-".join(f"{v:.2f}" for v in values)
        lines.append(f"{network:<12s} paper    : {paper_txt}")
        if network in result.measured:
            measured_txt = "-".join(f"{v:.2f}" for v in result.measured[network])
            lines.append(f"{'':<12s} synthetic: {measured_txt}")
    return "\n".join(lines)
