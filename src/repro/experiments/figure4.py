"""Figure 4: per-network performance and energy efficiency, all layers, 100% profile.

Figure 4a plots, for every network, the execution-time speedup of Loom 1/2/4-bit,
Stripes and DStripes relative to DPNN over *all* layers with the 100% accuracy
profiles; Figure 4b plots the corresponding energy efficiency.  The paper's
headline observations, which this harness reproduces, are:

* LM1b outperforms DPNN by more than 3x on average and is more than 2.5x more
  energy efficient;
* the multi-bit variants trade a little performance for better energy
  efficiency (up to ~2.9x on average);
* LM1b consistently outperforms Stripes and DStripes in performance and
  Stripes in energy efficiency, and beats DStripes in efficiency everywhere
  except GoogLeNet where the two are within a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import default_design_specs
from repro.quant import paper_networks
from repro.sim import AcceleratorRunner, NetworkSpec, geomean

__all__ = ["run", "format_figure", "FIGURE4_DESIGNS"]

#: Designs plotted in Figure 4, in legend order.
FIGURE4_DESIGNS = ("stripes", "dstripes", "loom-1b", "loom-2b", "loom-4b")


@dataclass
class Figure4Result:
    """Measured Figure 4 series.

    ``performance[network][design]`` and ``efficiency[network][design]`` hold
    the ratios vs. DPNN; the special row ``"geomean"`` aggregates networks.
    """

    performance: Dict[str, Dict[str, float]] = field(default_factory=dict)
    efficiency: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run(networks: Optional[Tuple[str, ...]] = None,
        accuracy: str = "100%", executor=None) -> Figure4Result:
    """Run the Figure 4 experiment (all layers combined)."""
    networks = networks or tuple(paper_networks())
    runner = AcceleratorRunner(
        designs=default_design_specs(include_dstripes=True), baseline="dpnn",
        executor=executor,
    )
    nets = [NetworkSpec(name, accuracy) for name in networks]
    raw = runner.run(nets)
    comparisons = runner.compare_all(raw, kind=None)
    result = Figure4Result()
    for network in networks:
        perf_row: Dict[str, float] = {}
        eff_row: Dict[str, float] = {}
        for design in FIGURE4_DESIGNS:
            comp = comparisons[network][design]
            perf_row[design] = comp.speedup
            eff_row[design] = comp.energy_efficiency
        result.performance[network] = perf_row
        result.efficiency[network] = eff_row
    result.performance["geomean"] = {
        design: geomean([result.performance[n][design] for n in networks])
        for design in FIGURE4_DESIGNS
    }
    result.efficiency["geomean"] = {
        design: geomean([result.efficiency[n][design] for n in networks])
        for design in FIGURE4_DESIGNS
    }
    return result


def _format_panel(title: str, series: Dict[str, Dict[str, float]]) -> List[str]:
    lines = [f"-- {title} --"]
    header = f"{'network':<12s}" + "".join(f"{d:>10s}" for d in FIGURE4_DESIGNS)
    lines.append(header)
    for network, row in series.items():
        cells = "".join(f"{row[d]:>10.2f}" for d in FIGURE4_DESIGNS)
        lines.append(f"{network:<12s}{cells}")
    return lines


def format_figure(result: Optional[Figure4Result] = None) -> str:
    """Render both Figure 4 panels as text series (one bar group per row)."""
    result = result if result is not None else run()
    lines = ["== Figure 4: relative performance and energy efficiency vs DPNN "
             "(all layers, 100% profile) =="]
    lines += _format_panel("Figure 4a: performance", result.performance)
    lines += _format_panel("Figure 4b: energy efficiency", result.efficiency)
    return "\n".join(lines)
