"""Ablation study: how much each of Loom's mechanisms contributes.

The paper's design combines several mechanisms; DESIGN.md calls out four of
them for ablation.  For each one this harness measures the all-layer (or the
relevant layer-kind) geometric-mean speedup over DPNN with the mechanism on
and off, across the six networks:

* **dynamic activation precision reduction** (Section 3.2, "Dynamic Precision
  Reduction") -- the Stripes vs DStripes gap applied to Loom;
* **SIP cascading** (Section 3.2, "Processing Layers with Few Outputs") --
  matters for the fully-connected layers with fewer than 2K outputs;
* **bit-interleaved storage** (Section 3.2, "Reducing Memory Footprint and
  Bandwidth") -- does not change compute cycles, so it is measured as the
  off-chip traffic ratio instead;
* **tiling organisation** (Section 3.2 / future work) -- the rigid
  128-filter x 16-window grid versus the window-major alternative, evaluated
  at a large configuration where under-utilisation bites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.accelerators import DPNN, AcceleratorConfig
from repro.core import Loom
from repro.experiments.common import build_profiled_network
from repro.quant import paper_networks
from repro.quant.dynamic import DynamicPrecisionModel
from repro.sim import geomean, run_network
from repro.sim.results import compare

__all__ = ["AblationResult", "run", "format_table"]


@dataclass
class AblationResult:
    """Geomean metric with each mechanism enabled vs disabled."""

    dynamic_precision: Tuple[float, float] = (0.0, 0.0)
    cascading: Tuple[float, float] = (0.0, 0.0)
    storage_traffic_ratio: Tuple[float, float] = (0.0, 0.0)
    tiling_at_512: Tuple[float, float] = (0.0, 0.0)

    def contribution(self, name: str) -> float:
        """Ratio of the enabled metric to the disabled metric."""
        enabled, disabled = getattr(self, name)
        if disabled == 0:
            return float("inf")
        return enabled / disabled


def _geomean_speedup(design, baseline, networks, kind=None) -> float:
    ratios = []
    for network in networks:
        base = run_network(baseline, network)
        ratios.append(compare(run_network(design, network), base, kind=kind).speedup)
    return geomean(ratios)


def run(networks: Optional[Tuple[str, ...]] = None,
        accuracy: str = "100%") -> AblationResult:
    """Run all four ablations."""
    names = networks or tuple(paper_networks())
    nets = [build_profiled_network(name, accuracy) for name in names]
    fc_nets = [n for n in nets if n.fc_layers()]
    config = AcceleratorConfig()
    dpnn = DPNN(config)
    result = AblationResult()

    # 1. Dynamic activation precision reduction (convolutional layers).
    with_dynamic = Loom(config)
    without_dynamic = Loom(config,
                           dynamic_precision=DynamicPrecisionModel(enabled=False))
    result.dynamic_precision = (
        _geomean_speedup(with_dynamic, dpnn, nets, kind="conv"),
        _geomean_speedup(without_dynamic, dpnn, nets, kind="conv"),
    )

    # 2. SIP cascading (fully-connected layers).
    with_cascade = Loom(config, use_cascading=True)
    without_cascade = Loom(config, use_cascading=False)
    result.cascading = (
        _geomean_speedup(with_cascade, dpnn, fc_nets, kind="fc"),
        _geomean_speedup(without_cascade, dpnn, fc_nets, kind="fc"),
    )

    # 3. Bit-interleaved storage: traffic ratio vs DPNN (lower is better, so
    # report DPNN traffic / Loom traffic -- "enabled" uses the precisions,
    # "disabled" is the 16-bit layout, i.e. exactly DPNN's traffic).
    loom = Loom(config)
    traffic_gains = []
    for network in nets:
        loom_bits = run_network(loom, network).total_traffic_bits()
        dpnn_bits = run_network(dpnn, network).total_traffic_bits()
        traffic_gains.append(dpnn_bits / loom_bits)
    result.storage_traffic_ratio = (geomean(traffic_gains), 1.0)

    # 4. Tiling organisation at the 512-MAC configuration.
    big_config = AcceleratorConfig(equivalent_macs=512)
    big_dpnn = DPNN(big_config)
    rigid = Loom(big_config)
    window_major = Loom(big_config, window_fanout=4)
    result.tiling_at_512 = (
        _geomean_speedup(window_major, big_dpnn, nets, kind="conv"),
        _geomean_speedup(rigid, big_dpnn, nets, kind="conv"),
    )
    return result


def format_table(result: Optional[AblationResult] = None) -> str:
    """Render the ablation study."""
    result = result if result is not None else run()
    rows = [
        ("dynamic activation precision (conv speedup)", "dynamic_precision"),
        ("SIP cascading (FC speedup)", "cascading"),
        ("bit-interleaved storage (traffic reduction)", "storage_traffic_ratio"),
        ("window-major tiling at 512 MACs (conv speedup)", "tiling_at_512"),
    ]
    lines = ["== Ablation: contribution of each Loom mechanism =="]
    lines.append(f"{'mechanism':<48s} {'enabled':>9s} {'disabled':>9s} "
                 f"{'gain':>7s}")
    for label, attribute in rows:
        enabled, disabled = getattr(result, attribute)
        lines.append(f"{label:<48s} {enabled:>9.2f} {disabled:>9.2f} "
                     f"{result.contribution(attribute):>7.2f}")
    return "\n".join(lines)
