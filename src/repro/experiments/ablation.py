"""Ablation study: how much each of Loom's mechanisms contributes.

The paper's design combines several mechanisms; DESIGN.md calls out four of
them for ablation.  For each one this harness measures the all-layer (or the
relevant layer-kind) geometric-mean speedup over DPNN with the mechanism on
and off, across the six networks:

* **dynamic activation precision reduction** (Section 3.2, "Dynamic Precision
  Reduction") -- the Stripes vs DStripes gap applied to Loom;
* **SIP cascading** (Section 3.2, "Processing Layers with Few Outputs") --
  matters for the fully-connected layers with fewer than 2K outputs;
* **bit-interleaved storage** (Section 3.2, "Reducing Memory Footprint and
  Bandwidth") -- does not change compute cycles, so it is measured as the
  off-chip traffic ratio instead;
* **tiling organisation** (Section 3.2 / future work) -- the rigid
  128-filter x 16-window grid versus the window-major alternative, evaluated
  at a large configuration where under-utilisation bites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.accelerators import AcceleratorConfig
from repro.experiments.common import loom_spec
from repro.quant import paper_networks
from repro.quant.dynamic import DynamicPrecisionModel
from repro.sim import AcceleratorSpec, NetworkSpec, SimJob, geomean
from repro.sim.jobs import get_default_executor, network_layer_counts
from repro.sim.results import compare

__all__ = ["AblationResult", "run", "format_table"]


@dataclass
class AblationResult:
    """Geomean metric with each mechanism enabled vs disabled."""

    dynamic_precision: Tuple[float, float] = (0.0, 0.0)
    cascading: Tuple[float, float] = (0.0, 0.0)
    storage_traffic_ratio: Tuple[float, float] = (0.0, 0.0)
    tiling_at_512: Tuple[float, float] = (0.0, 0.0)

    def contribution(self, name: str) -> float:
        """Ratio of the enabled metric to the disabled metric."""
        enabled, disabled = getattr(self, name)
        if disabled == 0:
            return float("inf")
        return enabled / disabled


def _geomean_speedup(executor, design_spec, baseline_spec, nets, config,
                     kind=None) -> float:
    jobs = []
    for net in nets:
        jobs.append(SimJob(network=net, accelerator=baseline_spec, config=config))
        jobs.append(SimJob(network=net, accelerator=design_spec, config=config))
    flat = executor.run(jobs)
    ratios = [
        compare(flat[2 * i + 1], flat[2 * i], kind=kind).speedup
        for i in range(len(nets))
    ]
    return geomean(ratios)


def run(networks: Optional[Tuple[str, ...]] = None,
        accuracy: str = "100%", executor=None) -> AblationResult:
    """Run all four ablations (job matrices dispatched via ``executor``)."""
    names = networks or tuple(paper_networks())
    executor = executor if executor is not None else get_default_executor()
    nets = [NetworkSpec(name, accuracy) for name in names]
    fc_nets = [n for n in nets if network_layer_counts(n.name)[1] > 0]
    config = AcceleratorConfig()
    dpnn = AcceleratorSpec.create("dpnn")
    result = AblationResult()

    # 1. Dynamic activation precision reduction (convolutional layers).
    with_dynamic = loom_spec()
    without_dynamic = loom_spec(
        dynamic_precision=DynamicPrecisionModel(enabled=False))
    result.dynamic_precision = (
        _geomean_speedup(executor, with_dynamic, dpnn, nets, config, kind="conv"),
        _geomean_speedup(executor, without_dynamic, dpnn, nets, config,
                         kind="conv"),
    )

    # 2. SIP cascading (fully-connected layers).
    with_cascade = loom_spec(use_cascading=True)
    without_cascade = loom_spec(use_cascading=False)
    result.cascading = (
        _geomean_speedup(executor, with_cascade, dpnn, fc_nets, config,
                         kind="fc"),
        _geomean_speedup(executor, without_cascade, dpnn, fc_nets, config,
                         kind="fc"),
    )

    # 3. Bit-interleaved storage: traffic ratio vs DPNN (lower is better, so
    # report DPNN traffic / Loom traffic -- "enabled" uses the precisions,
    # "disabled" is the 16-bit layout, i.e. exactly DPNN's traffic).
    jobs = []
    for net in nets:
        jobs.append(SimJob(network=net, accelerator=loom_spec(), config=config))
        jobs.append(SimJob(network=net, accelerator=dpnn, config=config))
    flat = executor.run(jobs)
    traffic_gains = [
        flat[2 * i + 1].total_traffic_bits() / flat[2 * i].total_traffic_bits()
        for i in range(len(nets))
    ]
    result.storage_traffic_ratio = (geomean(traffic_gains), 1.0)

    # 4. Tiling organisation at the 512-MAC configuration.
    big_config = AcceleratorConfig(equivalent_macs=512)
    rigid = loom_spec()
    window_major = loom_spec(window_fanout=4)
    result.tiling_at_512 = (
        _geomean_speedup(executor, window_major, dpnn, nets, big_config,
                         kind="conv"),
        _geomean_speedup(executor, rigid, dpnn, nets, big_config, kind="conv"),
    )
    return result


def format_table(result: Optional[AblationResult] = None) -> str:
    """Render the ablation study."""
    result = result if result is not None else run()
    rows = [
        ("dynamic activation precision (conv speedup)", "dynamic_precision"),
        ("SIP cascading (FC speedup)", "cascading"),
        ("bit-interleaved storage (traffic reduction)", "storage_traffic_ratio"),
        ("window-major tiling at 512 MACs (conv speedup)", "tiling_at_512"),
    ]
    lines = ["== Ablation: contribution of each Loom mechanism =="]
    lines.append(f"{'mechanism':<48s} {'enabled':>9s} {'disabled':>9s} "
                 f"{'gain':>7s}")
    for label, attribute in rows:
        enabled, disabled = getattr(result, attribute)
        lines.append(f"{label:<48s} {enabled:>9.2f} {disabled:>9.2f} "
                     f"{result.contribution(attribute):>7.2f}")
    return "\n".join(lines)
