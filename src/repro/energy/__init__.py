"""Technology, area and energy models.

The paper reports *relative* area and energy numbers obtained from 65 nm
layouts (Synopsys DC + Cadence Innovus) with CACTI/Destiny for the memories.
We reproduce that flow with analytical models:

* :mod:`repro.energy.tech` -- the 65 nm technology parameter set: per-component
  energies and areas (multipliers, adders, registers, SIP sub-blocks), with
  coefficients calibrated so that the *relative* datapath power and area of
  the studied designs land where the paper's layouts put them (see
  EXPERIMENTS.md for the calibration check).
* :mod:`repro.energy.area` -- composes component areas into per-design area
  (DPNN, Stripes, Loom 1/2/4-bit) plus the memory area from
  :mod:`repro.memory`.
* :mod:`repro.energy.power` -- activity-factor-based dynamic energy per cycle
  for each datapath, combined with the traffic-based memory energy to give
  per-layer and per-network energy.
"""

from repro.energy.tech import TechnologyParameters, TSMC_65NM
from repro.energy.area import AreaModel, DatapathArea
from repro.energy.power import PowerModel, DatapathPower

__all__ = [
    "TechnologyParameters",
    "TSMC_65NM",
    "AreaModel",
    "DatapathArea",
    "PowerModel",
    "DatapathPower",
]
