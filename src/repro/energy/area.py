"""Area model for the studied designs.

Composes per-component areas (:mod:`repro.energy.tech`) into datapath (core)
areas for DPNN, Stripes and the Loom variants, and adds the on-chip memory
area from :mod:`repro.memory` for full-chip comparisons (used by the Figure 5
scaling study).  Section 4.4's relative core areas (LM1b 1.34x, LM2b 1.25x,
LM4b 1.16x over DPNN) are the calibration targets; EXPERIMENTS.md records what
this model produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.energy.tech import TechnologyParameters, TSMC_65NM
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["DatapathArea", "AreaModel"]

#: Lanes per inner-product unit in the baseline (N in the paper).
LANES_PER_IP = 16


@dataclass(frozen=True)
class DatapathArea:
    """Core (datapath) area of each design, in mm^2."""

    tech: TechnologyParameters = TSMC_65NM

    # -- unit-level areas (um^2) ---------------------------------------------------

    def dpnn_ip_unit_um2(self) -> float:
        t = self.tech
        multipliers = LANES_PER_IP * t.mult16_area_um2
        adder_tree = (LANES_PER_IP - 1) * t.add32_area_um2
        accumulator = t.add32_area_um2
        registers = LANES_PER_IP * t.reg16_area_um2
        return multipliers + adder_tree + accumulator + registers

    def loom_sip_um2(self, bits_per_cycle: int = 1) -> float:
        if bits_per_cycle < 1:
            raise ValueError(f"bits_per_cycle must be >= 1, got {bits_per_cycle}")
        t = self.tech
        products = LANES_PER_IP * bits_per_cycle
        and_gates = products * t.and_gate_area_um2
        adder_tree = products * t.serial_tree_area_um2_per_input
        accumulator = t.accumulator_area_um2
        weight_regs = LANES_PER_IP * t.bit_register_area_um2
        return and_gates + adder_tree + accumulator + weight_regs

    def stripes_unit_um2(self) -> float:
        t = self.tech
        gating = LANES_PER_IP * LANES_PER_IP * t.and_gate_area_um2
        adder_tree = (LANES_PER_IP - 1) * t.add32_area_um2 * 0.6
        accumulator = t.add32_area_um2
        return gating + adder_tree + accumulator + t.stripes_unit_overhead_area_um2

    # -- design-level core areas (mm^2) ---------------------------------------------

    def _check_scale(self, equivalent_macs: int) -> None:
        if equivalent_macs < LANES_PER_IP or equivalent_macs % LANES_PER_IP:
            raise ValueError(
                f"equivalent_macs must be a positive multiple of {LANES_PER_IP}, "
                f"got {equivalent_macs}"
            )

    def dpnn_core_mm2(self, equivalent_macs: int = 128) -> float:
        self._check_scale(equivalent_macs)
        units = equivalent_macs // LANES_PER_IP
        return units * self.dpnn_ip_unit_um2() / 1e6

    def loom_core_mm2(self, equivalent_macs: int = 128, bits_per_cycle: int = 1,
                      dynamic_precision: bool = True) -> float:
        self._check_scale(equivalent_macs)
        if LANES_PER_IP % bits_per_cycle:
            raise ValueError(
                f"bits_per_cycle must divide {LANES_PER_IP}, got {bits_per_cycle}"
            )
        columns = LANES_PER_IP // bits_per_cycle
        sips = equivalent_macs * columns
        area_um2 = sips * self.loom_sip_um2(bits_per_cycle)
        if dynamic_precision:
            area_um2 += LANES_PER_IP * self.tech.precision_detect_area_um2
        return area_um2 / 1e6

    def stripes_core_mm2(self, equivalent_macs: int = 128,
                         dynamic_precision: bool = False) -> float:
        self._check_scale(equivalent_macs)
        area_um2 = equivalent_macs * self.stripes_unit_um2()
        if dynamic_precision:
            area_um2 += LANES_PER_IP * self.tech.precision_detect_area_um2
        return area_um2 / 1e6


@dataclass(frozen=True)
class AreaModel:
    """Full design area: datapath core plus on-chip memories."""

    datapath: DatapathArea = DatapathArea()

    def total_mm2(self, core_mm2: float,
                  hierarchy: Optional[MemoryHierarchy] = None) -> float:
        """Core area plus memory area for a configuration."""
        if core_mm2 < 0:
            raise ValueError(f"core_mm2 must be >= 0, got {core_mm2}")
        if hierarchy is None:
            return core_mm2
        return core_mm2 + hierarchy.total_onchip_area_mm2

    def relative_core_area(self, design_core_mm2: float,
                           baseline_core_mm2: float) -> float:
        """The Section 4.4 metric: design core area over DPNN core area."""
        if baseline_core_mm2 <= 0:
            raise ValueError("baseline_core_mm2 must be > 0")
        return design_core_mm2 / baseline_core_mm2
