"""Technology parameters for the 65 nm process the paper targets.

The constants below play the role of the synthesis + layout characterisation
in the paper: per-operation dynamic energies and per-unit areas for the
datapath building blocks, at the typical corner and 1 GHz.  Absolute values
are in the right ballpark for a 65 nm process, and -- more importantly for a
reproduction whose targets are *relative* numbers -- the ratios between the
blocks are calibrated so that the derived design-level ratios match what the
paper measured from its layouts:

* Loom-1b datapath power  ~= 1.2x DPNN (paper: perf/eff ratios imply ~1.23x),
* Loom-2b ~= 1.05x, Loom-4b ~= 0.95x, Stripes ~= 1.14x,
* Loom-1b core area ~= 1.34x DPNN, Loom-2b ~= 1.25x, Loom-4b ~= 1.16x.

EXPERIMENTS.md records the values these models actually produce.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParameters", "TSMC_65NM"]


@dataclass(frozen=True)
class TechnologyParameters:
    """Per-component energy (pJ) and area (um^2) figures for one process corner."""

    name: str
    feature_nm: float
    clock_ghz: float
    nominal_vdd: float

    # ---- bit-parallel datapath components (DPNN inner-product units) ----------
    #: 16b x 16b multiplier, one operation.
    mult16_energy_pj: float
    #: 32-bit adder, one operation (adder-tree node / accumulator).
    add32_energy_pj: float
    #: 16-bit pipeline/weight register, per cycle.
    reg16_energy_pj: float

    # ---- bit-serial datapath components (Loom / Stripes SIPs) -----------------
    #: One 2-input AND gate toggling, per cycle.
    and_gate_energy_pj: float
    #: One input of a 1-bit-operand adder tree (amortised tree node energy).
    serial_tree_energy_pj_per_input: float
    #: AC1/AC2 shift-accumulator pair plus output register, per cycle.
    accumulator_energy_pj: float
    #: One 1-bit weight register, per cycle.
    bit_register_energy_pj: float
    #: Per-cycle overhead of a Stripes serial IP beyond its AND/tree/accumulator
    #: (weight lanes are full 16-bit, so its gating and tree are wider).
    stripes_unit_overhead_pj: float
    #: Dynamic precision detection logic (OR tree + leading-one detector) per
    #: group of 16 activations, per detection.
    precision_detect_energy_pj: float

    # ---- areas (um^2) -----------------------------------------------------------
    mult16_area_um2: float
    add32_area_um2: float
    reg16_area_um2: float
    and_gate_area_um2: float
    serial_tree_area_um2_per_input: float
    accumulator_area_um2: float
    bit_register_area_um2: float
    stripes_unit_overhead_area_um2: float
    precision_detect_area_um2: float

    #: Global activity factor applied to datapath dynamic energy (data-driven
    #: switching observed by the paper's power analysis).
    activity_factor: float = 0.55

    def __post_init__(self) -> None:
        numeric_fields = [
            self.feature_nm, self.clock_ghz, self.nominal_vdd,
            self.mult16_energy_pj, self.add32_energy_pj, self.reg16_energy_pj,
            self.and_gate_energy_pj, self.serial_tree_energy_pj_per_input,
            self.accumulator_energy_pj, self.bit_register_energy_pj,
            self.stripes_unit_overhead_pj, self.precision_detect_energy_pj,
            self.mult16_area_um2, self.add32_area_um2, self.reg16_area_um2,
            self.and_gate_area_um2, self.serial_tree_area_um2_per_input,
            self.accumulator_area_um2, self.bit_register_area_um2,
            self.stripes_unit_overhead_area_um2, self.precision_detect_area_um2,
        ]
        if any(v <= 0 for v in numeric_fields):
            raise ValueError("all technology parameters must be positive")
        if not 0.0 < self.activity_factor <= 1.0:
            raise ValueError(
                f"activity_factor must be in (0, 1], got {self.activity_factor}"
            )


#: The default technology: TSMC 65 nm, typical corner, 1 GHz (as in the paper).
TSMC_65NM = TechnologyParameters(
    name="TSMC 65nm (typical corner)",
    feature_nm=65.0,
    clock_ghz=1.0,
    nominal_vdd=1.0,
    # Bit-parallel components.
    mult16_energy_pj=0.58,
    add32_energy_pj=0.05,
    reg16_energy_pj=0.02,
    # Bit-serial components.  The accumulator / bit-register vs. AND/adder-tree
    # split is calibrated so that the design-level power ratios of Loom-1b/2b/4b
    # and Stripes versus DPNN land at the values the paper's layouts imply
    # (~1.23x / ~1.06x / ~0.98x / ~1.14x).
    and_gate_energy_pj=0.0006,
    serial_tree_energy_pj_per_input=0.00166,
    accumulator_energy_pj=0.0106,
    bit_register_energy_pj=0.0002,
    stripes_unit_overhead_pj=0.04,
    precision_detect_energy_pj=0.020,
    # Areas.  As with energy, the serial-component areas are *effective*
    # coefficients calibrated against the paper's post-layout relative areas
    # (Loom-1b 1.34x, Loom-2b 1.25x, Loom-4b ~1.16x DPNN); they fold in the
    # heavy logic sharing and custom layout of the real SIP array.
    mult16_area_um2=1580.0,
    add32_area_um2=280.0,
    reg16_area_um2=95.0,
    and_gate_area_um2=1.8,
    serial_tree_area_um2_per_input=7.06,
    accumulator_area_um2=10.0,
    bit_register_area_um2=0.75,
    stripes_unit_overhead_area_um2=40.0,
    precision_detect_area_um2=120.0,
)
