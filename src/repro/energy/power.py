"""Datapath power model with data-driven activity factors.

The paper's power results come from gate-level activity of the laid-out
designs.  We reproduce the structure of that measurement: every design's
datapath dynamic energy per cycle is composed from per-component energies
(:mod:`repro.energy.tech`) times the number of active components, scaled by a
global activity factor; memory energy is accounted separately from traffic by
:class:`repro.memory.hierarchy.MemoryHierarchy`.

Design compositions
-------------------

* **DPNN** with an equivalent peak of ``E`` 16b MACs/cycle has ``E / 16``
  inner-product units, each with 16 multipliers, a 15-node 32-bit adder tree
  and an accumulator.
* **Loom-b** (b activation bits per cycle) has ``E x 16 / b`` SIPs; each SIP
  has ``16 x b`` AND gates and adder-tree inputs, one AC1/AC2 accumulator pair
  and 16 single-bit weight registers.  The total AND/adder-tree energy is
  therefore independent of ``b`` (the same number of 1-bit products per
  cycle), while the accumulator/register energy shrinks with fewer SIPs --
  which is exactly why LM2b/LM4b are more energy efficient.
* **Stripes** has ``E`` serial inner-product units (16 window lanes per
  filter), each gating 16 full-width weights with one activation bit and
  reducing them through a 16-input adder tree.
* **DStripes** and Loom's dynamic-precision mode add the per-group precision
  detection logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.tech import TechnologyParameters, TSMC_65NM

__all__ = ["DatapathPower", "PowerModel"]

#: Lanes per inner-product unit in the baseline (N in the paper).
LANES_PER_IP = 16


@dataclass(frozen=True)
class DatapathPower:
    """Per-cycle dynamic energy of each design's datapath."""

    tech: TechnologyParameters = TSMC_65NM

    # -- unit-level energies -----------------------------------------------------

    def dpnn_ip_unit_pj(self) -> float:
        """One DPNN inner-product unit (16 mults + adder tree + accumulator)."""
        t = self.tech
        multipliers = LANES_PER_IP * t.mult16_energy_pj
        adder_tree = (LANES_PER_IP - 1) * t.add32_energy_pj
        accumulator = t.add32_energy_pj
        registers = LANES_PER_IP * t.reg16_energy_pj
        return multipliers + adder_tree + accumulator + registers

    def loom_sip_pj(self, bits_per_cycle: int = 1) -> float:
        """One Loom SIP processing ``bits_per_cycle`` activation bits per cycle."""
        if bits_per_cycle < 1:
            raise ValueError(f"bits_per_cycle must be >= 1, got {bits_per_cycle}")
        t = self.tech
        products = LANES_PER_IP * bits_per_cycle
        and_gates = products * t.and_gate_energy_pj
        adder_tree = products * t.serial_tree_energy_pj_per_input
        accumulator = t.accumulator_energy_pj
        weight_regs = LANES_PER_IP * t.bit_register_energy_pj
        return and_gates + adder_tree + accumulator + weight_regs

    def stripes_unit_pj(self) -> float:
        """One Stripes serial IP (16 full-width weights gated by 1 activation bit)."""
        t = self.tech
        # 16 weight lanes x 16 bits of gating.
        gating = LANES_PER_IP * LANES_PER_IP * t.and_gate_energy_pj
        # 16-input adder tree over ~20-bit partial sums (narrower than 32b).
        adder_tree = (LANES_PER_IP - 1) * t.add32_energy_pj * 0.6
        accumulator = t.add32_energy_pj
        return gating + adder_tree + accumulator + t.stripes_unit_overhead_pj

    # -- design-level energies -----------------------------------------------------

    def _check_scale(self, equivalent_macs: int) -> None:
        if equivalent_macs < LANES_PER_IP or equivalent_macs % LANES_PER_IP:
            raise ValueError(
                f"equivalent_macs must be a positive multiple of {LANES_PER_IP}, "
                f"got {equivalent_macs}"
            )

    def dpnn_pj_per_cycle(self, equivalent_macs: int = 128) -> float:
        """DPNN datapath energy per cycle at the given peak-MAC scale."""
        self._check_scale(equivalent_macs)
        units = equivalent_macs // LANES_PER_IP
        return units * self.dpnn_ip_unit_pj() * self.tech.activity_factor

    def loom_pj_per_cycle(self, equivalent_macs: int = 128,
                          bits_per_cycle: int = 1,
                          dynamic_precision: bool = True) -> float:
        """Loom datapath energy per cycle (LM-``bits_per_cycle``b)."""
        self._check_scale(equivalent_macs)
        if LANES_PER_IP % bits_per_cycle:
            raise ValueError(
                f"bits_per_cycle must divide {LANES_PER_IP}, got {bits_per_cycle}"
            )
        columns = LANES_PER_IP // bits_per_cycle
        sips = equivalent_macs * columns
        energy = sips * self.loom_sip_pj(bits_per_cycle)
        if dynamic_precision:
            # One detector per group of 16 concurrently-arriving activations.
            detectors = LANES_PER_IP
            energy += detectors * self.tech.precision_detect_energy_pj
        return energy * self.tech.activity_factor

    def stripes_pj_per_cycle(self, equivalent_macs: int = 128,
                             dynamic_precision: bool = False) -> float:
        """Stripes (or DStripes when ``dynamic_precision``) energy per cycle."""
        self._check_scale(equivalent_macs)
        units = equivalent_macs
        energy = units * self.stripes_unit_pj()
        if dynamic_precision:
            detectors = LANES_PER_IP
            energy += detectors * self.tech.precision_detect_energy_pj
        return energy * self.tech.activity_factor


@dataclass(frozen=True)
class PowerModel:
    """Combines datapath and memory energy into per-layer totals."""

    datapath: DatapathPower = DatapathPower()

    def layer_energy_pj(self, cycles: float, datapath_pj_per_cycle: float,
                        memory_energy_pj: float) -> float:
        """Total energy of a layer.

        ``cycles`` is the layer's execution time; the datapath burns its
        per-cycle energy for every cycle it is occupied (idle bubbles in
        bandwidth-bound layers clock-gate, so only compute cycles are charged
        by callers that distinguish the two), and memory energy is the
        traffic-based term computed by the memory hierarchy.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        if datapath_pj_per_cycle < 0 or memory_energy_pj < 0:
            raise ValueError("energy terms must be >= 0")
        return cycles * datapath_pj_per_cycle + memory_energy_pj
