"""Memory-system substrate: on-chip buffers, eDRAM, off-chip DRAM and layouts.

The paper's memory system consists of:

* small SRAM input/output activation buffers (ABin / ABout) modelled after
  CACTI -- :mod:`repro.memory.sram`;
* multi-megabyte eDRAM activation and weight memories (AM / WM) modelled
  after Destiny -- :mod:`repro.memory.edram`;
* an optional single-channel LPDDR4-4267 off-chip memory used by the Figure 5
  scaling study -- :mod:`repro.memory.dram`;
* the bit-interleaved storage layout (and output transposer) that lets Loom
  store and move only as many bits as the per-layer precision requires --
  :mod:`repro.memory.layout`;
* a hierarchy model that combines the above into per-layer traffic and
  memory-bound execution-time estimates -- :mod:`repro.memory.hierarchy`.
"""

from repro.memory.sram import SRAMBuffer
from repro.memory.edram import EDRAMMemory
from repro.memory.dram import DRAMChannel, LPDDR4_4267
from repro.memory.layout import (
    BitInterleavedLayout,
    BitParallelLayout,
    Transposer,
    footprint_bits,
)
from repro.memory.hierarchy import MemoryHierarchy, LayerTraffic

__all__ = [
    "SRAMBuffer",
    "EDRAMMemory",
    "DRAMChannel",
    "LPDDR4_4267",
    "BitInterleavedLayout",
    "BitParallelLayout",
    "Transposer",
    "footprint_bits",
    "MemoryHierarchy",
    "LayerTraffic",
]
