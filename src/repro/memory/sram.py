"""CACTI-style analytical SRAM buffer model.

The paper models the ABin and ABout activation buffers with CACTI 6.0 on a
65 nm process.  We reproduce the behaviour that matters for the evaluation --
per-access energy and area that grow with capacity and port width -- with a
small analytical model whose coefficients are calibrated so that the buffer
contribution to the total energy matches the relative numbers the paper
reports (buffers are a second-order term next to the eDRAM and the datapath).

The model intentionally exposes the same quantities CACTI would: read/write
energy per access, leakage power and area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SRAMBuffer"]


@dataclass(frozen=True)
class SRAMBuffer:
    """An on-chip SRAM buffer (ABin / ABout).

    Parameters
    ----------
    name:
        Buffer name, e.g. ``"ABin"``.
    capacity_bytes:
        Total capacity in bytes.
    width_bits:
        Access-port width in bits (one row per access).
    banks:
        Number of independent banks; energy per access is per bank access,
        area scales with the total capacity.
    technology_nm:
        Feature size; the default 65 nm matches the paper.
    """

    name: str
    capacity_bytes: int
    width_bits: int
    banks: int = 1
    technology_nm: float = 65.0

    # Calibration constants (65 nm): energy per accessed bit and per-byte area.
    _BASE_READ_ENERGY_PJ_PER_BIT: float = 0.012
    _BASE_WRITE_ENERGY_PJ_PER_BIT: float = 0.014
    _AREA_MM2_PER_KB: float = 0.0075
    _LEAKAGE_MW_PER_KB: float = 0.009

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {self.capacity_bytes}")
        if self.width_bits < 1:
            raise ValueError(f"width_bits must be >= 1, got {self.width_bits}")
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")

    # -- derived geometry ------------------------------------------------------

    @property
    def capacity_bits(self) -> int:
        return self.capacity_bytes * 8

    @property
    def rows(self) -> int:
        """Number of addressable rows of ``width_bits`` each."""
        return max(1, self.capacity_bits // (self.width_bits * self.banks))

    def _size_factor(self) -> float:
        """Energy grows mildly with capacity (longer bit/word lines)."""
        kb = self.capacity_bytes / 1024.0
        return 1.0 + 0.08 * math.log2(max(1.0, kb))

    def _tech_factor(self) -> float:
        """Quadratic-ish scaling of dynamic energy with feature size."""
        return (self.technology_nm / 65.0) ** 2

    # -- CACTI-like outputs ------------------------------------------------------

    def read_energy_pj(self, bits: int | None = None) -> float:
        """Energy of reading ``bits`` bits (default: one full-width access).

        ``bits`` may be a NumPy array (used by the fast-path engine).
        """
        bits = self.width_bits if bits is None else bits
        if np.any(np.asarray(bits) < 0):
            raise ValueError(f"bits must be >= 0, got {bits}")
        return (self._BASE_READ_ENERGY_PJ_PER_BIT * bits * self._size_factor()
                * self._tech_factor())

    def write_energy_pj(self, bits: int | None = None) -> float:
        """Energy of writing ``bits`` bits (default: one full-width access).

        ``bits`` may be a NumPy array (used by the fast-path engine).
        """
        bits = self.width_bits if bits is None else bits
        if np.any(np.asarray(bits) < 0):
            raise ValueError(f"bits must be >= 0, got {bits}")
        return (self._BASE_WRITE_ENERGY_PJ_PER_BIT * bits * self._size_factor()
                * self._tech_factor())

    @property
    def area_mm2(self) -> float:
        """Silicon area of the buffer."""
        kb = self.capacity_bytes / 1024.0
        # Wide ports add peripheral area.
        port_factor = 1.0 + 0.05 * math.log2(max(1.0, self.width_bits / 64.0))
        return self._AREA_MM2_PER_KB * kb * port_factor * (
            (self.technology_nm / 65.0) ** 2
        )

    @property
    def leakage_mw(self) -> float:
        kb = self.capacity_bytes / 1024.0
        return self._LEAKAGE_MW_PER_KB * kb * (self.technology_nm / 65.0)

    def accesses_for_bits(self, bits: float) -> int:
        """Number of full-width accesses needed to move ``bits`` bits."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return int(math.ceil(bits / self.width_bits))
