"""Destiny-style analytical eDRAM model for the activation and weight memories.

DaDianNao-class accelerators keep activations (AM) and weights (WM) in
multi-megabyte on-chip eDRAM.  The paper models these with Destiny.  As with
the SRAM model, what the evaluation needs is per-bit access energy, area and
refresh/leakage power with sensible scaling in capacity; absolute values are
calibrated so the relative energy results match the paper (eDRAM accesses and
the datapath dominate total energy, off-chip DRAM is two orders of magnitude
more expensive per bit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["EDRAMMemory"]


@dataclass(frozen=True)
class EDRAMMemory:
    """An on-chip eDRAM macro (AM or WM).

    Parameters
    ----------
    name:
        Memory name, e.g. ``"AM"`` or ``"WM"``.
    capacity_bytes:
        Total capacity.
    width_bits:
        Interface width per access (2048 bits for the weight memory feeding
        128 filter lanes x 16 bits, 256 bits for the activation memory).
    banks:
        Number of banks (DaDianNao-style designs use heavily banked eDRAM).
    technology_nm:
        Feature size, 65 nm by default.
    """

    name: str
    capacity_bytes: int
    width_bits: int
    banks: int = 16
    technology_nm: float = 65.0

    # Calibration constants (65 nm eDRAM).
    _BASE_ACCESS_ENERGY_PJ_PER_BIT: float = 0.05
    _AREA_MM2_PER_MB: float = 2.4
    _REFRESH_MW_PER_MB: float = 0.65

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {self.capacity_bytes}")
        if self.width_bits < 1:
            raise ValueError(f"width_bits must be >= 1, got {self.width_bits}")
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")

    @property
    def capacity_bits(self) -> int:
        return self.capacity_bytes * 8

    @property
    def capacity_mb(self) -> float:
        return self.capacity_bytes / (1024.0 * 1024.0)

    def _size_factor(self) -> float:
        mb = max(self.capacity_mb, 1.0 / 1024.0)
        return 1.0 + 0.10 * math.log2(max(1.0, mb * 4.0))

    def _tech_factor(self) -> float:
        return (self.technology_nm / 65.0) ** 2

    def access_energy_pj(self, bits: float | None = None) -> float:
        """Energy to read or write ``bits`` bits (default one full access).

        ``bits`` may be a NumPy array (the fast-path engine batches whole
        networks); the expression is identical elementwise.
        """
        bits = self.width_bits if bits is None else bits
        if np.any(np.asarray(bits) < 0):
            raise ValueError(f"bits must be >= 0, got {bits}")
        return (self._BASE_ACCESS_ENERGY_PJ_PER_BIT * bits * self._size_factor()
                * self._tech_factor())

    @property
    def area_mm2(self) -> float:
        return self._AREA_MM2_PER_MB * self.capacity_mb * (
            (self.technology_nm / 65.0) ** 2
        )

    @property
    def refresh_power_mw(self) -> float:
        return self._REFRESH_MW_PER_MB * self.capacity_mb

    def accesses_for_bits(self, bits: float) -> int:
        """Number of full-width accesses needed to move ``bits`` bits."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return int(math.ceil(bits / self.width_bits))

    def fits(self, bits: float) -> bool:
        """Whether a footprint of ``bits`` bits fits in this memory."""
        return bits <= self.capacity_bits
