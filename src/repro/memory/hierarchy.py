"""Memory hierarchy model: per-layer traffic and memory-bound time.

This ties the individual memory models together the way the paper's systems
are organised:

* Weights live off-chip and stream through the on-chip weight memory (WM).
  Convolutional layers reuse each weight across many windows so their
  execution is compute bound; fully-connected layers use each weight exactly
  once, so their execution time is bounded by how fast the weights can be
  brought in (the off-chip channel when one is modelled).
* Activations live in the on-chip activation memory (AM) whenever the layer's
  input + output footprint fits; otherwise they spill off-chip (the VGG-19
  case the paper calls out).  Loom stores activations bit-interleaved so its
  footprint is precision-scaled, which is why it needs a 1 MB AM where DPNN
  needs 2 MB.
* The ABin/ABout SRAM buffers and the transposer sit between AM and the
  datapath; their traffic equals the activation traffic.

The hierarchy produces a :class:`LayerTraffic` record per layer; the
accelerator models combine it with their compute-cycle counts (execution time
is the max of compute and memory time) and hand both to the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.memory.dram import DRAMChannel
from repro.memory.edram import EDRAMMemory
from repro.memory.layout import BitInterleavedLayout, BitParallelLayout, Transposer
from repro.memory.sram import SRAMBuffer

__all__ = ["LayerTraffic", "MemoryHierarchy"]

Layout = Union[BitParallelLayout, BitInterleavedLayout]


@dataclass(frozen=True)
class LayerTraffic:
    """Bits moved for one layer, split by destination."""

    weight_bits: float
    activation_in_bits: float
    activation_out_bits: float
    offchip_bits: float
    activations_fit_on_chip: bool
    weights_fit_on_chip: bool = True

    @property
    def total_onchip_bits(self) -> float:
        return self.weight_bits + self.activation_in_bits + self.activation_out_bits

    @property
    def total_bits(self) -> float:
        return self.total_onchip_bits


@dataclass
class MemoryHierarchy:
    """The on-/off-chip memory system of one accelerator configuration.

    Parameters
    ----------
    activation_memory / weight_memory:
        The eDRAM macros.
    abin / about:
        The SRAM staging buffers.
    activation_layout / weight_layout:
        Storage layouts; Loom uses :class:`BitInterleavedLayout` for both,
        DPNN uses :class:`BitParallelLayout`.
    dram:
        Optional off-chip channel.  ``None`` reproduces the paper's first
        evaluation mode ("weights can be read from off-chip memory without any
        bandwidth constraint"); Figure 5 attaches an LPDDR4-4267 channel.
    transposer:
        Output transposer (only meaningful for bit-interleaved designs).
    clock_ghz:
        Accelerator clock used to convert off-chip bandwidth into cycles.
    """

    activation_memory: EDRAMMemory
    weight_memory: EDRAMMemory
    abin: SRAMBuffer
    about: SRAMBuffer
    activation_layout: Layout = field(default_factory=BitParallelLayout)
    weight_layout: Layout = field(default_factory=BitParallelLayout)
    dram: Optional[DRAMChannel] = None
    transposer: Optional[Transposer] = None
    clock_ghz: float = 1.0
    #: Whether off-chip transfer energy is included in memory_energy_pj.  The
    #: paper's reported energy numbers exclude off-chip traffic energy (it
    #: notes separately that Loom moves ~0.61x the off-chip bits).
    charge_offchip_energy: bool = True

    # -- traffic -----------------------------------------------------------------

    def layer_traffic(
        self,
        weight_count: int,
        input_activations: int,
        output_activations: int,
        weight_bits: int,
        activation_bits: int,
        is_fc: bool,
    ) -> LayerTraffic:
        """Compute the traffic of one layer.

        ``weight_bits`` / ``activation_bits`` are the storage precisions; the
        bit-parallel layout ignores them and always moves 16 bits per value.
        """
        w_bits = self.weight_layout.traffic_bits(weight_count, weight_bits)
        a_in_bits = self.activation_layout.traffic_bits(
            input_activations, activation_bits
        )
        a_out_bits = self.activation_layout.traffic_bits(
            output_activations, activation_bits
        )
        act_footprint = a_in_bits + a_out_bits
        activations_fit = self.activation_memory.fits(act_footprint)
        weights_fit = self.weight_memory.fits(w_bits) and not is_fc

        # Weights always cross the off-chip interface once per frame (they are
        # too large to persist on chip across frames); activations only when
        # the layer does not fit in AM.
        offchip = w_bits
        if not activations_fit:
            offchip += act_footprint
        return LayerTraffic(
            weight_bits=w_bits,
            activation_in_bits=a_in_bits,
            activation_out_bits=a_out_bits,
            offchip_bits=offchip,
            activations_fit_on_chip=activations_fit,
            weights_fit_on_chip=weights_fit,
        )

    # -- timing ------------------------------------------------------------------

    def memory_cycles(self, traffic: LayerTraffic) -> float:
        """Cycles the off-chip channel needs for this layer (0 if unconstrained)."""
        if self.dram is None:
            return 0.0
        return self.dram.transfer_cycles(traffic.offchip_bits, self.clock_ghz)

    # -- energy ------------------------------------------------------------------

    def memory_energy_pj(self, traffic: LayerTraffic,
                         output_activations: int = 0) -> float:
        """Energy of all memory movement for this layer.

        Includes eDRAM accesses for weights and activations, SRAM buffer
        traffic, the transposer (bit-interleaved designs only) and off-chip
        transfers when a DRAM channel is attached.
        """
        energy = 0.0
        # Weight memory: convolutional weights are resident in WM and reused
        # across windows, so they are charged one eDRAM access per bit.
        # Fully-connected weights stream straight from the off-chip interface
        # through a small staging buffer (the paper's main results explicitly
        # exclude off-chip transfer energy); they are charged buffer energy
        # only.
        if traffic.weights_fit_on_chip:
            energy += self.weight_memory.access_energy_pj(traffic.weight_bits)
        else:
            energy += self.abin.read_energy_pj(traffic.weight_bits) * 0.15
        # Activation memory: inputs read, outputs written (when they fit; when
        # they spill, the traffic still crosses AM on its way to the pins).
        energy += self.activation_memory.access_energy_pj(
            traffic.activation_in_bits + traffic.activation_out_bits
        )
        # SRAM staging buffers.
        energy += self.abin.read_energy_pj(traffic.activation_in_bits)
        energy += self.about.write_energy_pj(traffic.activation_out_bits)
        # Transposer.
        if self.transposer is not None and output_activations > 0:
            energy += self.transposer.energy_pj(output_activations)
        # Off-chip.
        if self.dram is not None and self.charge_offchip_energy:
            energy += self.dram.transfer_energy_pj(traffic.offchip_bits)
        return energy

    # -- configuration helpers -----------------------------------------------------

    @property
    def total_onchip_area_mm2(self) -> float:
        """Area of the on-chip memories (eDRAM + SRAM buffers)."""
        return (self.activation_memory.area_mm2 + self.weight_memory.area_mm2
                + self.abin.area_mm2 + self.about.area_mm2)

    def describe(self) -> str:
        parts = [
            f"AM {self.activation_memory.capacity_mb:.2f} MB",
            f"WM {self.weight_memory.capacity_mb:.2f} MB",
            f"ABin {self.abin.capacity_bytes // 1024} KB",
            f"ABout {self.about.capacity_bytes // 1024} KB",
        ]
        if self.dram is not None:
            parts.append(self.dram.name)
        return ", ".join(parts)
