"""Storage layouts: bit-parallel (DPNN) and bit-interleaved (Loom).

Because Loom consumes activations and weights one bit plane at a time, it can
store them *bit-interleaved*: all bit-0s of a group of values packed into
consecutive memory rows, then all bit-1s, and so on, keeping only as many
planes as the per-layer precision requires.  The footprint and the traffic of
a tensor therefore scale with its precision, which is where the
``(16 - P)/16`` footprint/bandwidth reduction and the smaller activation
memory of Section 4.5 come from.  DPNN stores everything at the fixed 16-bit
word width.

The transposer converts between the formats: output activations leave the
SIP array value-parallel (one per SIP) and must be rotated into bit planes
before being written back to the activation memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.quant.bitops import pack_bit_interleaved, unpack_bit_interleaved

__all__ = [
    "BitParallelLayout",
    "BitInterleavedLayout",
    "Transposer",
    "footprint_bits",
]


def footprint_bits(num_values: int, precision_bits: int,
                   bit_interleaved: bool, storage_word_bits: int = 16) -> float:
    """Storage footprint of ``num_values`` values.

    Bit-interleaved storage needs ``num_values * precision_bits`` bits;
    bit-parallel storage always spends the full ``storage_word_bits`` per
    value regardless of precision.
    """
    if num_values < 0:
        raise ValueError(f"num_values must be >= 0, got {num_values}")
    if precision_bits < 1 or precision_bits > storage_word_bits:
        raise ValueError(
            f"precision_bits must be in [1, {storage_word_bits}], "
            f"got {precision_bits}"
        )
    if bit_interleaved:
        return float(num_values * precision_bits)
    return float(num_values * storage_word_bits)


@dataclass(frozen=True)
class BitParallelLayout:
    """DPNN's fixed-width layout: every value occupies a full 16-bit word."""

    word_bits: int = 16

    def footprint_bits(self, num_values: int, precision_bits: int) -> float:
        return footprint_bits(num_values, precision_bits, bit_interleaved=False,
                              storage_word_bits=self.word_bits)

    def traffic_bits(self, num_values: int, precision_bits: int) -> float:
        """Bits moved to read/write the values once."""
        return self.footprint_bits(num_values, precision_bits)

    def rows(self, num_values: int, precision_bits: int, row_bits: int) -> int:
        """Memory rows occupied, given a row width in bits."""
        if row_bits < 1:
            raise ValueError(f"row_bits must be >= 1, got {row_bits}")
        return int(math.ceil(self.footprint_bits(num_values, precision_bits)
                             / row_bits))


@dataclass(frozen=True)
class BitInterleavedLayout:
    """Loom's precision-proportional layout.

    ``group_size`` is the number of values packed side by side in one bit
    plane row group (2048 weights or 256 activations in the paper's
    configuration); it only affects row counts, not total footprint.
    """

    word_bits: int = 16
    group_size: int = 2048

    def footprint_bits(self, num_values: int, precision_bits: int) -> float:
        return footprint_bits(num_values, precision_bits, bit_interleaved=True,
                              storage_word_bits=self.word_bits)

    def traffic_bits(self, num_values: int, precision_bits: int) -> float:
        return self.footprint_bits(num_values, precision_bits)

    def rows(self, num_values: int, precision_bits: int, row_bits: int) -> int:
        if row_bits < 1:
            raise ValueError(f"row_bits must be >= 1, got {row_bits}")
        # Each group of group_size values stores precision_bits planes of
        # group_size bits; partial groups still occupy full plane rows.
        groups = int(math.ceil(num_values / self.group_size))
        rows_per_plane = int(math.ceil(self.group_size / row_bits))
        return groups * precision_bits * rows_per_plane

    def reduction_vs_parallel(self, precision_bits: int) -> float:
        """Fraction of bits saved vs. the bit-parallel layout: (16 - P) / 16."""
        return (self.word_bits - precision_bits) / self.word_bits

    # -- functional packing (used by tests and the functional model) -----------

    def pack(self, codes: np.ndarray, precision_bits: int, row_bits: int,
             signed: bool = True) -> np.ndarray:
        """Pack integer codes into bit-plane rows (see :func:`pack_bit_interleaved`)."""
        return pack_bit_interleaved(codes, precision_bits, row_bits, signed=signed)

    def unpack(self, rows: np.ndarray, precision_bits: int, count: int,
               signed: bool = True) -> np.ndarray:
        """Recover integer codes from bit-plane rows."""
        return unpack_bit_interleaved(rows, precision_bits, count, signed=signed)


@dataclass(frozen=True)
class Transposer:
    """Rotates value-parallel output activations into bit planes (ABout -> AM).

    Each output activation takes tens to hundreds of cycles to produce, so a
    transposer handling ``width`` values per cycle easily keeps up; the model
    exposes the cycle count and a (small) energy cost so the accounting is
    explicit rather than assumed free.
    """

    width: int = 16
    energy_pj_per_value: float = 0.05

    def cycles(self, num_values: int) -> int:
        """Cycles to transpose ``num_values`` output activations."""
        if num_values < 0:
            raise ValueError(f"num_values must be >= 0, got {num_values}")
        return int(math.ceil(num_values / self.width))

    def energy_pj(self, num_values: int) -> float:
        """``num_values`` may be a NumPy array (used by the fast-path engine)."""
        if np.any(np.asarray(num_values) < 0):
            raise ValueError(f"num_values must be >= 0, got {num_values}")
        return num_values * self.energy_pj_per_value
