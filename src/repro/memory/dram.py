"""Off-chip DRAM channel model (single-channel LPDDR4-4267).

The Figure 5 scaling study attaches a single channel of low-power
DDR4-4267 to both DPNN and Loom.  What matters for the results is the
channel's sustained bandwidth (which bounds the fully-connected layers,
whose weights never fit on chip) and the per-bit transfer energy (roughly two
orders of magnitude above on-chip eDRAM, which is why the paper sizes AM so
most layers avoid spilling).

The model is an analytical bandwidth/energy channel: it converts a number of
bits into transfer cycles at the accelerator clock and into energy, with an
efficiency factor accounting for row misses and read/write turnarounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DRAMChannel", "LPDDR4_4267"]


@dataclass(frozen=True)
class DRAMChannel:
    """A single off-chip DRAM channel.

    Parameters
    ----------
    name:
        Channel name (e.g. ``"LPDDR4-4267"``).
    transfer_rate_mts:
        Transfer rate in mega-transfers per second.
    interface_bits:
        Data bus width in bits (x16 for LPDDR4).
    efficiency:
        Fraction of the peak bandwidth sustainable on streaming accesses.
    energy_pj_per_bit:
        Total transfer energy (I/O + DRAM core) per bit.
    """

    name: str
    transfer_rate_mts: float
    interface_bits: int = 16
    efficiency: float = 0.85
    energy_pj_per_bit: float = 15.0

    def __post_init__(self) -> None:
        if self.transfer_rate_mts <= 0:
            raise ValueError("transfer_rate_mts must be > 0")
        if self.interface_bits < 1:
            raise ValueError("interface_bits must be >= 1")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.energy_pj_per_bit < 0:
            raise ValueError("energy_pj_per_bit must be >= 0")

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak bandwidth in gigabits per second."""
        return self.transfer_rate_mts * 1e6 * self.interface_bits / 1e9

    @property
    def sustained_bandwidth_gbps(self) -> float:
        return self.peak_bandwidth_gbps * self.efficiency

    @property
    def peak_bandwidth_gb_per_s(self) -> float:
        """Peak bandwidth in gigabytes per second."""
        return self.peak_bandwidth_gbps / 8.0

    def bits_per_cycle(self, clock_ghz: float = 1.0) -> float:
        """Sustained bits deliverable per accelerator clock cycle."""
        if clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be > 0, got {clock_ghz}")
        return self.sustained_bandwidth_gbps / clock_ghz

    def transfer_cycles(self, bits: float, clock_ghz: float = 1.0) -> float:
        """Cycles (at the accelerator clock) needed to move ``bits`` bits.

        ``bits`` may be a NumPy array (used by the fast-path engine).
        """
        if np.any(np.asarray(bits) < 0):
            raise ValueError(f"bits must be >= 0, got {bits}")
        per_cycle = self.bits_per_cycle(clock_ghz)
        return bits / per_cycle

    def transfer_energy_pj(self, bits: float) -> float:
        """Energy of moving ``bits`` bits over the channel.

        ``bits`` may be a NumPy array (used by the fast-path engine).
        """
        if np.any(np.asarray(bits) < 0):
            raise ValueError(f"bits must be >= 0, got {bits}")
        return bits * self.energy_pj_per_bit


#: The channel used in the paper's scaling study: a single channel of
#: low-power DDR4-4267.  LPDDR4 channels are 32 bits wide (two x16 half
#: channels per die pair), giving ~17 GB/s peak.
LPDDR4_4267 = DRAMChannel(
    name="LPDDR4-4267",
    transfer_rate_mts=4267.0,
    interface_bits=32,
    efficiency=0.85,
    energy_pj_per_bit=15.0,
)
