"""Aggregation helpers used by the paper's tables (geometric means etc.)."""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["geomean", "harmonic_mean", "speedup", "efficiency_ratio"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper aggregates per-network ratios this way."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, appropriate for averaging rates (e.g. fps)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError(f"harmonic_mean requires positive values, got {values}")
    return len(values) / sum(1.0 / v for v in values)


def speedup(baseline_cycles: float, design_cycles: float) -> float:
    """Relative performance: baseline time over design time."""
    if design_cycles <= 0:
        raise ValueError(f"design_cycles must be > 0, got {design_cycles}")
    return baseline_cycles / design_cycles


def efficiency_ratio(baseline_energy: float, design_energy: float) -> float:
    """Relative energy efficiency: baseline energy over design energy."""
    if design_energy <= 0:
        raise ValueError(f"design_energy must be > 0, got {design_energy}")
    return baseline_energy / design_energy
