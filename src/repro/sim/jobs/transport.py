"""Shared-memory result transport for worker-pool execution.

A :class:`~repro.sim.jobs.executor.JobExecutor` fan-out used to pickle every
:class:`~repro.sim.results.NetworkResult` -- layer objects and all -- through
the pool's result pipe.  For sweep-sized batches the numeric payload dwarfs
the metadata, so workers instead write the eight float64 result columns (plus
the int64 MAC counts) of all their layers into one
:mod:`multiprocessing.shared_memory` block and send only lightweight metadata
(network/accelerator names, layer names/kinds, the shm block name) across the
pipe.  The parent attaches, copies the columns out, closes and unlinks the
block, and rebuilds the result objects with the same ``__new__`` +
``__dict__`` construction the batched engine uses -- bit-identical to the
pickled originals.

Everything degrades gracefully: when shared memory is unavailable (platform
without ``/dev/shm``, allocation failure) the payload carries the pickled
results inline, so the executor's behaviour is unchanged apart from speed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.results import LayerResult, NetworkResult

__all__ = ["pack_results", "unpack_results"]

#: float64 columns packed per layer, in LayerResult field order.
_FLOAT_COLUMNS = (
    "cycles",
    "compute_cycles",
    "memory_cycles",
    "energy_pj",
    "weight_bits_read",
    "activation_bits_read",
    "activation_bits_written",
    "utilization",
)


def _try_create_shm(num_bytes: int):
    """Create a shared-memory block, or ``None`` when unsupported.

    The creating process immediately unregisters the block from its
    ``resource_tracker``: ownership passes to the parent (which unlinks it
    after copying), and pool workers outlive many blocks, so letting the
    tracker hold every name would both leak bookkeeping and spew spurious
    "leaked shared_memory" warnings at shutdown.
    """
    try:
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, num_bytes))
    except Exception:
        return None
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def pack_results(results: Sequence[NetworkResult]) -> Dict[str, object]:
    """Pack ``results`` for the pool pipe, numeric columns via shared memory.

    Returns a plain-dict payload for :func:`unpack_results`.  Layout: one
    ``(total_layers, 8)`` float64 block followed by ``total_layers`` int64
    MAC counts; the metadata lists each network's header and its layers'
    names/kinds.  Falls back to carrying the result objects inline when no
    shared-memory block can be created.
    """
    # Results carrying auxiliary per-layer data (exotic accelerators may
    # populate ``extra``) do not fit the fixed column layout; ship them whole.
    if any(layer.extra for result in results for layer in result.layers):
        return {"format": "pickle", "results": list(results)}
    total_layers = sum(len(result.layers) for result in results)
    floats_bytes = total_layers * len(_FLOAT_COLUMNS) * 8
    macs_bytes = total_layers * 8
    shm = _try_create_shm(floats_bytes + macs_bytes)
    if shm is None:
        return {"format": "pickle", "results": list(results)}
    floats = np.ndarray((total_layers, len(_FLOAT_COLUMNS)), dtype=np.float64,
                        buffer=shm.buf)
    macs = np.ndarray((total_layers,), dtype=np.int64, buffer=shm.buf,
                      offset=floats_bytes)
    networks = []
    row = 0
    for result in results:
        names = []
        kinds = []
        for layer in result.layers:
            names.append(layer.layer_name)
            kinds.append(layer.layer_kind)
            floats[row] = [getattr(layer, column) for column in _FLOAT_COLUMNS]
            macs[row] = layer.macs
            row += 1
        networks.append({
            "network": result.network,
            "accelerator": result.accelerator,
            "clock_ghz": result.clock_ghz,
            "layer_names": names,
            "layer_kinds": kinds,
        })
    # Views into the buffer must be dropped before closing the mapping.
    del floats, macs
    shm.close()
    return {
        "format": "shm",
        "shm_name": shm.name,
        "total_layers": total_layers,
        "networks": networks,
    }


def unpack_results(
    payload: Dict[str, object],
) -> Tuple[List[NetworkResult], bool]:
    """Rebuild the results a worker packed; returns ``(results, used_shm)``.

    Attaches to the worker's block, copies the columns out, then closes and
    unlinks it -- the parent owns every block's lifetime (workers unregister
    at creation, see :func:`_try_create_shm`).
    """
    if payload["format"] == "pickle":
        return list(payload["results"]), False
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=payload["shm_name"])
    try:
        total_layers = payload["total_layers"]
        floats_bytes = total_layers * len(_FLOAT_COLUMNS) * 8
        floats = np.ndarray((total_layers, len(_FLOAT_COLUMNS)),
                            dtype=np.float64, buffer=shm.buf).copy()
        macs_list = np.ndarray((total_layers,), dtype=np.int64, buffer=shm.buf,
                               offset=floats_bytes).tolist()
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass

    columns = [column.tolist() for column in floats.T]
    layer_new = LayerResult.__new__
    network_new = NetworkResult.__new__
    results: List[NetworkResult] = []
    row = 0
    for meta in payload["networks"]:
        layers: List[LayerResult] = []
        append = layers.append
        for name, kind in zip(meta["layer_names"], meta["layer_kinds"]):
            layer = layer_new(LayerResult)
            layer.__dict__ = {
                "layer_name": name,
                "layer_kind": kind,
                "cycles": columns[0][row],
                "compute_cycles": columns[1][row],
                "memory_cycles": columns[2][row],
                "energy_pj": columns[3][row],
                "weight_bits_read": columns[4][row],
                "activation_bits_read": columns[5][row],
                "activation_bits_written": columns[6][row],
                "macs": macs_list[row],
                "utilization": columns[7][row],
                "extra": {},
            }
            append(layer)
            row += 1
        result = network_new(NetworkResult)
        result.__dict__ = {
            "network": meta["network"],
            "accelerator": meta["accelerator"],
            "layers": layers,
            "clock_ghz": meta["clock_ghz"],
        }
        results.append(result)
    return results, True
