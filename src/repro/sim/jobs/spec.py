"""Declarative simulation-job specs and their deterministic content keys.

A :class:`SimJob` names everything needed to reproduce one
(network x accelerator x configuration) simulation without holding any live
objects: the network comes from the zoo by name (plus which paper precision
profile to attach), the accelerator from a small registry of factories keyed
by ``kind`` plus a canonical tuple of constructor options, and the
configuration is the (frozen, hashable) :class:`AcceleratorConfig` itself.

Because the spec is pure data it can be

* hashed into a deterministic *content key* (:func:`job_key`) that the result
  cache uses -- two jobs with the same key are guaranteed to produce the same
  :class:`~repro.sim.results.NetworkResult`;
* pickled across process boundaries, so a :class:`~repro.sim.jobs.executor.
  JobExecutor` can fan jobs out over a ``multiprocessing`` pool.

:func:`execute_job` is the single entry point that turns a spec back into
objects and runs the simulation; it memoises the (expensive) profiled-network
construction and the accelerator instances per process, so a batch of jobs
touching the same network pays the build cost once.
"""

from __future__ import annotations

import functools
import hashlib
import json
import threading
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.sim.results import NetworkResult

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.accelerators.base import AcceleratorConfig

__all__ = [
    "NetworkSpec",
    "AcceleratorSpec",
    "SimJob",
    "job_key",
    "spec_dict",
    "build_accelerator",
    "build_spec_network",
    "network_layer_counts",
    "network_kind_counts",
    "layer_table_cache_info",
    "layer_table_build_seconds",
    "execute_job",
    "ACCELERATOR_KINDS",
]

#: Accelerator kinds whose results do not depend on the precision profile at
#: all (bit-parallel designs).  Their cache keys are normalised so that e.g.
#: the DPNN baseline simulated for the 99% profile, or for the
#: effective-weight networks of Table 4, reuses the 100% profile's result.
_PROFILE_INSENSITIVE_KINDS = frozenset({"dpnn"})


def _loom_factory(config, options: Dict[str, object]):
    from repro.core import Loom
    from repro.quant.dynamic import DynamicPrecisionModel

    if "dynamic_precision" in options:
        options = dict(options)
        options["dynamic_precision"] = DynamicPrecisionModel(
            **dict(options["dynamic_precision"])
        )
    return Loom(config, **options)


def _dpnn_factory(config, options):
    from repro.accelerators import DPNN
    return DPNN(config, **options)


def _stripes_factory(config, options):
    from repro.accelerators import Stripes
    return Stripes(config, **options)


def _dstripes_factory(config, options):
    from repro.accelerators import DStripes
    return DStripes(config, **options)


#: Registry of accelerator factories: ``kind -> factory(config, options)``.
ACCELERATOR_KINDS = {
    "dpnn": _dpnn_factory,
    "stripes": _stripes_factory,
    "dstripes": _dstripes_factory,
    "loom": _loom_factory,
}


#: Lazily imported accelerator class per kind (kept in lockstep with
#: ACCELERATOR_KINDS; the module-level assert below enforces it).
_KIND_CLASSES = {
    "dpnn": ("repro.accelerators", "DPNN"),
    "stripes": ("repro.accelerators", "Stripes"),
    "dstripes": ("repro.accelerators", "DStripes"),
    "loom": ("repro.core", "Loom"),
}

assert set(_KIND_CLASSES) == set(ACCELERATOR_KINDS)


@functools.lru_cache(maxsize=None)
def _kind_defaults(kind: str) -> Tuple[Tuple[str, object], ...]:
    """Constructor defaults for a kind (canonicalised), for key normalisation."""
    import importlib
    import inspect

    if kind not in _KIND_CLASSES:
        raise ValueError(
            f"unknown accelerator kind {kind!r}; "
            f"available: {sorted(ACCELERATOR_KINDS)}"
        )
    module_name, class_name = _KIND_CLASSES[kind]
    cls = getattr(importlib.import_module(module_name), class_name)
    defaults = []
    for name, parameter in inspect.signature(cls.__init__).parameters.items():
        if name in ("self", "config") or parameter.default is inspect.Parameter.empty:
            continue
        defaults.append((name, _canonical_value(parameter.default)))
    return tuple(defaults)


def _canonical_value(value):
    """Normalise an option value into hashable, JSON-friendly data."""
    if is_dataclass(value) and not isinstance(value, type):
        return tuple(sorted(
            (k, _canonical_value(v)) for k, v in asdict(value).items()
        ))
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"accelerator option value {value!r} cannot be canonicalised; "
        f"use primitives, dataclasses or mappings"
    )


@dataclass(frozen=True)
class NetworkSpec:
    """Names a zoo network with a bound paper precision profile.

    ``with_effective_weights`` attaches the Table 3 per-group effective
    weight precisions (the Table 4 evaluation mode).  ``groups`` / ``heads``
    are structural overrides forwarded to the zoo builder (ResNeXt-style
    group count for ``resnet18``, attention head count for
    ``tiny_transformer``); they change the simulated geometry, so they are
    part of the spec -- and therefore of the content key -- like everything
    else here.
    """

    name: str
    accuracy: str = "100%"
    with_effective_weights: bool = False
    groups: Optional[int] = None
    heads: Optional[int] = None


@dataclass(frozen=True)
class AcceleratorSpec:
    """Names an accelerator design: a registry ``kind`` plus constructor options.

    Use :meth:`create` rather than the raw constructor -- it canonicalises the
    options (sorted tuple of pairs, dataclasses flattened) so that two specs
    describing the same design always compare, hash and serialise equal.
    """

    kind: str
    options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ACCELERATOR_KINDS:
            raise ValueError(
                f"unknown accelerator kind {self.kind!r}; "
                f"available: {sorted(ACCELERATOR_KINDS)}"
            )

    @classmethod
    def create(cls, kind: str, **options) -> "AcceleratorSpec":
        defaults = dict(_kind_defaults(kind))
        canonical = tuple(
            (key, canonical_value)
            for key, canonical_value in (
                (key, _canonical_value(value))
                for key, value in sorted(options.items())
            )
            # Options pinned at their constructor default describe the same
            # design as omitting them; drop them so the specs (and therefore
            # the cache keys) coincide.
            if not (key in defaults and canonical_value == defaults[key])
        )
        return cls(kind=kind, options=canonical)

    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)


def _default_config():
    from repro.accelerators.base import AcceleratorConfig
    return AcceleratorConfig()


@dataclass(frozen=True)
class SimJob:
    """One declarative simulation: network x accelerator x configuration."""

    network: NetworkSpec
    accelerator: AcceleratorSpec
    config: "AcceleratorConfig" = field(default_factory=_default_config)


def _jsonable(value):
    """Recursively convert canonical spec data into JSON-serialisable data."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def spec_dict(job: SimJob) -> Dict[str, object]:
    """The canonical, JSON-serialisable description of a job.

    This is what gets hashed into the cache key, so *everything* that can
    change a simulation's outcome must appear here: the network identity and
    profile, the accelerator kind and constructor options, and every
    :class:`AcceleratorConfig` knob (including the DRAM channel and the
    technology parameters, which are nested dataclasses).
    """
    network = asdict(job.network)
    # Absent structural overrides hash identically to specs that predate the
    # override fields, so a warm on-disk cache stays valid for every job the
    # fields cannot affect; set overrides still change the key.
    for override in ("groups", "heads"):
        if network.get(override) is None:
            del network[override]
    if job.accelerator.kind in _PROFILE_INSENSITIVE_KINDS:
        # Bit-parallel designs ignore precision profiles entirely; normalise
        # so equivalent simulations share one cache entry.
        network["accuracy"] = "100%"
        network["with_effective_weights"] = False
    return {
        "network": network,
        "accelerator": {
            "kind": job.accelerator.kind,
            "options": _jsonable(list(job.accelerator.options)),
        },
        "config": _jsonable(job.config),
    }


@functools.lru_cache(maxsize=None)
def job_key(job: SimJob) -> str:
    """Deterministic content key: sha256 over the canonical spec JSON."""
    payload = json.dumps(spec_dict(job), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- spec -> objects ----------------------------------------------------------
#
# The memo caches below are per process; forked pool workers inherit (and then
# grow) their own copies, so every process builds each profiled network and
# each accelerator at most once no matter how many jobs reference it.  The
# memoised networks and layer lists are shared across jobs and must be treated
# as read-only.


@functools.lru_cache(maxsize=None)
def build_spec_network(spec: NetworkSpec):
    """Build the zoo network named by ``spec`` with its profile attached."""
    from repro.nn import build_network
    from repro.quant import get_paper_profile

    network = build_network(spec.name, groups=spec.groups, heads=spec.heads)
    profile = get_paper_profile(
        spec.name, spec.accuracy,
        with_effective_weights=spec.with_effective_weights,
    )
    network.attach_profile(profile)
    return network


@functools.lru_cache(maxsize=None)
def _spec_layers(spec: NetworkSpec) -> tuple:
    """Resolved compute layers for a network spec (shared, read-only)."""
    return tuple(build_spec_network(spec).compute_layers())


class _LayerTableMemo:
    """Timed memo for layer tables: like ``lru_cache`` plus a build clock.

    The executor's phase accounting needs to know how much wall time a batch
    spent (re)building layer tables, which ``functools.lru_cache`` cannot
    report -- hence this hand-rolled equivalent.  ``build_seconds`` is
    cumulative; callers sample it before/after a batch and attribute the
    delta.  Double-checked locking keeps hits lock-free-ish while ensuring a
    table is built at most once per process.
    """

    def __init__(self) -> None:
        self._tables: Dict[NetworkSpec, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.builds = 0
        self.build_seconds = 0.0

    def __call__(self, spec: NetworkSpec):
        table = self._tables.get(spec)
        if table is not None:
            self.hits += 1
            return table
        from repro.sim.fastpath import build_layer_table

        with self._lock:
            table = self._tables.get(spec)
            if table is not None:
                self.hits += 1
                return table
            started = time.perf_counter()
            table = build_layer_table(_spec_layers(spec))
            self.build_seconds += time.perf_counter() - started
            self.builds += 1
            self._tables[spec] = table
            return table

    def cache_clear(self) -> None:
        with self._lock:
            self._tables.clear()


#: Column-wise layer tables for the fast-path engine (shared, read-only).
_spec_layer_table = _LayerTableMemo()


def layer_table_cache_info() -> Dict[str, int]:
    """Hit/build counters of the per-(network, profile) layer-table memo.

    ``hits`` counts table requests answered without reconstruction;
    ``builds`` counts actual :func:`~repro.sim.fastpath.build_layer_table`
    runs.  The counters are process-wide (the memo is shared by every
    executor and engine in the process) and cumulative since process start;
    :meth:`~repro.sim.jobs.executor.ExecutorStats.to_dict` surfaces them so
    sweep services can confirm repeated sweeps skip table reconstruction.
    """
    return {"hits": _spec_layer_table.hits,
            "builds": _spec_layer_table.builds}


def layer_table_build_seconds() -> float:
    """Cumulative wall seconds spent building layer tables (this process)."""
    return _spec_layer_table.build_seconds


def network_layer_counts(name: str) -> Tuple[int, int]:
    """(conv-datapath, fully-connected) compute-layer counts for a zoo network.

    MatMul layers execute on the conv datapath and count in the first entry;
    use :func:`network_kind_counts` for the three-way reporting split.
    """
    layers = _spec_layers(NetworkSpec(name))
    conv = sum(1 for lw in layers if lw.is_conv)
    return conv, len(layers) - conv


def network_kind_counts(name: str) -> Dict[str, int]:
    """Per-reporting-kind compute-layer counts (``conv``/``fc``/``matmul``)."""
    counts = {"conv": 0, "fc": 0, "matmul": 0}
    for lw in _spec_layers(NetworkSpec(name)):
        counts[lw.kind] += 1
    return counts


@functools.lru_cache(maxsize=None)
def build_accelerator(spec: AcceleratorSpec,
                      config: "Optional[AcceleratorConfig]" = None):
    """Instantiate the accelerator described by ``spec`` (memoised)."""
    factory = ACCELERATOR_KINDS[spec.kind]
    return factory(config if config is not None else _default_config(),
                   spec.options_dict())


def execute_job(job: SimJob, engine: Optional[str] = None) -> NetworkResult:
    """Run one job: build the network and accelerator, simulate every layer.

    Equivalent to :func:`repro.sim.runner.run_network` on the materialised
    objects, but with the network construction and shape resolution memoised
    per process.

    ``engine`` selects the simulation engine (``"fast"`` -- the vectorized
    closed-form path -- ``"event"``, the per-layer reference path, or
    ``"batched"``, which for a single job is the fast path: batching only
    differs for whole groups, see
    :func:`repro.sim.batched.simulate_jobs_batched`); the default follows
    :func:`repro.sim.fastpath.get_default_engine`.  All engines produce
    bit-identical results (enforced by :mod:`repro.sim.validate`), which is
    why the engine is *not* part of the job's cache key.
    """
    from repro.sim import fastpath

    accelerator = build_accelerator(job.accelerator, job.config)
    engine = fastpath.resolve_engine(engine)
    if engine in ("fast", "batched") and fastpath.supports_fast_path(accelerator):
        return fastpath.simulate_network_fast(
            accelerator,
            _spec_layer_table(job.network),
            network=job.network.name,
            clock_ghz=accelerator.config.clock_ghz,
        )
    result = NetworkResult(
        network=job.network.name,
        accelerator=accelerator.name,
        clock_ghz=accelerator.config.clock_ghz,
    )
    for layer in _spec_layers(job.network):
        result.add(accelerator.simulate_layer(layer))
    return result
