"""Declarative simulation-job pipeline: specs, result cache and executor.

The experiment harnesses *declare* their simulation matrix as
:class:`SimJob` specs -- (network, precision profile) x (accelerator kind,
options) x :class:`~repro.accelerators.base.AcceleratorConfig` -- and hand
the batch to a :class:`JobExecutor`, which answers repeated jobs from a
deterministic content-keyed :class:`ResultCache`, deduplicates identical
jobs within a batch, and can fan independent jobs out across a
``multiprocessing`` pool while still returning results in submission order.

Quick tour::

    from repro.sim.jobs import (
        AcceleratorSpec, JobExecutor, NetworkSpec, ResultCache, SimJob,
    )

    jobs = [
        SimJob(network=NetworkSpec("alexnet", "100%"),
               accelerator=AcceleratorSpec.create("loom", bits_per_cycle=1)),
        SimJob(network=NetworkSpec("alexnet", "100%"),
               accelerator=AcceleratorSpec.create("dpnn")),
    ]
    with JobExecutor(workers=4, cache=ResultCache("~/.cache/loom")) as ex:
        loom, dpnn = ex.run(jobs)

``loom-repro`` installs one shared executor per invocation, so ``all`` runs
every unique job exactly once across all of its tables and figures.
"""

from repro.sim.jobs.cache import (
    CacheBackend,
    CacheStats,
    JsonDirBackend,
    ResultCache,
)
from repro.sim.jobs.executor import (
    ExecutorStats,
    JobEvent,
    JobExecutor,
    get_default_executor,
    set_default_executor,
    use_executor,
)
from repro.sim.jobs.spec import (
    ACCELERATOR_KINDS,
    AcceleratorSpec,
    NetworkSpec,
    SimJob,
    build_accelerator,
    build_spec_network,
    execute_job,
    job_key,
    network_kind_counts,
    network_layer_counts,
    spec_dict,
)

__all__ = [
    "ACCELERATOR_KINDS",
    "AcceleratorSpec",
    "CacheBackend",
    "CacheStats",
    "ExecutorStats",
    "JobEvent",
    "JobExecutor",
    "JsonDirBackend",
    "NetworkSpec",
    "ResultCache",
    "SimJob",
    "build_accelerator",
    "build_spec_network",
    "execute_job",
    "get_default_executor",
    "job_key",
    "network_kind_counts",
    "network_layer_counts",
    "set_default_executor",
    "spec_dict",
    "use_executor",
]
