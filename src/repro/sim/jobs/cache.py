"""Content-keyed result cache for simulation jobs.

The cache maps a :func:`~repro.sim.jobs.spec.job_key` content hash to the
:class:`~repro.sim.results.NetworkResult` the job produced.  Lookups go
through an in-memory dict first; an optional persistent :class:`CacheBackend`
makes results survive across processes and invocations, which is what lets a
repeated ``loom-repro all`` -- or a long-running ``loom-repro serve`` process
-- skip every simulation it has already done.

Two backends ship with the repository:

* :class:`JsonDirBackend` (this module) -- one JSON file per key under a
  directory; what ``loom-repro --cache-dir`` installs.  Entries are written
  atomically (tmp file + rename) and validated on load; an unreadable,
  truncated or mismatched entry is counted in ``stats.invalid_disk_entries``
  and treated as a miss rather than crashing the run.
* :class:`repro.serve.store.SQLiteResultStore` -- a single SQLite database in
  WAL mode, safe for concurrent readers and multiple client processes, with
  schema versioning and an optional LRU entry bound; what the
  ``loom-repro serve`` service uses.

The in-memory layer can itself be bounded (``max_memory_entries``): entries
beyond the bound are evicted least-recently-used and counted in
``stats.evictions``.  The default is unbounded, which is right for one-shot
CLI runs; long-running processes (the service) set a bound so the dict cannot
grow without limit.  All ``ResultCache`` operations are thread-safe.

Cached results are shared objects: treat them as read-only.
"""

from __future__ import annotations

import abc
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.sim.results import NetworkResult

__all__ = ["CacheBackend", "CacheStats", "JsonDirBackend", "ResultCache"]

#: Persistent entry schema version; bump when the payload layout changes.
_FORMAT = 1


@dataclass
class CacheStats:
    """Counters describing what the cache did for a run.

    ``disk_hits`` counts lookups answered by the persistent backend
    (whatever its storage medium); ``invalid_disk_entries`` counts backend
    entries that were unreadable or mismatched and therefore treated as
    misses; ``evictions`` counts in-memory entries dropped by the
    ``max_memory_entries`` LRU bound.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid_disk_entries: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> Dict[str, int]:
        """Plain-data form (what ``loom-repro serve`` reports on /stats)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid_disk_entries": self.invalid_disk_entries,
            "evictions": self.evictions,
        }


class CacheBackend(abc.ABC):
    """Persistent key -> :class:`NetworkResult` store behind a ResultCache.

    Implementations must be tolerant of damaged storage: :meth:`load` returns
    ``None`` for entries that are missing *or* unreadable (counting the
    latter in ``invalid_entries``) and never raises for bad data -- a cache
    entry is always recomputable, so corruption is a miss, not an error.
    Implementations must also be safe to call from multiple threads.
    """

    #: Display name used in executor summaries (e.g. ``"disk cache"``).
    name: str = "backend"

    #: Whether :meth:`store` wants the audit ``spec`` dict.  Executors skip
    #: computing it for backends that discard it.
    keeps_spec: bool = True

    def __init__(self) -> None:
        #: Entries that were present but unreadable/mismatched on load.
        self.invalid_entries = 0

    @abc.abstractmethod
    def load(self, key: str) -> Optional[NetworkResult]:
        """Return the stored result for ``key``, or ``None`` if absent/bad."""

    @abc.abstractmethod
    def store(self, key: str, result: NetworkResult,
              spec: Optional[dict] = None) -> None:
        """Persist ``result`` under ``key`` (``spec`` kept for audit)."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether an entry for ``key`` exists (without loading it)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of persisted entries."""

    def close(self) -> None:
        """Release any held resources (connections, handles)."""

    def describe(self) -> str:
        return self.name


class JsonDirBackend(CacheBackend):
    """One JSON file per key under ``directory`` (the ``--cache-dir`` store)."""

    name = "disk cache"

    def __init__(self, directory: os.PathLike) -> None:
        super().__init__()
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[NetworkResult]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != _FORMAT or payload.get("key") != key:
                raise ValueError("cache entry format/key mismatch")
            return NetworkResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted / stale entry: ignore it, recompute, overwrite.
            self.invalid_entries += 1
            return None

    def store(self, key: str, result: NetworkResult,
              spec: Optional[dict] = None) -> None:
        payload = {
            "format": _FORMAT,
            "key": key,
            "spec": spec,
            "result": result.to_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


class ResultCache:
    """In-memory (plus optional persistent-backend) store of results by key.

    Parameters
    ----------
    directory:
        Convenience shorthand for ``backend=JsonDirBackend(directory)``
        (the historical constructor signature; exclusive with ``backend``).
    backend:
        Optional persistent :class:`CacheBackend` behind the memory layer.
    max_memory_entries:
        Optional LRU bound on the in-memory dict.  ``None`` (the default)
        keeps every result for the life of the process -- fine for one-shot
        CLI invocations, unbounded growth for long-running services, which
        is why ``loom-repro serve`` always sets a bound.  Evicted entries
        are counted in ``stats.evictions`` and, when a backend is attached,
        remain loadable from it.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 backend: Optional[CacheBackend] = None,
                 max_memory_entries: Optional[int] = None) -> None:
        if directory is not None and backend is not None:
            raise ValueError("pass either directory or backend, not both")
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1 (or None for unbounded), "
                f"got {max_memory_entries}"
            )
        self.backend = (JsonDirBackend(directory) if directory is not None
                        else backend)
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, NetworkResult]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    @property
    def directory(self) -> Optional[Path]:
        """The JSON store directory, if the backend is directory-based."""
        return getattr(self.backend, "directory", None)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Optional[NetworkResult]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        return self._lookup(key, count_miss=True)

    def peek(self, key: str) -> Optional[NetworkResult]:
        """Like :meth:`get`, but a miss is not counted in the statistics.

        For probe-style lookups (the service's pre-admission pass, result
        lookups by key) that are followed by an authoritative :meth:`get`
        -- or by nothing at all -- so hit-rate statistics stay meaningful.
        """
        return self._lookup(key, count_miss=False)

    def peek_memory(self, key: str) -> Optional[NetworkResult]:
        """Memory-layer-only :meth:`peek`: never touches the backend.

        For callers that must not trigger backend I/O -- in particular the
        cluster worker's ``GET /cache/<key>`` peer endpoint, where a
        backend that is itself peer-aware would otherwise recurse into
        another network lookup.  Not counted in the statistics.
        """
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
            return result

    def _lookup(self, key: str,
                count_miss: bool) -> Optional[NetworkResult]:
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return result
        # Backend I/O runs outside the cache-wide lock (the backend carries
        # its own), so warm memory hits never serialise behind another
        # thread's disk/SQLite access.  Concurrent same-key loads are
        # idempotent: both threads remember the same stored result.
        if self.backend is not None:
            result = self.backend.load(key)
            with self._lock:
                self.stats.invalid_disk_entries = self.backend.invalid_entries
                if result is not None:
                    self._remember(key, result)
                    self.stats.disk_hits += 1
                    return result
                if count_miss:
                    self.stats.misses += 1
                return None
        if count_miss:
            with self._lock:
                self.stats.misses += 1
        return None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.backend is not None and self.backend.contains(key)

    def __len__(self) -> int:
        return len(self._memory)

    # -- store ---------------------------------------------------------------

    def put(self, key: str, result: NetworkResult,
            spec: Optional[dict] = None) -> None:
        """Store ``result`` under ``key``; ``spec`` is kept on disk for audit."""
        with self._lock:
            self._remember(key, result)
            self.stats.stores += 1
        if self.backend is not None:
            # Outside the lock: persisting must not block memory lookups.
            self.backend.store(key, result, spec)

    def _remember(self, key: str, result: NetworkResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        if self.max_memory_entries is not None:
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the in-memory entries (persistent entries are left alone)."""
        with self._lock:
            self._memory.clear()

    def close(self) -> None:
        """Close the persistent backend, if any."""
        if self.backend is not None:
            self.backend.close()
