"""Content-keyed result cache for simulation jobs.

The cache maps a :func:`~repro.sim.jobs.spec.job_key` content hash to the
:class:`~repro.sim.results.NetworkResult` the job produced.  Lookups go
through an in-memory dict first; an optional on-disk store (one JSON file per
key under ``directory``) makes results survive across processes and
invocations, which is what lets a repeated ``loom-repro all`` skip every
simulation it has already done.

Disk entries are written atomically (tmp file + rename) and validated on
load; an unreadable, truncated or mismatched entry is counted in
``stats.invalid_disk_entries`` and treated as a miss rather than crashing the
run -- it will simply be recomputed and overwritten.

Cached results are shared objects: treat them as read-only.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.sim.results import NetworkResult

__all__ = ["CacheStats", "ResultCache"]

#: On-disk entry schema version; bump when the payload layout changes.
_FORMAT = 1


@dataclass
class CacheStats:
    """Counters describing what the cache did for a run."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid_disk_entries: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ResultCache:
    """In-memory (plus optional on-disk JSON) store of job results by key."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self._memory: Dict[str, NetworkResult] = {}
        self.directory = (Path(directory).expanduser()
                          if directory is not None else None)
        self.stats = CacheStats()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Optional[NetworkResult]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        result = self._memory.get(key)
        if result is not None:
            self.stats.memory_hits += 1
            return result
        result = self._load_disk(key)
        if result is not None:
            self._memory[key] = result
            self.stats.disk_hits += 1
            return result
        self.stats.misses += 1
        return None

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self.directory is not None and self._path(key).exists()
        )

    def __len__(self) -> int:
        return len(self._memory)

    # -- store ---------------------------------------------------------------

    def put(self, key: str, result: NetworkResult,
            spec: Optional[dict] = None) -> None:
        """Store ``result`` under ``key``; ``spec`` is kept on disk for audit."""
        self._memory[key] = result
        self.stats.stores += 1
        if self.directory is not None:
            self._store_disk(key, result, spec)

    def clear(self) -> None:
        """Drop the in-memory entries (on-disk entries are left alone)."""
        self._memory.clear()

    # -- on-disk store -------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load_disk(self, key: str) -> Optional[NetworkResult]:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != _FORMAT or payload.get("key") != key:
                raise ValueError("cache entry format/key mismatch")
            return NetworkResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted / stale entry: ignore it, recompute, overwrite.
            self.stats.invalid_disk_entries += 1
            return None

    def _store_disk(self, key: str, result: NetworkResult,
                    spec: Optional[dict]) -> None:
        payload = {
            "format": _FORMAT,
            "key": key,
            "spec": spec,
            "result": result.to_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
