"""Job executor: cached, optionally parallel execution of simulation jobs.

:class:`JobExecutor` is the engine behind every experiment harness: it takes
a batch of declarative :class:`~repro.sim.jobs.spec.SimJob`\\ s, consults the
result cache, deduplicates identical jobs inside the batch, executes the
remainder -- serially or fanned out over a ``multiprocessing`` pool -- and
returns the results *in job order*, so aggregation code is byte-for-byte
independent of worker count.

A process-wide default executor (serial, in-memory cache) backs every
experiment ``run()`` that is not handed an explicit executor; the CLI
installs a shared one so that ``loom-repro all`` simulates each unique
(network, accelerator, configuration) job exactly once across all tables and
figures.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import get_tracer
from repro.sim.jobs.cache import ResultCache
from repro.sim.jobs.spec import SimJob, execute_job, job_key, spec_dict
from repro.sim.results import NetworkResult

__all__ = [
    "ExecutorStats",
    "JobEvent",
    "JobExecutor",
    "get_default_executor",
    "set_default_executor",
    "use_executor",
]


@dataclass
class ExecutorStats:
    """What an executor did over its lifetime.

    ``executed`` counts actual simulations; ``cache_hits`` jobs answered from
    the cache; ``dedup_hits`` duplicate jobs inside a batch that piggybacked
    on another job's execution.  ``executed_key_counts`` maps each content key
    to how many times it was simulated -- with a shared cache every count is 1,
    which is exactly what the pipeline tests assert.
    """

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    batched_jobs: int = 0
    shm_transports: int = 0
    #: Worker payloads that fell back to inline pickling (shared memory
    #: unavailable or below the size cutoff); the complement of
    #: ``shm_transports``.  A high ratio on a box that should support shared
    #: memory is a deployment smell worth surfacing on /stats.
    pickle_transports: int = 0
    executed_key_counts: Dict[str, int] = field(default_factory=dict)
    #: Cumulative wall seconds per execution phase (``cache_lookup``,
    #: ``layer_table_build``, ``simulate``, ``transport_scatter``) -- the
    #: "where did this request spend its time" answer, surfaced on /stats
    #: and as the ``loom_executor_phase_seconds`` histogram.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    phase_counts: Dict[str, int] = field(default_factory=dict)

    def record_execution(self, key: str) -> None:
        self.executed += 1
        self.executed_key_counts[key] = self.executed_key_counts.get(key, 0) + 1

    def record_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1

    @property
    def max_executions_per_key(self) -> int:
        if not self.executed_key_counts:
            return 0
        return max(self.executed_key_counts.values())

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (what ``loom-repro serve`` reports on /stats).

        ``layer_table_hits`` / ``layer_table_builds`` surface the process-wide
        layer-table memo (:func:`repro.sim.jobs.spec.layer_table_cache_info`):
        a sweep that revisits the same networks should show hits climbing
        while builds stay flat.
        """
        from repro.sim.jobs.spec import layer_table_cache_info

        table_info = layer_table_cache_info()
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "batched_jobs": self.batched_jobs,
            "shm_transports": self.shm_transports,
            "pickle_transports": self.pickle_transports,
            "layer_table_hits": table_info["hits"],
            "layer_table_builds": table_info["builds"],
            "unique_keys_executed": len(self.executed_key_counts),
            "max_executions_per_key": self.max_executions_per_key,
            "phases": {
                phase: {
                    "seconds": round(self.phase_seconds[phase], 6),
                    "count": self.phase_counts.get(phase, 0),
                }
                for phase in sorted(self.phase_seconds)
            },
        }

    def summary(self, cache=None) -> str:
        """One-line human-readable account (the CLI's ``--verbose`` output)."""
        line = (f"pipeline: {self.submitted} jobs submitted, "
                f"{self.executed} simulated, {self.cache_hits} cache hits, "
                f"{self.dedup_hits} dedup hits")
        if cache is not None and cache.backend is not None:
            line += (f" ({cache.backend.describe()}: "
                     f"{cache.stats.disk_hits} hits, "
                     f"{cache.stats.stores} stores)")
        return line


@dataclass(frozen=True)
class JobEvent:
    """Progress notification for one job in a batch."""

    job: SimJob
    key: str
    status: str  # "cached", "deduplicated" or "executed"
    index: int
    total: int


#: Sentinel: "give this executor its own fresh in-memory cache".
_FRESH_CACHE = object()


class JobExecutor:
    """Runs batches of jobs with caching, dedup and optional parallelism.

    Parameters
    ----------
    workers:
        Process count for the ``multiprocessing`` fan-out.  ``1`` executes
        inline (no pool); results are identical either way.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching entirely
        (every submitted job is executed, duplicates included).  Left at the
        default, each executor gets its own fresh in-memory cache.
    progress:
        Optional hook called with a :class:`JobEvent` as each job resolves.
    log:
        Optional ``callable(str)`` for human-readable progress lines.
    engine:
        Simulation engine for this executor's jobs (``"fast"``, ``"event"``
        or ``"batched"``); ``None`` follows the process default at each
        ``run()``.  With ``"batched"``, cache-missing jobs are dispatched to
        :func:`repro.sim.batched.simulate_jobs_batched` in whole groups
        (jobs whose accelerator lacks a vector kernel fall back per job
        automatically).  All engines return bit-identical results.
    """

    def __init__(
        self,
        workers: int = 1,
        cache=_FRESH_CACHE,
        progress: Optional[Callable[[JobEvent], None]] = None,
        log: Optional[Callable[[str], None]] = None,
        engine: Optional[str] = None,
    ) -> None:
        from repro.sim.fastpath import resolve_engine

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache: Optional[ResultCache] = (
            ResultCache() if cache is _FRESH_CACHE else cache
        )
        self.progress = progress
        self.log = log
        if engine is not None:
            resolve_engine(engine)  # fail fast on unknown names
        self.engine = engine
        self.stats = ExecutorStats()
        #: Optional ``callable(phase, seconds)`` invoked on every phase
        #: sample -- the serve service and cluster worker point this at a
        #: ``loom_executor_phase_seconds{phase=...}`` histogram.
        self.phase_observer: Optional[Callable[[str, float], None]] = None
        self._pool = None

    @contextlib.contextmanager
    def _phase(self, phase: str, **attrs: object):
        """Time a named execution phase: stats + observer + a trace span."""
        started = time.perf_counter()
        with get_tracer().span(f"executor.{phase}", **attrs):
            try:
                yield
            finally:
                self._record_phase(phase, time.perf_counter() - started)

    def _record_phase(self, phase: str, seconds: float) -> None:
        self.stats.record_phase(phase, seconds)
        if self.phase_observer is not None:
            self.phase_observer(phase, seconds)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_pool(self):
        if self._pool is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._pool = context.Pool(self.workers)
        return self._pool

    # -- execution -----------------------------------------------------------

    def run(self, jobs: Iterable[SimJob],
            engine: Optional[str] = None) -> List[NetworkResult]:
        """Execute ``jobs`` and return their results in submission order.

        Within the batch, jobs with identical content keys are simulated
        once; with a cache attached, jobs already answered by a previous
        batch are not simulated at all.  Progress events fire as each job
        resolves (cache lookups and executions as they happen; batch
        duplicates once the job they piggyback on has resolved).  Returned
        results are shared with the cache -- treat them as read-only.

        ``engine`` overrides the executor's engine for this batch; all
        engines are bit-identical by contract, so the cache keys do not
        record it.
        """
        jobs = list(jobs)
        if engine is None:
            engine = self.engine
        else:
            from repro.sim.fastpath import resolve_engine

            resolve_engine(engine)
        with get_tracer().span("executor.run", jobs=len(jobs),
                               engine=engine or "default"):
            return self._run(jobs, engine)

    def _run(self, jobs: List[SimJob],
             engine: Optional[str]) -> List[NetworkResult]:
        keys = [job_key(job) for job in jobs]
        total = len(jobs)
        self.stats.submitted += total

        def emit(job, key, status, index):
            if self.progress is not None:
                self.progress(JobEvent(job=job, key=key, status=status,
                                       index=index, total=total))

        if self.cache is None:
            # No cache: execute every submission, duplicates included.
            def on_result(index, result):
                self.stats.record_execution(keys[index])
                emit(jobs[index], keys[index], "executed", index)

            return self._execute_timed(jobs, on_result, engine)

        resolved: Dict[str, NetworkResult] = {}
        statuses: Dict[str, str] = {}
        first_index: Dict[str, int] = {}
        pending: List[SimJob] = []
        pending_keys: List[str] = []
        with self._phase("cache_lookup", jobs=total):
            for index, (job, key) in enumerate(zip(jobs, keys)):
                if key in statuses:
                    continue
                first_index[key] = index
                cached = self.cache.get(key)
                if cached is not None:
                    resolved[key] = cached
                    statuses[key] = "cached"
                    emit(job, key, "cached", index)
                else:
                    statuses[key] = "executed"
                    pending.append(job)
                    pending_keys.append(key)

        if pending:
            if self.log is not None:
                self.log(
                    f"simulating {len(pending)} of {total} jobs "
                    f"({total - len(pending)} cached/deduplicated)"
                )
            # The audit spec on persistent entries is only worth computing
            # when there is a backend that stores it.
            keep_spec = (self.cache.backend is not None
                         and self.cache.backend.keeps_spec)

            def on_result(position, result):
                job, key = pending[position], pending_keys[position]
                self.stats.record_execution(key)
                self.cache.put(key, result,
                               spec=spec_dict(job) if keep_spec else None)
                resolved[key] = result
                emit(job, key, "executed", first_index[key])

            self._execute_timed(pending, on_result, engine)

        # Account and emit the remaining submissions: repeats of a cached key
        # are further cache hits; repeats of an executed key are dedup hits.
        for index, (job, key) in enumerate(zip(jobs, keys)):
            if statuses[key] == "cached":
                self.stats.cache_hits += 1
                if index != first_index[key]:
                    emit(job, key, "cached", index)
            elif index != first_index[key]:
                self.stats.dedup_hits += 1
                emit(job, key, "deduplicated", index)
        return [resolved[key] for key in keys]

    def _execute_timed(self, jobs: Sequence[SimJob], on_result,
                       engine: Optional[str]) -> List[NetworkResult]:
        """Run jobs under the ``simulate`` phase, carving out table builds.

        ``layer_table_build`` is attributed from the process-wide memo's
        build clock: the delta over the batch is the time ``simulate`` spent
        (re)constructing layer tables in this process.  Builds inside pool
        workers happen in the child and stay inside ``simulate`` here.
        """
        from repro.sim.jobs.spec import layer_table_build_seconds

        build_before = layer_table_build_seconds()
        with self._phase("simulate", jobs=len(jobs)):
            results = self._execute(jobs, on_result, engine=engine)
        build_delta = layer_table_build_seconds() - build_before
        if build_delta > 0.0:
            self._record_phase("layer_table_build", build_delta)
        return results

    def _execute(self, jobs: Sequence[SimJob], on_result=None,
                 engine: Optional[str] = None) -> List[NetworkResult]:
        """Run ``jobs`` in order, invoking ``on_result(index, result)`` as
        each finishes (parallel execution streams ordered results back)."""
        import functools

        from repro.sim.fastpath import get_default_engine

        # Pin the submit-time engine explicitly so pool workers honour it
        # even on platforms where the pool falls back to spawn (a spawned
        # worker re-imports with the engine default reset to "fast").
        if engine is None:
            engine = get_default_engine()
        if engine == "batched":
            return self._execute_batched(jobs, on_result)
        results: List[NetworkResult] = []
        if self.workers == 1 or len(jobs) < 2:
            run_job = functools.partial(execute_job, engine=engine)
            iterator = (run_job(job) for job in jobs)
        else:
            # Workers pack their chunk's numeric result columns into shared
            # memory (transport module) so only metadata crosses the pipe.
            pool = self._get_pool()
            chunksize = max(1, len(jobs) // (self.workers * 4))
            chunks = [jobs[start:start + chunksize]
                      for start in range(0, len(jobs), chunksize)]
            run_chunk = functools.partial(_run_jobs_packed, engine=engine)
            iterator = self._unpack_payloads(pool.imap(run_chunk, chunks))
        for index, result in enumerate(iterator):
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    def _execute_batched(self, jobs: Sequence[SimJob],
                         on_result=None) -> List[NetworkResult]:
        """Dispatch whole groups to the batched engine (one tensor pass per
        design group) instead of simulating job by job."""
        from repro.sim.batched import simulate_jobs_batched

        jobs = list(jobs)
        self.stats.batched_jobs += len(jobs)
        if self.workers == 1 or len(jobs) < 2:
            results = simulate_jobs_batched(jobs)
        else:
            pool = self._get_pool()
            chunksize = -(-len(jobs) // self.workers)
            chunks = [jobs[start:start + chunksize]
                      for start in range(0, len(jobs), chunksize)]
            results = list(
                self._unpack_payloads(pool.imap(_run_jobs_batched_packed,
                                                chunks))
            )
        if on_result is not None:
            for index, result in enumerate(results):
                on_result(index, result)
        return results

    def _unpack_payloads(self, payloads):
        """Flatten packed chunk payloads back into an ordered result stream."""
        from repro.sim.jobs.transport import unpack_results

        for payload in payloads:
            started = time.perf_counter()
            results, used_shm = unpack_results(payload)
            self._record_phase("transport_scatter",
                               time.perf_counter() - started)
            if used_shm:
                self.stats.shm_transports += 1
            else:
                self.stats.pickle_transports += 1
            yield from results


# -- pool worker entry points --------------------------------------------------
#
# Module-level so they pickle by reference into pool workers.  Both pack their
# chunk's results through the shared-memory transport; the parent's
# ``_unpack_payloads`` rebuilds the stream (and the transport degrades to
# inline pickling wherever shared memory is unavailable).


def _run_jobs_packed(jobs: Sequence[SimJob], engine: str):
    from repro.sim.jobs.transport import pack_results

    return pack_results([execute_job(job, engine=engine) for job in jobs])


def _run_jobs_batched_packed(jobs: Sequence[SimJob]):
    from repro.sim.batched import simulate_jobs_batched
    from repro.sim.jobs.transport import pack_results

    return pack_results(simulate_jobs_batched(jobs))


# -- process-wide default executor --------------------------------------------

_default_executor: Optional[JobExecutor] = None


def get_default_executor() -> JobExecutor:
    """The process-wide executor experiments fall back to (serial, cached)."""
    global _default_executor
    if _default_executor is None:
        _default_executor = JobExecutor()
    return _default_executor


def set_default_executor(executor: Optional[JobExecutor]) -> Optional[JobExecutor]:
    """Install ``executor`` as the process-wide default; returns the previous one."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


@contextlib.contextmanager
def use_executor(executor: JobExecutor):
    """Temporarily make ``executor`` the default (restores the old one on exit)."""
    previous = set_default_executor(executor)
    try:
        yield executor
    finally:
        set_default_executor(previous)
