"""Run networks through accelerator models and aggregate the results.

The runner is the glue every experiment uses: it takes a network (with a
bound precision profile), walks its compute layers through an accelerator's
``simulate_layer`` and collects the per-layer results into a
:class:`repro.sim.results.NetworkResult`.  :class:`AcceleratorRunner` batches
this over several designs and networks and produces the relative
(speedup / energy-efficiency) numbers the paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.nn.network import Network
from repro.sim.results import ComparisonResult, NetworkResult, compare

__all__ = ["LayerSelection", "run_network", "AcceleratorRunner"]


class LayerSelection:
    """Layer-kind selectors used throughout the experiments."""

    CONV = "conv"
    FC = "fc"
    ALL = None


def run_network(accelerator, network: Network,
                clock_ghz: Optional[float] = None) -> NetworkResult:
    """Simulate every compute layer of ``network`` on ``accelerator``.

    The network must have shapes that resolve; attach a precision profile
    first if the accelerator exploits precision (Loom/Stripes fall back to the
    16-bit baseline precisions otherwise, which simply yields no benefit).
    """
    result = NetworkResult(
        network=network.name,
        accelerator=accelerator.name,
        clock_ghz=clock_ghz if clock_ghz is not None else accelerator.config.clock_ghz,
    )
    for layer in network.compute_layers():
        result.add(accelerator.simulate_layer(layer))
    return result


@dataclass
class AcceleratorRunner:
    """Batch runner: several designs over several networks.

    Attributes
    ----------
    designs:
        Mapping from a label (e.g. ``"loom-1b"``) to an accelerator instance.
    baseline:
        Label of the design the others are compared against (``"dpnn"`` in
        every experiment).
    """

    designs: Dict[str, object] = field(default_factory=dict)
    baseline: str = "dpnn"

    def add_design(self, label: str, accelerator) -> None:
        if label in self.designs:
            raise ValueError(f"duplicate design label {label!r}")
        self.designs[label] = accelerator

    def run(self, networks: Iterable[Network]) -> Dict[str, Dict[str, NetworkResult]]:
        """Run all designs over all networks.

        Returns ``{network_name: {design_label: NetworkResult}}``.
        """
        results: Dict[str, Dict[str, NetworkResult]] = {}
        for network in networks:
            per_design: Dict[str, NetworkResult] = {}
            for label, accelerator in self.designs.items():
                per_design[label] = run_network(accelerator, network)
            results[network.name] = per_design
        return results

    def compare_all(
        self,
        results: Mapping[str, Mapping[str, NetworkResult]],
        kind: Optional[str] = None,
    ) -> Dict[str, Dict[str, ComparisonResult]]:
        """Compare every design against the baseline for every network.

        Returns ``{network_name: {design_label: ComparisonResult}}``; the
        baseline itself is omitted (its ratio is 1.0 by construction).
        """
        if not self.designs:
            raise ValueError("no designs registered")
        if self.baseline not in self.designs:
            raise ValueError(
                f"baseline {self.baseline!r} is not a registered design"
            )
        comparisons: Dict[str, Dict[str, ComparisonResult]] = {}
        for network_name, per_design in results.items():
            base = per_design[self.baseline]
            comparisons[network_name] = {
                label: compare(result, base, kind=kind)
                for label, result in per_design.items()
                if label != self.baseline
            }
        return comparisons
