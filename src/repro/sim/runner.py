"""Run networks through accelerator models and aggregate the results.

The runner is the glue every experiment uses: it takes a network (with a
bound precision profile), walks its compute layers through an accelerator's
``simulate_layer`` and collects the per-layer results into a
:class:`repro.sim.results.NetworkResult`.  :class:`AcceleratorRunner` batches
this over several designs and networks and produces the relative
(speedup / energy-efficiency) numbers the paper's tables report.

Two kinds of design mapping are accepted:

* live :class:`~repro.accelerators.base.Accelerator` instances, simulated
  in-process exactly as before; or
* declarative :class:`~repro.sim.jobs.AcceleratorSpec` entries, which are
  expanded into :class:`~repro.sim.jobs.SimJob` batches and dispatched
  through a (possibly shared, caching, parallel)
  :class:`~repro.sim.jobs.JobExecutor` -- the path every experiment harness
  now uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.nn.network import Network
from repro.sim.results import ComparisonResult, NetworkResult, compare

__all__ = ["LayerSelection", "run_network", "AcceleratorRunner"]


class LayerSelection:
    """Layer-kind selectors used throughout the experiments."""

    CONV = "conv"
    FC = "fc"
    ALL = None


def run_network(accelerator, network: Network,
                clock_ghz: Optional[float] = None,
                engine: Optional[str] = None) -> NetworkResult:
    """Simulate every compute layer of ``network`` on ``accelerator``.

    The network must have shapes that resolve; attach a precision profile
    first if the accelerator exploits precision (Loom/Stripes fall back to the
    16-bit baseline precisions otherwise, which simply yields no benefit).

    ``engine`` picks between the vectorized closed-form path (``"fast"``) and
    the per-layer reference path (``"event"``); ``None`` follows the process
    default (see :mod:`repro.sim.fastpath`).  Both produce bit-identical
    results; custom accelerator subclasses without a vector kernel always
    take the reference path.
    """
    from repro.sim import fastpath

    engine = fastpath.resolve_engine(engine)
    clock = clock_ghz if clock_ghz is not None else accelerator.config.clock_ghz
    if engine == "fast" and fastpath.supports_fast_path(accelerator):
        return fastpath.simulate_network_fast(
            accelerator, network.compute_layers(),
            network=network.name, clock_ghz=clock,
        )
    result = NetworkResult(
        network=network.name,
        accelerator=accelerator.name,
        clock_ghz=clock,
    )
    for layer in network.compute_layers():
        result.add(accelerator.simulate_layer(layer))
    return result


@dataclass
class AcceleratorRunner:
    """Batch runner: several designs over several networks.

    Attributes
    ----------
    designs:
        Mapping from a label (e.g. ``"loom-1b"``) to either an accelerator
        instance or a declarative :class:`~repro.sim.jobs.AcceleratorSpec`.
    baseline:
        Label of the design the others are compared against (``"dpnn"`` in
        every experiment).
    config:
        :class:`~repro.accelerators.base.AcceleratorConfig` applied when
        materialising spec designs (``None`` = the default configuration).
    executor:
        :class:`~repro.sim.jobs.JobExecutor` used for spec designs; ``None``
        falls back to the process-wide default executor.
    """

    designs: Dict[str, object] = field(default_factory=dict)
    baseline: str = "dpnn"
    config: Optional[object] = None
    executor: Optional[object] = None

    def add_design(self, label: str, accelerator) -> None:
        if label in self.designs:
            raise ValueError(f"duplicate design label {label!r}")
        self.designs[label] = accelerator

    def _uses_specs(self) -> bool:
        from repro.sim.jobs import AcceleratorSpec

        kinds = {isinstance(d, AcceleratorSpec) for d in self.designs.values()}
        if kinds == {True, False}:
            raise TypeError(
                "designs must be either all Accelerator instances or all "
                "AcceleratorSpec entries, not a mixture"
            )
        return kinds == {True}

    def run(self, networks: Iterable[object]) -> Dict[str, Dict[str, NetworkResult]]:
        """Run all designs over all networks.

        ``networks`` holds :class:`~repro.nn.network.Network` objects for
        instance designs, or :class:`~repro.sim.jobs.NetworkSpec` entries for
        spec designs (simulated through the job executor, so repeated runs
        hit the result cache).  Returns
        ``{network_name: {design_label: NetworkResult}}``.
        """
        networks = list(networks)
        if self.designs and self._uses_specs():
            return self._run_jobs(networks)
        results: Dict[str, Dict[str, NetworkResult]] = {}
        for network in networks:
            per_design: Dict[str, NetworkResult] = {}
            for label, accelerator in self.designs.items():
                per_design[label] = run_network(accelerator, network)
            results[network.name] = per_design
        return results

    def _run_jobs(self, networks: List[object]) -> Dict[str, Dict[str, NetworkResult]]:
        from repro.sim.jobs import SimJob, get_default_executor

        executor = self.executor if self.executor is not None \
            else get_default_executor()
        jobs = []
        for network_spec in networks:
            for spec in self.designs.values():
                jobs.append(
                    SimJob(network=network_spec, accelerator=spec,
                           config=self.config) if self.config is not None
                    else SimJob(network=network_spec, accelerator=spec)
                )
        flat = executor.run(jobs)
        results: Dict[str, Dict[str, NetworkResult]] = {}
        index = 0
        for network_spec in networks:
            per_design: Dict[str, NetworkResult] = {}
            for label in self.designs:
                per_design[label] = flat[index]
                index += 1
            results[network_spec.name] = per_design
        return results

    def compare_all(
        self,
        results: Mapping[str, Mapping[str, NetworkResult]],
        kind: Optional[str] = None,
    ) -> Dict[str, Dict[str, ComparisonResult]]:
        """Compare every design against the baseline for every network.

        Returns ``{network_name: {design_label: ComparisonResult}}``; the
        baseline itself is omitted (its ratio is 1.0 by construction).
        """
        if not self.designs:
            raise ValueError("no designs registered")
        if self.baseline not in self.designs:
            raise ValueError(
                f"baseline {self.baseline!r} is not a registered design"
            )
        comparisons: Dict[str, Dict[str, ComparisonResult]] = {}
        for network_name, per_design in results.items():
            base = per_design[self.baseline]
            comparisons[network_name] = {
                label: compare(result, base, kind=kind)
                for label, result in per_design.items()
                if label != self.baseline
            }
        return comparisons
