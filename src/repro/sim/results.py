"""Result dataclasses for accelerator simulations.

Every accelerator model in this repository produces a :class:`LayerResult`
per compute layer, which records execution cycles, memory traffic and energy.
:class:`NetworkResult` aggregates them and :func:`compare` produces the
relative speedup / energy-efficiency numbers that the paper's tables report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "LayerResult",
    "NetworkResult",
    "ComparisonResult",
    "compare",
    "combine_layer_results",
]


@dataclass
class LayerResult:
    """What one accelerator did for one layer.

    Attributes
    ----------
    layer_name:
        Name of the layer.
    layer_kind:
        ``"conv"``, ``"fc"`` or ``"matmul"`` (attention-style work; it runs
        on the conv datapath but is reported distinctly).
    cycles:
        Execution cycles for this layer (compute- or memory-bound, whichever
        dominates; ``compute_cycles`` and ``memory_cycles`` keep the split).
    compute_cycles / memory_cycles:
        Cycles the datapath needed and cycles the off-chip interface needed.
    energy_pj:
        Total energy in picojoules.
    weight_bits_read / activation_bits_read / activation_bits_written:
        Memory traffic in bits (already scaled by the storage precision for
        designs that store data bit-interleaved).
    macs:
        Useful multiply-accumulate operations the layer required.
    utilization:
        Fraction of the datapath's peak throughput actually used.
    extra:
        Model-specific diagnostics (e.g. average dynamic precisions).
    """

    layer_name: str
    layer_kind: str
    cycles: float
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    energy_pj: float = 0.0
    weight_bits_read: float = 0.0
    activation_bits_read: float = 0.0
    activation_bits_written: float = 0.0
    macs: int = 0
    utilization: float = 1.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layer_kind not in ("conv", "fc", "matmul"):
            raise ValueError(
                f"layer_kind must be 'conv', 'fc' or 'matmul', "
                f"got {self.layer_kind!r}"
            )
        if self.cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {self.cycles}")
        if self.compute_cycles == 0.0 and self.memory_cycles == 0.0:
            self.compute_cycles = self.cycles

    @property
    def total_traffic_bits(self) -> float:
        return (self.weight_bits_read + self.activation_bits_read
                + self.activation_bits_written)

    @property
    def is_conv(self) -> bool:
        return self.layer_kind == "conv"

    @property
    def is_fc(self) -> bool:
        return self.layer_kind == "fc"

    @property
    def is_matmul(self) -> bool:
        return self.layer_kind == "matmul"

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (for the on-disk result cache and tooling)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LayerResult":
        return cls(**data)


@dataclass
class NetworkResult:
    """Aggregated result of running one network on one accelerator."""

    network: str
    accelerator: str
    layers: List[LayerResult] = field(default_factory=list)
    clock_ghz: float = 1.0

    def add(self, result: LayerResult) -> None:
        self.layers.append(result)

    # -- selections ----------------------------------------------------------

    def select(self, kind: Optional[str] = None) -> List[LayerResult]:
        """Layers of the requested kind (``"conv"``, ``"fc"`` or ``None`` for all)."""
        if kind is None:
            return list(self.layers)
        return [lr for lr in self.layers if lr.layer_kind == kind]

    # -- aggregates ----------------------------------------------------------

    def total_cycles(self, kind: Optional[str] = None) -> float:
        return sum(lr.cycles for lr in self.select(kind))

    def total_energy_pj(self, kind: Optional[str] = None) -> float:
        return sum(lr.energy_pj for lr in self.select(kind))

    def total_traffic_bits(self, kind: Optional[str] = None) -> float:
        return sum(lr.total_traffic_bits for lr in self.select(kind))

    def total_macs(self, kind: Optional[str] = None) -> int:
        return sum(lr.macs for lr in self.select(kind))

    def execution_time_s(self, kind: Optional[str] = None) -> float:
        """Execution time in seconds at the configured clock."""
        return self.total_cycles(kind) / (self.clock_ghz * 1e9)

    def frames_per_second(self, kind: Optional[str] = None) -> float:
        time_s = self.execution_time_s(kind)
        if time_s <= 0:
            return float("inf")
        return 1.0 / time_s

    def average_utilization(self, kind: Optional[str] = None) -> float:
        """Cycle-weighted average datapath utilisation."""
        layers = self.select(kind)
        total = sum(lr.cycles for lr in layers)
        if total <= 0:
            return 1.0
        return sum(lr.utilization * lr.cycles for lr in layers) / total

    def layer(self, name: str) -> LayerResult:
        for lr in self.layers:
            if lr.layer_name == name:
                return lr
        raise KeyError(f"no layer result named {name!r}")

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (for the on-disk result cache and tooling)."""
        return {
            "network": self.network,
            "accelerator": self.accelerator,
            "clock_ghz": self.clock_ghz,
            "layers": [lr.to_dict() for lr in self.layers],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NetworkResult":
        return cls(
            network=data["network"],
            accelerator=data["accelerator"],
            clock_ghz=data["clock_ghz"],
            layers=[LayerResult.from_dict(lr) for lr in data["layers"]],
        )


@dataclass(frozen=True)
class ComparisonResult:
    """Relative performance and energy efficiency of one design versus a baseline.

    ``speedup`` is baseline time / design time (higher is better);
    ``energy_efficiency`` is baseline energy / design energy (higher is
    better), matching the paper's "Perf" and "Eff" columns.
    """

    network: str
    design: str
    baseline: str
    kind: Optional[str]
    speedup: float
    energy_efficiency: float
    design_cycles: float
    baseline_cycles: float
    design_energy_pj: float
    baseline_energy_pj: float


def compare(design: NetworkResult, baseline: NetworkResult,
            kind: Optional[str] = None) -> ComparisonResult:
    """Compare a design against a baseline over the selected layer kind."""
    if design.network != baseline.network:
        raise ValueError(
            f"cannot compare results for different networks: "
            f"{design.network!r} vs {baseline.network!r}"
        )
    design_cycles = design.total_cycles(kind)
    baseline_cycles = baseline.total_cycles(kind)
    design_energy = design.total_energy_pj(kind)
    baseline_energy = baseline.total_energy_pj(kind)
    speedup = baseline_cycles / design_cycles if design_cycles > 0 else float("inf")
    eff = baseline_energy / design_energy if design_energy > 0 else float("inf")
    return ComparisonResult(
        network=design.network,
        design=design.accelerator,
        baseline=baseline.accelerator,
        kind=kind,
        speedup=speedup,
        energy_efficiency=eff,
        design_cycles=design_cycles,
        baseline_cycles=baseline_cycles,
        design_energy_pj=design_energy,
        baseline_energy_pj=baseline_energy,
    )


def combine_layer_results(name: str, results: Iterable[LayerResult],
                          kind: str = "conv") -> LayerResult:
    """Merge several layer results into one (used for grouped/cascaded layers)."""
    results = list(results)
    if not results:
        raise ValueError("cannot combine an empty result list")
    return LayerResult(
        layer_name=name,
        layer_kind=kind,
        cycles=sum(r.cycles for r in results),
        compute_cycles=sum(r.compute_cycles for r in results),
        memory_cycles=sum(r.memory_cycles for r in results),
        energy_pj=sum(r.energy_pj for r in results),
        weight_bits_read=sum(r.weight_bits_read for r in results),
        activation_bits_read=sum(r.activation_bits_read for r in results),
        activation_bits_written=sum(r.activation_bits_written for r in results),
        macs=sum(r.macs for r in results),
        utilization=(
            sum(r.utilization * r.cycles for r in results)
            / max(1e-12, sum(r.cycles for r in results))
        ),
    )
