"""A small discrete-event cycle engine.

The tile-level simulators (the SIP grid, the baseline inner-product units and
the memory channels) are written as callbacks scheduled on this engine.  It is
intentionally minimal: an ordered event queue keyed by cycle number, with
deterministic FIFO ordering of events scheduled for the same cycle, which is
all the bit-serial pipelines need.
"""

from __future__ import annotations

import heapq
import itertools
import operator
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "CycleEngine"]


@dataclass(order=True)
class Event:
    """A callback scheduled to run at a given cycle."""

    cycle: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class CycleEngine:
    """Deterministic cycle-driven event loop.

    Events scheduled for the same cycle run in the order they were scheduled.
    The engine tracks the current cycle and the last cycle at which any event
    ran, which the simulators report as the layer's execution time.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._current_cycle = 0
        self._last_active_cycle = 0
        self._events_processed = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from the current cycle.

        ``delay`` must be a whole number of cycles.  Integral floats (which
        precision math like ``steps * weight_bits`` readily produces) are
        coerced to ``int`` so event cycles stay exact integers; fractional
        delays are rejected instead of silently truncating the timeline.
        """
        if isinstance(delay, float):
            if not delay.is_integer():
                raise ValueError(
                    f"delay must be a whole number of cycles, got {delay!r}; "
                    f"fractional (dynamic-precision) cycle counts belong in "
                    f"the analytical models, not the event engine"
                )
            delay = int(delay)
        elif not isinstance(delay, int):
            try:
                delay = int(operator.index(delay))
            except TypeError:
                raise TypeError(
                    f"delay must be an integer cycle count, got "
                    f"{type(delay).__name__}"
                ) from None
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        event = Event(
            cycle=self._current_cycle + delay,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, cycle: int, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``callback`` for an absolute cycle (>= the current cycle)."""
        if cycle < self._current_cycle:
            raise ValueError(
                f"cannot schedule in the past: cycle {cycle} < current "
                f"{self._current_cycle}"
            )
        return self.schedule(cycle - self._current_cycle, callback, label)

    # -- execution ----------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_cycles`` is reached).

        Returns the cycle of the last processed event, i.e. the simulated
        execution time.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if max_cycles is not None and event.cycle > max_cycles:
                # Put it back so a later run() can continue.
                heapq.heappush(self._queue, event)
                self._current_cycle = max_cycles
                return self._last_active_cycle
            self._current_cycle = event.cycle
            self._last_active_cycle = event.cycle
            self._events_processed += 1
            event.callback()
        return self._last_active_cycle

    # -- introspection --------------------------------------------------------

    @property
    def now(self) -> int:
        """The current cycle."""
        return self._current_cycle

    @property
    def last_active_cycle(self) -> int:
        return self._last_active_cycle

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        return len(self._queue)
