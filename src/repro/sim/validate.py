"""Differential validation of the simulation engines.

Three layers of cross-checking keep the vectorized fast path honest:

1. **fast vs reference** -- every (network, accelerator, precision-profile)
   job is executed through both engines and every field of every
   :class:`~repro.sim.results.LayerResult` is compared for *exact* equality
   (``==`` on the floats, not a tolerance).  The fast path mirrors the
   reference arithmetic operation for operation, so any drift is a bug.
2. **reference vs event engine** -- Loom schedules with integer precisions
   are executed callback by callback on the
   :class:`~repro.core.tile.LoomTileSimulator` and must land on the
   analytical cycle count exactly (the cross-check the paper's custom
   simulator provided).
3. **zoo sweep** -- :func:`validate_zoo` runs check (1) over the full network
   zoo and the full stock-design matrix, which is what ``loom-repro
   validate`` and the CI gate execute.

All checks return structured reports rather than asserting, so the CLI can
print what disagreed; the pytest suite asserts the reports are clean.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.jobs.spec import AcceleratorSpec, NetworkSpec, SimJob, execute_job
from repro.sim.results import LayerResult

__all__ = [
    "FieldMismatch",
    "ValidationCase",
    "ValidationReport",
    "TileCheck",
    "compare_layer_results",
    "default_accelerator_matrix",
    "validate_job",
    "validate_jobs",
    "validate_zoo",
    "validate_tile_level",
]


@dataclass(frozen=True)
class FieldMismatch:
    """One LayerResult field on which the two engines disagreed."""

    layer: str
    field: str
    fast: object
    event: object

    def describe(self) -> str:
        return (f"{self.layer}.{self.field}: fast={self.fast!r} "
                f"event={self.event!r}")


@dataclass(frozen=True)
class ValidationCase:
    """Differential result for one (network, accelerator, profile) job."""

    network: str
    accuracy: str
    with_effective_weights: bool
    accelerator: str
    layers_compared: int
    mismatches: Tuple[FieldMismatch, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        profile = self.accuracy + (
            "+effective-weights" if self.with_effective_weights else ""
        )
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (f"{self.network:<10s} {profile:<22s} {self.accelerator:<22s} "
                f"{self.layers_compared:>3d} layers  {status}")


@dataclass
class ValidationReport:
    """Outcome of a differential sweep."""

    cases: List[ValidationCase]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def layers_compared(self) -> int:
        return sum(case.layers_compared for case in self.cases)

    def failures(self) -> List[ValidationCase]:
        return [case for case in self.cases if not case.ok]

    def summary(self, verbose: bool = False) -> str:
        lines = ["== differential validation: fast path vs event-engine "
                 "reference =="]
        shown = self.cases if verbose else self.failures()
        for case in shown:
            lines.append("  " + case.describe())
            for mismatch in case.mismatches[:8]:
                lines.append("      " + mismatch.describe())
        verdict = "cycle-exact" if self.ok else "ENGINES DISAGREE"
        lines.append(
            f"{len(self.cases)} jobs, {self.layers_compared} layers compared: "
            f"{verdict}"
        )
        return "\n".join(lines)


def compare_layer_results(fast: Sequence[LayerResult],
                          event: Sequence[LayerResult]) -> List[FieldMismatch]:
    """Field-for-field exact comparison of two per-layer result sequences.

    Returns one :class:`FieldMismatch` per disagreeing field (empty list =
    bit-identical).  This is the equality the engine validator enforces, and
    the same comparator the ``loom-repro serve`` contract uses: a served
    result must be indistinguishable from an in-process ``execute_job`` run.
    """
    mismatches: List[FieldMismatch] = []
    if len(fast) != len(event):
        mismatches.append(FieldMismatch(
            layer="<network>", field="layer_count",
            fast=len(fast), event=len(event),
        ))
        return mismatches
    for fast_layer, event_layer in zip(fast, event):
        for field in fields(LayerResult):
            a = getattr(fast_layer, field.name)
            b = getattr(event_layer, field.name)
            if a != b:
                mismatches.append(FieldMismatch(
                    layer=event_layer.layer_name, field=field.name,
                    fast=a, event=b,
                ))
    return mismatches


def validate_job(job: SimJob, engine: str = "fast") -> ValidationCase:
    """Run ``job`` through ``engine`` and the event-engine reference and
    compare every layer exactly."""
    candidate = execute_job(job, engine=engine)
    event = execute_job(job, engine="event")
    return ValidationCase(
        network=job.network.name,
        accuracy=job.network.accuracy,
        with_effective_weights=job.network.with_effective_weights,
        accelerator=event.accelerator,
        layers_compared=len(event.layers),
        mismatches=tuple(compare_layer_results(candidate.layers, event.layers)),
    )


def validate_jobs(jobs: Sequence[SimJob],
                  engine: str = "fast") -> ValidationReport:
    """Differentially validate ``jobs``: ``engine`` vs the event reference.

    With ``engine="batched"`` the whole candidate side runs as one
    :func:`repro.sim.batched.simulate_jobs_batched` call -- exactly the code
    path the batched sweep engine uses in production -- while the reference
    side still executes job by job, so batching/scattering bugs cannot cancel
    out.
    """
    jobs = list(jobs)
    if engine == "batched":
        from repro.sim.batched import simulate_jobs_batched

        candidates = simulate_jobs_batched(jobs)
    else:
        candidates = [execute_job(job, engine=engine) for job in jobs]
    cases = []
    for job, candidate in zip(jobs, candidates):
        event = execute_job(job, engine="event")
        cases.append(ValidationCase(
            network=job.network.name,
            accuracy=job.network.accuracy,
            with_effective_weights=job.network.with_effective_weights,
            accelerator=event.accelerator,
            layers_compared=len(event.layers),
            mismatches=tuple(
                compare_layer_results(candidate.layers, event.layers)
            ),
        ))
    return ValidationReport(cases=cases)


def default_accelerator_matrix() -> List[AcceleratorSpec]:
    """The stock designs the paper evaluates (all fast-path kernels)."""
    return [
        AcceleratorSpec.create("dpnn"),
        AcceleratorSpec.create("stripes"),
        AcceleratorSpec.create("dstripes"),
        AcceleratorSpec.create("loom", bits_per_cycle=1),
        AcceleratorSpec.create("loom", bits_per_cycle=2),
        AcceleratorSpec.create("loom", bits_per_cycle=4),
        AcceleratorSpec.create("loom", use_effective_weight_precision=True),
        AcceleratorSpec.create("loom", use_cascading=False,
                               replicate_filters=True),
    ]


def validate_zoo(
    networks: Optional[Iterable[str]] = None,
    accuracies: Iterable[str] = ("100%", "99%"),
    accelerators: Optional[Iterable[AcceleratorSpec]] = None,
    include_effective_weights: bool = True,
    config=None,
    engine: str = "fast",
) -> ValidationReport:
    """Differentially validate every (network, accelerator, profile) job.

    ``networks`` defaults to the full zoo; ``config`` optionally overrides the
    :class:`~repro.accelerators.base.AcceleratorConfig` of every job (used to
    cover DRAM-attached and scaled configurations).  ``engine`` selects the
    candidate engine compared against the event reference -- ``"batched"``
    validates the whole matrix through one batched pass (see
    :func:`validate_jobs`).
    """
    from repro.nn import available_networks

    network_names = list(networks) if networks is not None \
        else available_networks()
    accelerator_specs = list(accelerators) if accelerators is not None \
        else default_accelerator_matrix()
    network_specs: List[NetworkSpec] = []
    for name in network_names:
        for accuracy in accuracies:
            network_specs.append(NetworkSpec(name, accuracy))
        if include_effective_weights:
            network_specs.append(
                NetworkSpec(name, "100%", with_effective_weights=True)
            )
    jobs: List[SimJob] = []
    for network_spec in network_specs:
        for accelerator_spec in accelerator_specs:
            jobs.append(
                SimJob(network=network_spec, accelerator=accelerator_spec)
                if config is None else
                SimJob(network=network_spec, accelerator=accelerator_spec,
                       config=config)
            )
    return validate_jobs(jobs, engine=engine)


# -- analytical vs event-driven tile simulation --------------------------------


@dataclass(frozen=True)
class TileCheck:
    """One analytical-vs-event-engine schedule comparison."""

    description: str
    analytical_cycles: float
    event_cycles: int

    @property
    def ok(self) -> bool:
        return float(self.event_cycles) == self.analytical_cycles

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return (f"{self.description:<46s} "
                f"analytical={self.analytical_cycles:>10.0f} "
                f"event={self.event_cycles:>10d}  {status}")


def validate_tile_level() -> List[TileCheck]:
    """Execute integer-precision Loom schedules on the event engine.

    The event-driven :class:`~repro.core.tile.LoomTileSimulator` models the
    weight bus and the per-column pipelines explicitly; its cycle counts must
    equal the analytical schedules the (fast and reference) engines price, so
    this anchors both closed forms to an actual cycle-by-cycle execution.
    """
    from repro.core.scheduler import (
        LoomGeometry, schedule_conv_layer, schedule_fc_layer,
    )
    from repro.core.tile import LoomTileSimulator
    from repro.nn.layers import Conv2D, FullyConnected, MatMul, TensorShape
    from repro.nn.network import LayerWithPrecision
    from repro.quant.precision import LayerPrecision

    simulator = LoomTileSimulator()
    checks: List[TileCheck] = []
    for bits_per_cycle in (1, 2, 4):
        geometry = LoomGeometry(equivalent_macs=32,
                                bits_per_cycle=bits_per_cycle)
        conv = Conv2D(name="cvl", out_channels=48, kernel=3, padding=1)
        in_shape = TensorShape(8, 6, 6)
        conv_layer = LayerWithPrecision(
            layer=conv, input_shape=in_shape,
            output_shape=conv.output_shape(in_shape),
            precision=LayerPrecision(activation_bits=8, weight_bits=5),
        )
        schedule = schedule_conv_layer(conv_layer, geometry)
        result = simulator.run_conv(schedule)
        checks.append(TileCheck(
            description=f"conv 48f 3x3 Pa=8 Pw=5 LM{bits_per_cycle}b",
            analytical_cycles=float(schedule.total_cycles),
            event_cycles=result.cycles,
        ))
        fc = FullyConnected(name="fcl", out_features=96)
        fc_layer = LayerWithPrecision(
            layer=fc, input_shape=TensorShape(128),
            output_shape=fc.output_shape(TensorShape(128)),
            precision=LayerPrecision(activation_bits=16, weight_bits=7),
        )
        fc_schedule = schedule_fc_layer(fc_layer, geometry)
        fc_result = simulator.run_fc(fc_schedule)
        checks.append(TileCheck(
            description=f"fc 96o 128t Pw=7 LM{bits_per_cycle}b",
            analytical_cycles=float(fc_schedule.total_cycles),
            event_cycles=fc_result.cycles,
        ))
        # Attention-style MatMul work executes on the CVL path; anchor it too.
        matmul = MatMul(name="mml", out_features=64, heads=4)
        mm_shape = TensorShape(64, 16, 1)
        mm_layer = LayerWithPrecision(
            layer=matmul, input_shape=mm_shape,
            output_shape=matmul.output_shape(mm_shape),
            precision=LayerPrecision(activation_bits=9, weight_bits=6),
        )
        mm_schedule = schedule_conv_layer(mm_layer, geometry)
        mm_result = simulator.run_conv(mm_schedule)
        checks.append(TileCheck(
            description=f"matmul 64f 4h 16t Pa=9 Pw=6 LM{bits_per_cycle}b",
            analytical_cycles=float(mm_schedule.total_cycles),
            event_cycles=mm_result.cycles,
        ))
    return checks
