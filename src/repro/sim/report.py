"""Reporting utilities: per-layer breakdowns, comparison tables and CSV export.

The experiment harnesses print exactly the rows the paper reports; this module
provides the more detailed views an architect exploring the model wants:
per-layer cycle/energy/traffic breakdowns, side-by-side design comparisons,
bottleneck classification (compute- vs memory-bound) and CSV export for
spreadsheet post-processing.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.results import LayerResult, NetworkResult, compare

__all__ = [
    "layer_breakdown",
    "comparison_table",
    "bottleneck_summary",
    "markdown_table",
    "to_csv",
    "BottleneckSummary",
]


def layer_breakdown(result: NetworkResult, top: Optional[int] = None) -> str:
    """Per-layer table of cycles, energy and traffic for one simulation.

    Parameters
    ----------
    result:
        A network simulation result.
    top:
        When given, only the ``top`` layers by cycle count are shown (plus a
        TOTAL row over all layers).
    """
    layers: List[LayerResult] = list(result.layers)
    shown = sorted(layers, key=lambda lr: lr.cycles, reverse=True)
    if top is not None:
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        shown = shown[:top]
    total_cycles = result.total_cycles()
    lines = [f"{result.accelerator} on {result.network}"]
    lines.append(f"{'layer':<24s}{'kind':<6s}{'cycles':>14s}{'% time':>8s}"
                 f"{'energy (nJ)':>13s}{'traffic (Kb)':>14s}{'util':>6s}")
    for lr in shown:
        # Degenerate (zero-cycle) results get "n/a" instead of a division.
        share = (f"{100.0 * lr.cycles / total_cycles:>7.1f}%" if total_cycles
                 else f"{'n/a':>8s}")
        lines.append(
            f"{lr.layer_name:<24s}{lr.layer_kind:<6s}{lr.cycles:>14,.0f}"
            f"{share}{lr.energy_pj / 1e3:>13.1f}"
            f"{lr.total_traffic_bits / 1e3:>14.1f}{lr.utilization:>6.2f}"
        )
    total_share = "100.0%" if total_cycles else "n/a"
    lines.append(
        f"{'TOTAL':<24s}{'':<6s}{total_cycles:>14,.0f}{total_share:>8s}"
        f"{result.total_energy_pj() / 1e3:>13.1f}"
        f"{result.total_traffic_bits() / 1e3:>14.1f}"
        f"{result.average_utilization():>6.2f}"
    )
    return "\n".join(lines)


def comparison_table(baseline: NetworkResult,
                     designs: Dict[str, NetworkResult],
                     kinds: Sequence[Optional[str]] = ("conv", "fc", None)) -> str:
    """Side-by-side speedup / efficiency table of several designs vs a baseline."""
    if not designs:
        raise ValueError("designs must not be empty")
    kind_label = {None: "all", "conv": "conv", "fc": "fc", "matmul": "matmul"}
    lines = [f"relative to {baseline.accelerator} on {baseline.network}"]
    header = f"{'design':<12s}"
    for kind in kinds:
        header += f"{kind_label[kind] + ' perf':>12s}{kind_label[kind] + ' eff':>12s}"
    lines.append(header)
    for label, result in designs.items():
        row = f"{label:<12s}"
        for kind in kinds:
            if baseline.total_cycles(kind) == 0:
                row += f"{'n/a':>12s}{'n/a':>12s}"
                continue
            comp = compare(result, baseline, kind=kind)
            row += f"{comp.speedup:>12.2f}{comp.energy_efficiency:>12.2f}"
        lines.append(row)
    return "\n".join(lines)


@dataclass(frozen=True)
class BottleneckSummary:
    """How a network's time splits between compute- and memory-bound layers."""

    compute_bound_layers: int
    memory_bound_layers: int
    compute_bound_cycles: float
    memory_bound_cycles: float

    @property
    def memory_bound_fraction(self) -> float:
        total = self.compute_bound_cycles + self.memory_bound_cycles
        if total == 0:
            return 0.0
        return self.memory_bound_cycles / total


def bottleneck_summary(result: NetworkResult) -> BottleneckSummary:
    """Classify every layer as compute- or memory-bound and aggregate."""
    compute_layers = memory_layers = 0
    compute_cycles = memory_cycles = 0.0
    for lr in result.layers:
        if lr.memory_cycles > lr.compute_cycles:
            memory_layers += 1
            memory_cycles += lr.cycles
        else:
            compute_layers += 1
            compute_cycles += lr.cycles
    return BottleneckSummary(
        compute_bound_layers=compute_layers,
        memory_bound_layers=memory_layers,
        compute_bound_cycles=compute_cycles,
        memory_bound_cycles=memory_cycles,
    )


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                   align_first_left: bool = True) -> str:
    """Render a GitHub-flavoured markdown table (used by sweep reports)."""
    headers = [str(h) for h in headers]
    if not headers:
        raise ValueError("headers must not be empty")
    lines = ["| " + " | ".join(headers) + " |"]
    separators = [(":---" if align_first_left and i == 0 else "---:")
                  for i in range(len(headers))]
    lines.append("| " + " | ".join(separators) + " |")
    for row in rows:
        cells = [str(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def to_csv(results: Iterable[NetworkResult]) -> str:
    """Export per-layer results of one or more simulations as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "network", "accelerator", "layer", "kind", "cycles", "compute_cycles",
        "memory_cycles", "energy_pj", "weight_bits_read", "activation_bits_read",
        "activation_bits_written", "macs", "utilization",
    ])
    for result in results:
        for lr in result.layers:
            writer.writerow([
                result.network, result.accelerator, lr.layer_name, lr.layer_kind,
                f"{lr.cycles:.0f}", f"{lr.compute_cycles:.0f}",
                f"{lr.memory_cycles:.0f}", f"{lr.energy_pj:.1f}",
                f"{lr.weight_bits_read:.0f}", f"{lr.activation_bits_read:.0f}",
                f"{lr.activation_bits_written:.0f}", lr.macs,
                f"{lr.utilization:.4f}",
            ])
    return buffer.getvalue()
