"""Vectorized analytical fast-path simulator.

The reference ("event") engine walks a network layer by layer through
``Accelerator.simulate_layer`` -- per-layer Python arithmetic whose Loom
schedules are cross-checked callback-by-callback against the event-driven
:class:`repro.core.tile.LoomTileSimulator`.  This module computes the same
per-layer cycle counts, memory-channel stalls, traffic, energy and occupancy
for *all* layers of a network at once with the NumPy closed forms of
:mod:`repro.core.closed_form`, producing bit-identical
:class:`~repro.sim.results.LayerResult` records an order of magnitude faster.

The engines are interchangeable by contract: ``loom-repro --engine
{fast,event,batched}`` selects one for the whole invocation, the result cache
keys do not record the engine, and :mod:`repro.sim.validate` (plus
``tests/test_fastpath.py``) asserts exact equality over the full network zoo.
The ``batched`` engine (:mod:`repro.sim.batched`) shares this module's
:func:`_evaluate_plane` numeric pass but amortises it over whole groups of
jobs stacked into one (job x layer) plane.

Only the four stock designs (DPNN, Stripes, DStripes, Loom) have vector
kernels; exotic subclasses fall back to the reference engine automatically
(see :func:`supports_fast_path`), so user extensions keep working unchanged.
"""

from __future__ import annotations

import contextlib
import functools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.memory.layout import BitInterleavedLayout
from repro.sim.results import LayerResult, NetworkResult

# repro.core.closed_form is imported lazily inside the kernels: this module is
# pulled in by ``repro.sim.__init__`` while ``repro.accelerators.base`` (which
# the core schedules depend on) may still be mid-initialisation.

__all__ = [
    "ENGINES",
    "LayerTable",
    "build_layer_table",
    "get_default_engine",
    "resolve_engine",
    "set_default_engine",
    "use_engine",
    "supports_fast_path",
    "simulate_layers_fast",
    "simulate_network_fast",
]

#: The selectable simulation engines: the vectorized fast path, the per-layer
#: reference path anchored to the event-driven tile simulator, and the batched
#: sweep engine (:mod:`repro.sim.batched`) that evaluates whole groups of jobs
#: in one tensor pass.  All three produce bit-identical results.
ENGINES = ("fast", "event", "batched")

_default_engine = "fast"


def get_default_engine() -> str:
    """The process-wide engine used when callers do not pass one."""
    return _default_engine


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine choice; ``None`` resolves to the process default."""
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; available: {'/'.join(ENGINES)}"
        )
    return engine


def set_default_engine(engine: str) -> str:
    """Install ``engine`` as the process default; returns the previous one.

    Worker processes forked by :class:`~repro.sim.jobs.JobExecutor` inherit
    the setting active at fork time (both engines produce identical results,
    so this only matters for benchmarking).
    """
    global _default_engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; available: {'/'.join(ENGINES)}"
        )
    previous = _default_engine
    _default_engine = engine
    return previous


@contextlib.contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Temporarily select a simulation engine (restored on exit)."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)


# -- layer feature tables ------------------------------------------------------


@dataclass(frozen=True)
class LayerTable:
    """Column-wise view of a network's resolved compute layers.

    One row per layer, in network order; ``windows`` is 0 for FCLs and
    ``effective_weight_bits`` is NaN when the profile carries no per-group
    weight precisions.  ``is_conv`` selects the conv-datapath closed forms
    and is True for MatMul layers too (attention work is CVL-shaped);
    ``kinds`` keeps the reporting kind (``"conv"``/``"fc"``/``"matmul"``)
    for the emitted :class:`~repro.sim.results.LayerResult` records.  Tables
    are immutable and safely shared across accelerator designs (the job
    pipeline memoises one per network spec).
    """

    names: Tuple[str, ...]
    kinds: Tuple[str, ...]
    is_conv: np.ndarray
    windows: np.ndarray
    terms: np.ndarray
    outputs: np.ndarray
    macs: np.ndarray
    weight_count: np.ndarray
    input_activations: np.ndarray
    output_activations: np.ndarray
    act_bits: np.ndarray
    weight_bits: np.ndarray
    effective_weight_bits: np.ndarray

    def __len__(self) -> int:
        return len(self.names)


def build_layer_table(layers: Sequence[object]) -> LayerTable:
    """Extract the per-layer quantities the closed forms consume.

    ``layers`` holds :class:`~repro.nn.network.LayerWithPrecision` records
    (what ``Network.compute_layers`` returns).
    """
    names: List[str] = []
    kinds: List[str] = []
    rows: List[Tuple[bool, int, int, int, int, int, int, int, int, int, float]] = []
    for lw in layers:
        if not (lw.is_conv or lw.is_fc):
            raise ValueError(f"layer {lw.name!r} is not a compute layer")
        precision = lw.precision
        if lw.is_conv:
            # Conv2D and MatMul expose the same window/filter interface.
            conv = lw.layer
            windows = conv.num_windows(lw.input_shape)
            terms = conv.window_size(lw.input_shape)
            outputs = conv.out_channels
        else:
            windows = 0
            terms = lw.input_shape.size
            outputs = lw.layer.out_features
        effective = precision.effective_weight_bits
        names.append(lw.name)
        kinds.append(lw.kind)
        rows.append((
            lw.is_conv, windows, terms, outputs, lw.macs, lw.weight_count,
            lw.input_activations, lw.output_activations,
            precision.activation_bits, precision.weight_bits,
            float("nan") if effective is None else float(effective),
        ))
    from repro.core.closed_form import check_table_operands

    columns = list(zip(*rows)) if rows else [[] for _ in range(11)]
    table = LayerTable(
        names=tuple(names),
        kinds=tuple(kinds),
        is_conv=np.asarray(columns[0], dtype=bool),
        windows=np.asarray(columns[1], dtype=np.int64),
        terms=np.asarray(columns[2], dtype=np.int64),
        outputs=np.asarray(columns[3], dtype=np.int64),
        macs=np.asarray(columns[4], dtype=np.int64),
        weight_count=np.asarray(columns[5], dtype=np.int64),
        input_activations=np.asarray(columns[6], dtype=np.int64),
        output_activations=np.asarray(columns[7], dtype=np.int64),
        act_bits=np.asarray(columns[8], dtype=np.int64),
        weight_bits=np.asarray(columns[9], dtype=np.int64),
        effective_weight_bits=np.asarray(columns[10], dtype=np.float64),
    )
    # Range-check once here so the per-call closed forms stay guard-free.
    check_table_operands(table.windows, table.terms, table.outputs,
                         table.act_bits, table.weight_bits)
    return table


# -- per-design vector kernels -------------------------------------------------


@functools.lru_cache(maxsize=1)
def _stock_kinds():
    """Exact classes with a vector kernel (imported lazily: no package cycles)."""
    from repro.accelerators.dpnn import DPNN
    from repro.accelerators.dstripes import DStripes
    from repro.accelerators.stripes import Stripes
    from repro.core.loom import Loom

    return Loom, DPNN, Stripes, DStripes


def supports_fast_path(accelerator) -> bool:
    """Whether ``accelerator`` is one of the four stock designs.

    The check is on the *exact* type: subclasses may override any hook, so
    they take the reference engine (correct for every Accelerator) instead.
    """
    return type(accelerator) in _stock_kinds()


def _loom_weight_serial_bits(loom, table: LayerTable,
                             idx: np.ndarray) -> np.ndarray:
    """Mirror of ``Loom._conv_weight_bits`` / ``_fc_weight_bits``."""
    from repro.core.closed_form import effective_weight_bits_array

    profile = table.weight_bits[idx].astype(np.float64)
    if not loom.use_effective_weight_precision:
        return profile
    effective = table.effective_weight_bits[idx]
    has_effective = ~np.isnan(effective)
    clamped = effective_weight_bits_array(np.where(has_effective, effective, 1.0))
    return np.where(has_effective, clamped, profile)


def _compute_cycles(accelerator, table: LayerTable,
                    conv: np.ndarray, fc: np.ndarray) -> np.ndarray:
    """Datapath cycles for every layer (the ``compute_cycles`` column)."""
    from repro.accelerators.dpnn import DPNN
    from repro.accelerators.stripes import Stripes
    from repro.core.closed_form import (
        dpnn_conv_cycles_array,
        dpnn_fc_cycles_array,
        effective_activation_bits_array,
        loom_conv_cycles_array,
        loom_fc_cycles_array,
        steps_for_activation_bits_array,
        stripes_conv_cycles_array,
    )
    from repro.core.loom import Loom

    cycles = np.zeros(len(table), dtype=np.float64)
    if isinstance(accelerator, Loom):
        geometry = accelerator.geometry
        dynamic = accelerator.dynamic_precision
        if conv.size:
            act_bits = effective_activation_bits_array(
                table.act_bits[conv], dynamic.enabled,
                dynamic.activation_reduction, geometry.bits_per_cycle,
            )
            steps = steps_for_activation_bits_array(
                act_bits, geometry.bits_per_cycle
            )
            cycles[conv] = loom_conv_cycles_array(
                table.windows[conv], table.terms[conv], table.outputs[conv],
                steps, _loom_weight_serial_bits(accelerator, table, conv),
                geometry, accelerator.replicate_filters,
            )
        if fc.size:
            cycles[fc] = loom_fc_cycles_array(
                table.outputs[fc], table.terms[fc],
                _loom_weight_serial_bits(accelerator, table, fc),
                geometry, accelerator.use_cascading,
            )
        return cycles
    if isinstance(accelerator, Stripes):  # covers DStripes
        if conv.size:
            dynamic = accelerator.dynamic_precision
            serial_bits = effective_activation_bits_array(
                table.act_bits[conv], dynamic.enabled,
                dynamic.activation_reduction, bits_per_cycle=1,
            )
            cycles[conv] = stripes_conv_cycles_array(
                table.windows[conv], table.terms[conv], table.outputs[conv],
                serial_bits, accelerator.filter_lanes, Stripes.WINDOW_LANES,
            )
        if fc.size:
            cycles[fc] = dpnn_fc_cycles_array(
                table.terms[fc], table.outputs[fc],
                accelerator._dpnn.num_ip_units,
            )
        return cycles
    if isinstance(accelerator, DPNN):
        if conv.size:
            cycles[conv] = dpnn_conv_cycles_array(
                table.windows[conv], table.terms[conv], table.outputs[conv],
                accelerator.num_ip_units,
            )
        if fc.size:
            cycles[fc] = dpnn_fc_cycles_array(
                table.terms[fc], table.outputs[fc], accelerator.num_ip_units,
            )
        return cycles
    raise TypeError(
        f"no vector kernel for {type(accelerator).__name__}; "
        f"check supports_fast_path() before calling the fast engine"
    )


def _storage_precisions(accelerator, table: LayerTable):
    """Mirror of ``Accelerator.storage_precisions`` for the stock designs."""
    from repro.core.loom import Loom

    if isinstance(accelerator, Loom):
        return table.weight_bits, table.act_bits
    full = np.full(len(table), 16, dtype=np.int64)
    if accelerator.stores_activations_serially:  # Stripes / DStripes
        return full, table.act_bits
    return full, full  # DPNN


def _traffic_bits(layout, count: np.ndarray, precision: np.ndarray) -> np.ndarray:
    """Vector mirror of the layouts' ``traffic_bits`` (bits to move once)."""
    if isinstance(layout, BitInterleavedLayout):
        return (count * precision).astype(np.float64)
    return (count * layout.word_bits).astype(np.float64)


# -- the engine ----------------------------------------------------------------


def _evaluate_plane(accelerator, table: LayerTable, conv: np.ndarray,
                    fc: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Evaluate the closed forms over every row of ``table`` at once.

    ``conv`` / ``fc`` are the row indices to treat as conv-datapath and
    fully-connected work; rows in neither set (the batched engine's ragged
    padding) come out with zero cycles/traffic/energy and utilization 1.0
    and are simply never scattered into results.  Returns the result columns
    ``(cycles, compute_cycles, memory_cycles, energy, weight_bits,
    act_in_bits, act_out_bits, utilization)``.  Shared verbatim by the
    per-job fast engine and :mod:`repro.sim.batched`: IEEE float64
    arithmetic is elementwise here, so evaluating many jobs' rows in one
    plane is bit-identical to evaluating them one table at a time.
    """
    n = len(table)
    compute_cycles = _compute_cycles(accelerator, table, conv, fc)

    hierarchy = accelerator.hierarchy
    weight_store, act_store = _storage_precisions(accelerator, table)
    weight_bits = _traffic_bits(hierarchy.weight_layout,
                                table.weight_count, weight_store)
    act_in_bits = _traffic_bits(hierarchy.activation_layout,
                                table.input_activations, act_store)
    act_out_bits = _traffic_bits(hierarchy.activation_layout,
                                 table.output_activations, act_store)
    act_footprint = act_in_bits + act_out_bits
    activations_fit = hierarchy.activation_memory.fits(act_footprint)
    weights_fit = hierarchy.weight_memory.fits(weight_bits) & table.is_conv
    offchip_bits = weight_bits + np.where(activations_fit, 0.0, act_footprint)

    if hierarchy.dram is None:
        memory_cycles = np.zeros(n, dtype=np.float64)
    else:
        memory_cycles = hierarchy.dram.transfer_cycles(
            offchip_bits, hierarchy.clock_ghz
        )
    cycles = np.maximum(compute_cycles, memory_cycles)

    # Datapath energy: active power while computing, clock-gated (0.25x)
    # while stalled on memory -- same expression as Accelerator.simulate_layer.
    stall_cycles = np.maximum(0.0, cycles - compute_cycles)
    datapath_pj = accelerator.datapath_pj_per_cycle()
    datapath_energy = (compute_cycles * datapath_pj
                       + stall_cycles * datapath_pj * 0.25)

    # Memory energy, term by term in MemoryHierarchy.memory_energy_pj order.
    energy = np.where(
        weights_fit,
        hierarchy.weight_memory.access_energy_pj(weight_bits),
        hierarchy.abin.read_energy_pj(weight_bits) * 0.15,
    )
    energy = energy + hierarchy.activation_memory.access_energy_pj(
        act_in_bits + act_out_bits
    )
    energy = energy + hierarchy.abin.read_energy_pj(act_in_bits)
    energy = energy + hierarchy.about.write_energy_pj(act_out_bits)
    if hierarchy.transposer is not None:
        # Zero-output layers contribute exactly 0.0, matching the scalar guard.
        energy = energy + hierarchy.transposer.energy_pj(table.output_activations)
    if hierarchy.dram is not None and hierarchy.charge_offchip_energy:
        energy = energy + hierarchy.dram.transfer_energy_pj(offchip_bits)
    energy = datapath_energy + energy

    equivalent_macs = accelerator.config.equivalent_macs
    safe_cycles = np.where(compute_cycles <= 0, 1.0, compute_cycles)
    ideal = table.macs / equivalent_macs
    utilization = np.where(compute_cycles <= 0, 1.0,
                           np.minimum(1.0, ideal / safe_cycles))
    return (cycles, compute_cycles, memory_cycles, energy,
            weight_bits, act_in_bits, act_out_bits, utilization)


def simulate_layers_fast(accelerator, table: LayerTable) -> List[LayerResult]:
    """Simulate every layer of ``table`` on ``accelerator`` in one vector pass.

    Produces exactly what per-layer ``Accelerator.simulate_layer`` calls
    would: the same cycles/compute/stall split, traffic, energy and
    utilization, bit for bit (each array expression mirrors the scalar
    arithmetic's operation order).
    """
    if len(table) == 0:
        return []
    conv = np.flatnonzero(table.is_conv)
    fc = np.flatnonzero(~table.is_conv)
    (cycles, compute_cycles, memory_cycles, energy, weight_bits,
     act_in_bits, act_out_bits, utilization) = _evaluate_plane(
        accelerator, table, conv, fc)

    # tolist() converts whole columns to plain Python scalars in one pass
    # (bit-exact for float64), far cheaper than per-element float() casts.
    rows = zip(
        table.names, table.kinds, cycles.tolist(),
        compute_cycles.tolist(), memory_cycles.tolist(), energy.tolist(),
        weight_bits.tolist(), act_in_bits.tolist(), act_out_bits.tolist(),
        table.macs.tolist(), utilization.tolist(),
    )
    return [
        LayerResult(
            layer_name=name,
            layer_kind=kind,
            cycles=row_cycles,
            compute_cycles=row_compute,
            memory_cycles=row_memory,
            energy_pj=row_energy,
            weight_bits_read=row_weights,
            activation_bits_read=row_act_in,
            activation_bits_written=row_act_out,
            macs=row_macs,
            utilization=row_utilization,
        )
        for (name, kind, row_cycles, row_compute, row_memory, row_energy,
             row_weights, row_act_in, row_act_out, row_macs,
             row_utilization) in rows
    ]


def simulate_network_fast(
    accelerator,
    layers,
    network: str = "",
    clock_ghz: Optional[float] = None,
) -> NetworkResult:
    """Fast-path equivalent of :func:`repro.sim.runner.run_network`.

    ``layers`` is either a :class:`LayerTable` or a sequence of resolved
    :class:`~repro.nn.network.LayerWithPrecision` records.
    """
    table = layers if isinstance(layers, LayerTable) else build_layer_table(layers)
    result = NetworkResult(
        network=network,
        accelerator=accelerator.name,
        clock_ghz=(clock_ghz if clock_ghz is not None
                   else accelerator.config.clock_ghz),
    )
    result.layers.extend(simulate_layers_fast(accelerator, table))
    return result
