"""Simulation infrastructure: results, metrics, the cycle engine and the runner.

* :mod:`repro.sim.results` -- dataclasses describing what one accelerator did
  for one layer / one network (cycles, traffic, energy) and helpers to compare
  two accelerators (speedup, energy efficiency).
* :mod:`repro.sim.metrics` -- geometric means and other aggregation helpers
  used by the paper's tables.
* :mod:`repro.sim.engine` -- a small cycle-level engine used by the
  tile-level simulators.
* :mod:`repro.sim.runner` -- walks a network (with a bound precision profile)
  through any accelerator model and aggregates the per-layer results.
* :mod:`repro.sim.jobs` -- the declarative job pipeline: ``SimJob`` specs, a
  content-keyed result cache and a parallel ``JobExecutor`` the experiment
  harnesses run on.
* :mod:`repro.sim.fastpath` -- the vectorized closed-form engine (the default
  ``--engine fast``), bit-identical to the per-layer reference path.
* :mod:`repro.sim.batched` -- the batched sweep engine (``--engine
  batched``): whole groups of jobs stacked into one (job x layer) tensor
  pass per accelerator design group, bit-identical to the other engines.
* :mod:`repro.sim.validate` -- the differential harness asserting that the
  two engines agree cycle for cycle (and that Loom's analytical schedules
  match the event-driven tile simulator).
"""

from repro.sim.results import (
    LayerResult,
    NetworkResult,
    ComparisonResult,
    compare,
    combine_layer_results,
)
from repro.sim.metrics import geomean, speedup, efficiency_ratio, harmonic_mean
from repro.sim.engine import CycleEngine, Event
from repro.sim.runner import AcceleratorRunner, run_network, LayerSelection
from repro.sim.jobs import (
    AcceleratorSpec,
    JobExecutor,
    NetworkSpec,
    ResultCache,
    SimJob,
    get_default_executor,
    job_key,
    set_default_executor,
    use_executor,
)
from repro.sim.batched import (
    BatchedLayerTable,
    simulate_jobs_batched,
    stack_layer_tables,
)
from repro.sim.fastpath import (
    ENGINES,
    LayerTable,
    build_layer_table,
    get_default_engine,
    set_default_engine,
    simulate_network_fast,
    supports_fast_path,
    use_engine,
)
from repro.sim.report import (
    layer_breakdown,
    comparison_table,
    bottleneck_summary,
    markdown_table,
    to_csv,
    BottleneckSummary,
)

__all__ = [
    "LayerResult",
    "NetworkResult",
    "ComparisonResult",
    "compare",
    "combine_layer_results",
    "geomean",
    "speedup",
    "efficiency_ratio",
    "harmonic_mean",
    "CycleEngine",
    "Event",
    "AcceleratorRunner",
    "run_network",
    "LayerSelection",
    "AcceleratorSpec",
    "JobExecutor",
    "NetworkSpec",
    "ResultCache",
    "SimJob",
    "get_default_executor",
    "job_key",
    "set_default_executor",
    "use_executor",
    "BatchedLayerTable",
    "simulate_jobs_batched",
    "stack_layer_tables",
    "ENGINES",
    "LayerTable",
    "build_layer_table",
    "get_default_engine",
    "set_default_engine",
    "simulate_network_fast",
    "supports_fast_path",
    "use_engine",
    "layer_breakdown",
    "comparison_table",
    "bottleneck_summary",
    "markdown_table",
    "to_csv",
    "BottleneckSummary",
]
