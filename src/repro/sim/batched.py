"""Batched sweep engine: many design points in one tensor pass.

A ``bench_explore``-scale sweep evaluates hundreds of :class:`~repro.sim.
jobs.spec.SimJob`\\ s that differ only in which network (or which precision
profile) runs on which of a handful of accelerator designs.  The per-job fast
path (:mod:`repro.sim.fastpath`) already vectorises *within* a job, but every
job still pays the fixed cost of a full closed-form pass -- a few dozen NumPy
calls over arrays with only 8..60 rows.  This module amortises that cost:

1. jobs are grouped by accelerator design -- the ``(AcceleratorSpec,
   AcceleratorConfig)`` pair, both frozen and hashable;
2. each group's per-layer :class:`~repro.sim.fastpath.LayerTable` columns are
   stacked into one ragged-padded 2-D :class:`BatchedLayerTable` of shape
   (jobs x max_layers);
3. the closed forms of :mod:`repro.core.closed_form` are evaluated **once per
   group** over the whole flattened (job x layer) plane, via the same
   :func:`repro.sim.fastpath._evaluate_plane` pass the per-job engine uses;
4. the valid rows are scattered back into per-job
   :class:`~repro.sim.results.LayerResult` / :class:`~repro.sim.results.
   NetworkResult` objects.

Bit-exactness falls out of IEEE float64 arithmetic being elementwise in the
plane pass: evaluating row ``i`` next to a thousand other rows produces the
same bits as evaluating it alone, so the scattered results are field-for-field
identical to the per-job fast path (and therefore to the event engine) --
:mod:`repro.sim.validate` asserts this over the full 216-job matrix.

Jobs whose accelerator is not one of the four stock designs fall back to
:func:`~repro.sim.jobs.spec.execute_job` automatically, exactly like the
per-job fast path does, so batches mixing exotic ``Accelerator`` subclasses
with stock designs still come back in submission order.

Padding uses values that keep every closed form finite (``windows=0``,
``terms=0``, ``outputs=1``, ``act_bits=weight_bits=1``); padded rows are
excluded from the conv/fc index sets and never scattered into results.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.fastpath import (
    LayerTable,
    _evaluate_plane,
    _stock_kinds,
    supports_fast_path,
)
from repro.sim.results import LayerResult, NetworkResult

__all__ = [
    "BatchedLayerTable",
    "stack_layer_tables",
    "simulate_tables_batched",
    "simulate_jobs_batched",
]


@dataclass(frozen=True)
class BatchedLayerTable:
    """Ragged-padded stack of per-job layer tables for one accelerator design.

    Every numeric column is a (jobs x width) array where ``width`` is the
    widest member table; ``lengths[j]`` gives job ``j``'s true layer count
    and ``mask`` flags the valid cells.  ``names`` / ``kinds`` stay ragged
    (tuples of per-job tuples) -- they are only needed at scatter time.

    ``flat`` is the table's *dense* flat view -- the masked rows of the
    ragged plane compacted into one (sum(lengths))-row :class:`LayerTable`
    with the real names/kinds -- and ``conv`` / ``fc`` are its precomputed
    datapath index sets.  Since padded rows contribute nothing, evaluating
    the dense view is bit-identical to evaluating the padded plane and then
    discarding the masked-out rows; the engine evaluates ``flat`` so the
    (memoised) stack pays the gather once instead of every sweep.
    """

    names: Tuple[Tuple[str, ...], ...]
    kinds: Tuple[Tuple[str, ...], ...]
    lengths: Tuple[int, ...]
    mask: np.ndarray
    is_conv: np.ndarray
    windows: np.ndarray
    terms: np.ndarray
    outputs: np.ndarray
    macs: np.ndarray
    weight_count: np.ndarray
    input_activations: np.ndarray
    output_activations: np.ndarray
    act_bits: np.ndarray
    weight_bits: np.ndarray
    effective_weight_bits: np.ndarray
    flat: LayerTable
    conv: np.ndarray
    fc: np.ndarray

    @property
    def jobs(self) -> int:
        return len(self.lengths)

    @property
    def width(self) -> int:
        return int(self.mask.shape[1])

    def flat_table(self) -> LayerTable:
        """The (jobs * width)-row padded flat view (ravelled 2-D columns).

        ``names`` / ``kinds`` of padded rows are empty strings.  The engine
        itself consumes the dense ``flat`` attribute; this view exists for
        tests and tooling that want the plane with padding in place.
        """
        flat_names = ("",) * (self.jobs * self.width)
        return LayerTable(
            names=flat_names,
            kinds=flat_names,
            is_conv=self.is_conv.ravel(),
            windows=self.windows.ravel(),
            terms=self.terms.ravel(),
            outputs=self.outputs.ravel(),
            macs=self.macs.ravel(),
            weight_count=self.weight_count.ravel(),
            input_activations=self.input_activations.ravel(),
            output_activations=self.output_activations.ravel(),
            act_bits=self.act_bits.ravel(),
            weight_bits=self.weight_bits.ravel(),
            effective_weight_bits=self.effective_weight_bits.ravel(),
        )


#: (column name, dtype, pad value).  Pads keep every closed form finite:
#: ``outputs=1`` and unit precisions avoid divide-by-zero / log-of-zero in
#: the cycle kernels, zero counts make traffic and energy exactly 0.0, and
#: ``is_conv=False`` keeps pads out of the conv-datapath index set.
_STACK_COLUMNS = (
    ("is_conv", bool, False),
    ("windows", np.int64, 0),
    ("terms", np.int64, 0),
    ("outputs", np.int64, 1),
    ("macs", np.int64, 0),
    ("weight_count", np.int64, 0),
    ("input_activations", np.int64, 0),
    ("output_activations", np.int64, 0),
    ("act_bits", np.int64, 1),
    ("weight_bits", np.int64, 1),
    ("effective_weight_bits", np.float64, np.nan),
)


def stack_layer_tables(tables: Sequence[LayerTable]) -> BatchedLayerTable:
    """Stack per-job layer tables into one ragged-padded 2-D table.

    Also precomputes the dense ``flat`` view (the padded plane with the
    masked rows gathered out -- equivalently, the member columns
    concatenated end to end) and its conv/fc index sets, so the engine's
    per-sweep work reduces to the closed-form pass plus the scatter.
    """
    jobs = len(tables)
    width = max((len(t) for t in tables), default=0)
    lengths = tuple(len(t) for t in tables)
    mask = np.zeros((jobs, width), dtype=bool)
    for j, length in enumerate(lengths):
        mask[j, :length] = True
    stacked: Dict[str, np.ndarray] = {}
    for column, dtype, pad in _STACK_COLUMNS:
        out = np.full((jobs, width), pad, dtype=dtype)
        for j, table in enumerate(tables):
            out[j, : lengths[j]] = getattr(table, column)
        stacked[column] = out
    valid = mask.ravel()
    flat = LayerTable(
        names=tuple(n for t in tables for n in t.names),
        kinds=tuple(k for t in tables for k in t.kinds),
        **{column: stacked[column].ravel()[valid]
           for column, _, _ in _STACK_COLUMNS},
    )
    return BatchedLayerTable(
        names=tuple(t.names for t in tables),
        kinds=tuple(t.kinds for t in tables),
        lengths=lengths,
        mask=mask,
        flat=flat,
        conv=np.flatnonzero(flat.is_conv),
        fc=np.flatnonzero(~flat.is_conv),
        **stacked,
    )


# A sweep revisits the same network mix for every design in the space, so the
# stacked table for a given tuple of network specs is rebuilt identically per
# design group.  Memoise it (the member LayerTables are themselves memoised
# per spec, so equal spec tuples always yield the same stack).  Like the other
# spec->object memo caches this is per process and read-only once built.
@functools.lru_cache(maxsize=256)
def _stacked_tables_for_specs(network_specs: tuple) -> BatchedLayerTable:
    from repro.sim.jobs.spec import _spec_layer_table

    return stack_layer_tables([_spec_layer_table(s) for s in network_specs])


def _scatter_layer_results(flat: LayerTable,
                           columns: Tuple[np.ndarray, ...]) -> List[LayerResult]:
    """Scatter evaluated plane columns back into ``LayerResult`` objects.

    One flat pass over all (job, layer) rows, constructing LayerResults via
    ``__new__`` + a ``__dict__`` literal.  This skips dataclass
    ``__init__``/``__post_init__`` (whose validation is vacuous here: kinds
    come from built tables and cycles from the closed forms) and is a large
    part of the batched engine's speedup over the per-job path.  Field
    layout, ``__eq__`` and ``asdict()`` semantics are identical to
    normally-constructed instances.  ``tolist()`` converts whole columns to
    plain Python scalars in one C pass (bit-exact for float64).
    """
    (cycles, compute_cycles, memory_cycles, energy, weight_bits,
     act_in_bits, act_out_bits, utilization) = columns
    new = LayerResult.__new__
    results_flat: List[LayerResult] = []
    append = results_flat.append
    for (name, kind, row_cycles, row_compute, row_memory, row_energy,
         row_weights, row_act_in, row_act_out, row_macs,
         row_utilization) in zip(
        flat.names, flat.kinds, cycles.tolist(), compute_cycles.tolist(),
        memory_cycles.tolist(), energy.tolist(), weight_bits.tolist(),
        act_in_bits.tolist(), act_out_bits.tolist(), flat.macs.tolist(),
        utilization.tolist(),
    ):
        result = new(LayerResult)
        result.__dict__ = {
            "layer_name": name,
            "layer_kind": kind,
            "cycles": row_cycles,
            "compute_cycles": row_compute,
            "memory_cycles": row_memory,
            "energy_pj": row_energy,
            "weight_bits_read": row_weights,
            "activation_bits_read": row_act_in,
            "activation_bits_written": row_act_out,
            "macs": row_macs,
            "utilization": row_utilization,
            "extra": {},
        }
        append(result)
    return results_flat


def simulate_tables_batched(accelerator,
                            tables: Sequence[LayerTable],
                            batched: Optional[BatchedLayerTable] = None,
                            ) -> List[List[LayerResult]]:
    """Simulate every table in ``tables`` on ``accelerator`` in one pass.

    Returns one ``LayerResult`` list per input table, bit-identical to
    calling :func:`~repro.sim.fastpath.simulate_layers_fast` per table.
    ``batched`` lets callers pass a pre-stacked table (the job entry point
    memoises stacks across design groups).
    """
    if batched is None:
        batched = stack_layer_tables(list(tables))
    if batched.jobs == 0:
        return []
    flat = batched.flat
    if len(flat) == 0:
        return [[] for _ in range(batched.jobs)]
    columns = _evaluate_plane(accelerator, flat, batched.conv, batched.fc)
    results_flat = _scatter_layer_results(flat, columns)

    # Carve the flat result list back into per-job lists.
    out: List[List[LayerResult]] = []
    cursor = 0
    for length in batched.lengths:
        out.append(results_flat[cursor:cursor + length])
        cursor += length
    return out


# -- cross-design planes -------------------------------------------------------
#
# A design-space sweep inverts the batch shape: hundreds of *designs* over a
# handful of networks, so per-design groups hold only a few jobs each and the
# closed-form pass stops amortising.  Designs of the same class whose only
# differences are numeric (grid shape, memory sizes, clock, energy
# coefficients) can share one plane: every per-design scalar becomes a
# per-row array (np.repeat over each design's row count) and broadcasts
# through the same elementwise closed forms, bit-identically.  Designs are
# mergeable when their *structural* signature matches -- the Python-level
# branches of the evaluation (class dispatch, DRAM/transposer presence,
# layout types, Loom's scheduling flags and bits-per-cycle).


_DESIGN_SIGNATURES: Dict[object, tuple] = {}


def _design_signature(accelerator) -> tuple:
    """Structural key: designs merge into one plane iff signatures match.

    Everything that selects a Python-level branch in the plane evaluation is
    in the key; everything numeric is promoted to per-row arrays instead.
    Cached per accelerator instance (stock designs are immutable in every
    field the signature reads).
    """
    cached = _DESIGN_SIGNATURES.get(accelerator)
    if cached is not None:
        return cached
    loom_cls, _, stripes_cls, _ = _stock_kinds()
    hierarchy = accelerator.hierarchy
    signature = (
        type(accelerator),
        hierarchy.dram is None,
        hierarchy.charge_offchip_energy,
        hierarchy.transposer is None,
        type(hierarchy.activation_layout), hierarchy.activation_layout.word_bits,
        type(hierarchy.weight_layout), hierarchy.weight_layout.word_bits,
    )
    if isinstance(accelerator, loom_cls):
        signature += (
            accelerator.bits_per_cycle,
            accelerator.replicate_filters,
            accelerator.use_cascading,
            accelerator.use_effective_weight_precision,
            accelerator.dynamic_precision.enabled,
        )
    elif isinstance(accelerator, stripes_cls):
        signature += (accelerator.dynamic_precision.enabled,)
    if len(_DESIGN_SIGNATURES) >= _DESIGN_PARAMS_CAP:
        _DESIGN_SIGNATURES.clear()
    _DESIGN_SIGNATURES[accelerator] = signature
    return signature


# Per-design numeric parameters, keyed by accelerator identity.  Accelerator
# instances hash by id and the cache holds a strong reference (which also
# keeps the id stable); build_accelerator memoises instances per (spec,
# config) so the population is bounded by the design space, not the job
# count.  Cleared wholesale if it ever grows past the cap.
_DESIGN_PARAMS: Dict[object, Dict[str, float]] = {}
_DESIGN_PARAMS_CAP = 4096


def _design_params(accelerator) -> Dict[str, float]:
    """The per-design scalars the plane evaluation promotes to row arrays.

    Energy coefficients are kept as the *separate* factors the scalar models
    multiply (base x size_factor x tech_factor, in that order) so the array
    expressions round identically to the scalar ones.
    """
    params = _DESIGN_PARAMS.get(accelerator)
    if params is not None:
        return params
    loom_cls, dpnn_cls, stripes_cls, _ = _stock_kinds()
    hierarchy = accelerator.hierarchy
    am, wm = hierarchy.activation_memory, hierarchy.weight_memory
    abin, about = hierarchy.abin, hierarchy.about
    params = {
        "am_capacity_bits": am.capacity_bits,
        "am_base": am._BASE_ACCESS_ENERGY_PJ_PER_BIT,
        "am_size": am._size_factor(),
        "am_tech": am._tech_factor(),
        "wm_capacity_bits": wm.capacity_bits,
        "wm_base": wm._BASE_ACCESS_ENERGY_PJ_PER_BIT,
        "wm_size": wm._size_factor(),
        "wm_tech": wm._tech_factor(),
        "abin_base": abin._BASE_READ_ENERGY_PJ_PER_BIT,
        "abin_size": abin._size_factor(),
        "abin_tech": abin._tech_factor(),
        "about_base": about._BASE_WRITE_ENERGY_PJ_PER_BIT,
        "about_size": about._size_factor(),
        "about_tech": about._tech_factor(),
        "transposer_pj": (0.0 if hierarchy.transposer is None
                          else hierarchy.transposer.energy_pj_per_value),
        "dram_bits_per_cycle": (
            1.0 if hierarchy.dram is None
            else hierarchy.dram.bits_per_cycle(hierarchy.clock_ghz)),
        "dram_energy_pj_per_bit": (
            0.0 if hierarchy.dram is None
            else hierarchy.dram.energy_pj_per_bit),
        "datapath_pj": accelerator.datapath_pj_per_cycle(),
        "equivalent_macs": accelerator.config.equivalent_macs,
    }
    if isinstance(accelerator, loom_cls):
        geometry = accelerator.geometry
        params.update(
            filter_rows=geometry.filter_rows,
            window_columns=geometry.window_columns,
            num_sips=geometry.num_sips,
            activation_reduction=accelerator.dynamic_precision.activation_reduction,
        )
    elif isinstance(accelerator, stripes_cls):
        params.update(
            filter_lanes=accelerator.filter_lanes,
            fc_ip_units=accelerator._dpnn.num_ip_units,
            activation_reduction=accelerator.dynamic_precision.activation_reduction,
        )
    elif isinstance(accelerator, dpnn_cls):
        params.update(num_ip_units=accelerator.num_ip_units)
    if len(_DESIGN_PARAMS) >= _DESIGN_PARAMS_CAP:
        _DESIGN_PARAMS.clear()
    _DESIGN_PARAMS[accelerator] = params
    return params


@dataclass(frozen=True, eq=False)
class _DesignPlane:
    """One mergeable group of designs flattened into a single (row) plane.

    ``accelerators``/``tables`` hold strong references to the members (which
    also pins the ids the plane cache is keyed by); ``flat`` concatenates the
    members' dense layer tables end to end, and ``arrays`` carries each
    per-design scalar repeated over that design's rows.
    """

    accelerators: Tuple[object, ...]
    tables: Tuple[BatchedLayerTable, ...]
    flat: LayerTable
    conv: np.ndarray
    fc: np.ndarray
    arrays: Dict[str, np.ndarray]


_INT_PARAMS = frozenset({
    "am_capacity_bits", "wm_capacity_bits", "equivalent_macs",
    "filter_rows", "window_columns", "num_sips",
    "filter_lanes", "fc_ip_units", "num_ip_units",
})

# Built _DesignPlane objects keyed by the member (accelerator, table) id
# pairs; values reference the members, keeping the keys valid.  Sweeps
# re-evaluate the same design x network mix repeatedly (explore rounds,
# serve batches), so the concatenation + np.repeat work is paid once.
_PLANE_CACHE: Dict[Tuple[Tuple[int, int], ...], _DesignPlane] = {}
_PLANE_CACHE_CAP = 128


def _build_design_plane(
    members: Sequence[Tuple[object, BatchedLayerTable]],
) -> _DesignPlane:
    """Concatenate member tables and promote design scalars to row arrays."""
    key = tuple((id(a), id(t)) for a, t in members)
    plane = _PLANE_CACHE.get(key)
    if plane is not None:
        return plane
    flats = [table.flat for _, table in members]
    names: List[str] = []
    kinds: List[str] = []
    for flat in flats:
        names.extend(flat.names)
        kinds.extend(flat.kinds)
    columns = {
        column: np.concatenate([getattr(flat, column) for flat in flats])
        for column, _, _ in _STACK_COLUMNS
    }
    flat = LayerTable(names=tuple(names), kinds=tuple(kinds), **columns)
    counts = np.asarray([len(f) for f in flats], dtype=np.int64)
    member_params = [_design_params(a) for a, _ in members]
    arrays = {
        name: np.repeat(
            np.asarray([p[name] for p in member_params],
                       dtype=(np.int64 if name in _INT_PARAMS
                              else np.float64)),
            counts,
        )
        for name in member_params[0]
    }
    plane = _DesignPlane(
        accelerators=tuple(a for a, _ in members),
        tables=tuple(t for _, t in members),
        flat=flat,
        conv=np.flatnonzero(flat.is_conv),
        fc=np.flatnonzero(~flat.is_conv),
        arrays=arrays,
    )
    if len(_PLANE_CACHE) >= _PLANE_CACHE_CAP:
        _PLANE_CACHE.clear()
    _PLANE_CACHE[key] = plane
    return plane


def _plane_compute_cycles(plane: _DesignPlane) -> np.ndarray:
    """Datapath cycles for every plane row (multi-design mirror of
    :func:`repro.sim.fastpath._compute_cycles`).

    Scalar design parameters are replaced by the per-row arrays of
    ``plane.arrays``; the Python-level branches (class dispatch, Loom
    scheduling flags) are uniform across the plane by construction
    (:func:`_design_signature`).
    """
    from repro.core.closed_form import (
        PlaneGeometry,
        dpnn_conv_cycles_array,
        dpnn_fc_cycles_array,
        effective_activation_bits_array,
        loom_conv_cycles_array,
        loom_fc_cycles_array,
        steps_for_activation_bits_array,
        stripes_conv_cycles_array,
    )
    from repro.sim.fastpath import _loom_weight_serial_bits

    loom_cls, dpnn_cls, stripes_cls, _ = _stock_kinds()
    table, conv, fc = plane.flat, plane.conv, plane.fc
    arrays = plane.arrays
    first = plane.accelerators[0]
    cycles = np.zeros(len(table), dtype=np.float64)
    if isinstance(first, loom_cls):
        geometry = PlaneGeometry(
            filter_rows=arrays["filter_rows"],
            window_columns=arrays["window_columns"],
            num_sips=arrays["num_sips"],
            bits_per_cycle=first.bits_per_cycle,
        )
        dynamic_enabled = first.dynamic_precision.enabled
        if conv.size:
            act_bits = effective_activation_bits_array(
                table.act_bits[conv], dynamic_enabled,
                arrays["activation_reduction"][conv], geometry.bits_per_cycle,
            )
            steps = steps_for_activation_bits_array(
                act_bits, geometry.bits_per_cycle
            )
            cycles[conv] = loom_conv_cycles_array(
                table.windows[conv], table.terms[conv], table.outputs[conv],
                steps, _loom_weight_serial_bits(first, table, conv),
                geometry.take(conv), first.replicate_filters,
            )
        if fc.size:
            cycles[fc] = loom_fc_cycles_array(
                table.outputs[fc], table.terms[fc],
                _loom_weight_serial_bits(first, table, fc),
                geometry.take(fc), first.use_cascading,
            )
        return cycles
    if isinstance(first, stripes_cls):  # covers DStripes
        if conv.size:
            serial_bits = effective_activation_bits_array(
                table.act_bits[conv], first.dynamic_precision.enabled,
                arrays["activation_reduction"][conv], bits_per_cycle=1,
            )
            cycles[conv] = stripes_conv_cycles_array(
                table.windows[conv], table.terms[conv], table.outputs[conv],
                serial_bits, arrays["filter_lanes"][conv],
                stripes_cls.WINDOW_LANES,
            )
        if fc.size:
            cycles[fc] = dpnn_fc_cycles_array(
                table.terms[fc], table.outputs[fc],
                arrays["fc_ip_units"][fc],
            )
        return cycles
    if isinstance(first, dpnn_cls):
        if conv.size:
            cycles[conv] = dpnn_conv_cycles_array(
                table.windows[conv], table.terms[conv], table.outputs[conv],
                arrays["num_ip_units"][conv],
            )
        if fc.size:
            cycles[fc] = dpnn_fc_cycles_array(
                table.terms[fc], table.outputs[fc], arrays["num_ip_units"][fc],
            )
        return cycles
    raise TypeError(f"no plane kernel for {type(first).__name__}")


def _evaluate_design_plane(plane: _DesignPlane) -> Tuple[np.ndarray, ...]:
    """Multi-design mirror of :func:`repro.sim.fastpath._evaluate_plane`.

    Identical arithmetic, with every per-design scalar (memory capacities and
    energy factors, DRAM bandwidth, datapath power, peak MACs) replaced by
    the matching per-row array -- each expression stays elementwise, so each
    row's bits equal what the single-design plane produces for that design.
    """
    from repro.sim.fastpath import _traffic_bits

    table = plane.flat
    arrays = plane.arrays
    first = plane.accelerators[0]
    hierarchy = first.hierarchy
    n = len(table)
    compute_cycles = _plane_compute_cycles(plane)

    # Storage precisions follow the (signature-uniform) layout pattern; the
    # layout *objects* of the first member stand in for the whole plane (the
    # signature pins their types and word widths).
    loom_cls, _, stripes_cls, _ = _stock_kinds()
    if isinstance(first, loom_cls):
        weight_store, act_store = table.weight_bits, table.act_bits
    elif isinstance(first, stripes_cls):
        full = np.full(n, 16, dtype=np.int64)
        weight_store, act_store = full, table.act_bits
    else:
        full = np.full(n, 16, dtype=np.int64)
        weight_store, act_store = full, full
    weight_bits = _traffic_bits(hierarchy.weight_layout,
                                table.weight_count, weight_store)
    act_in_bits = _traffic_bits(hierarchy.activation_layout,
                                table.input_activations, act_store)
    act_out_bits = _traffic_bits(hierarchy.activation_layout,
                                 table.output_activations, act_store)
    act_footprint = act_in_bits + act_out_bits
    activations_fit = act_footprint <= arrays["am_capacity_bits"]
    weights_fit = (weight_bits <= arrays["wm_capacity_bits"]) & table.is_conv
    offchip_bits = weight_bits + np.where(activations_fit, 0.0, act_footprint)

    if hierarchy.dram is None:
        memory_cycles = np.zeros(n, dtype=np.float64)
    else:
        memory_cycles = offchip_bits / arrays["dram_bits_per_cycle"]
    cycles = np.maximum(compute_cycles, memory_cycles)

    stall_cycles = np.maximum(0.0, cycles - compute_cycles)
    datapath_pj = arrays["datapath_pj"]
    datapath_energy = (compute_cycles * datapath_pj
                       + stall_cycles * datapath_pj * 0.25)

    # Memory energy, term by term in MemoryHierarchy.memory_energy_pj order,
    # with each model's base * bits * size_factor * tech_factor kept in the
    # scalar models' multiplication order.
    energy = np.where(
        weights_fit,
        arrays["wm_base"] * weight_bits * arrays["wm_size"] * arrays["wm_tech"],
        (arrays["abin_base"] * weight_bits
         * arrays["abin_size"] * arrays["abin_tech"]) * 0.15,
    )
    energy = energy + (arrays["am_base"] * (act_in_bits + act_out_bits)
                       * arrays["am_size"] * arrays["am_tech"])
    energy = energy + (arrays["abin_base"] * act_in_bits
                       * arrays["abin_size"] * arrays["abin_tech"])
    energy = energy + (arrays["about_base"] * act_out_bits
                       * arrays["about_size"] * arrays["about_tech"])
    if hierarchy.transposer is not None:
        energy = energy + table.output_activations * arrays["transposer_pj"]
    if hierarchy.dram is not None and hierarchy.charge_offchip_energy:
        energy = energy + offchip_bits * arrays["dram_energy_pj_per_bit"]
    energy = datapath_energy + energy

    safe_cycles = np.where(compute_cycles <= 0, 1.0, compute_cycles)
    ideal = table.macs / arrays["equivalent_macs"]
    utilization = np.where(compute_cycles <= 0, 1.0,
                           np.minimum(1.0, ideal / safe_cycles))
    return (cycles, compute_cycles, memory_cycles, energy,
            weight_bits, act_in_bits, act_out_bits, utilization)


# -- the batch entry point -----------------------------------------------------


def simulate_jobs_batched(jobs: Iterable["SimJob"]) -> List[NetworkResult]:
    """Execute a batch of jobs, one closed-form pass per design-plane group.

    The batched counterpart of calling :func:`~repro.sim.jobs.spec.
    execute_job` per job: results come back in submission order and are
    bit-identical to both the per-job fast path and the event engine.  Jobs
    whose accelerator has no vector kernel (exotic ``Accelerator``
    subclasses) fall back to ``execute_job`` individually; everything else
    is grouped by ``(AcceleratorSpec, AcceleratorConfig)``, structurally
    compatible designs are merged into cross-design planes
    (:func:`_design_signature`), and each plane is evaluated in one
    (design x job x layer) pass.  An empty batch returns ``[]``.
    """
    from repro.sim.jobs.spec import build_accelerator, execute_job

    jobs = list(jobs)
    results: List[Optional[NetworkResult]] = [None] * len(jobs)
    # build_accelerator memoises per (spec, config), so the instance's
    # identity *is* the design-group key -- grouping by id() skips re-hashing
    # the nested frozen dataclasses for every job.  Sweeps typically reuse
    # the same spec/config *objects* across jobs, so the id-keyed lookup
    # (valid while ``jobs`` keeps the spec objects alive) short-circuits
    # even the memo-cache hash for all but the first job of each design.
    by_spec_ids: Dict[Tuple[int, int], object] = {}
    groups: Dict[int, Tuple[object, List[int]]] = {}
    for index, job in enumerate(jobs):
        spec_ids = (id(job.accelerator), id(job.config))
        accelerator = by_spec_ids.get(spec_ids)
        if accelerator is None:
            accelerator = build_accelerator(job.accelerator, job.config)
            by_spec_ids[spec_ids] = accelerator
        if supports_fast_path(accelerator):
            group = groups.get(id(accelerator))
            if group is None:
                groups[id(accelerator)] = (accelerator, [index])
            else:
                group[1].append(index)
        else:
            # No vector kernel: the per-job path picks the right engine
            # (it falls back to the event reference for exotic designs).
            results[index] = execute_job(job, engine="fast")

    # Merge structurally compatible design groups into shared planes.
    merged: Dict[tuple, List[Tuple[object, List[int]]]] = {}
    for accelerator, indices in groups.values():
        merged.setdefault(_design_signature(accelerator), []).append(
            (accelerator, indices)
        )

    new = NetworkResult.__new__
    for members in merged.values():
        if len(members) == 1:
            # Single design: evaluate through the real accelerator object.
            accelerator, indices = members[0]
            network_specs = tuple(jobs[i].network for i in indices)
            batched_table = _stacked_tables_for_specs(network_specs)
            layer_lists = simulate_tables_batched(accelerator, (),
                                                  batched=batched_table)
            name = accelerator.name
            clock_ghz = accelerator.config.clock_ghz
            for index, layers in zip(indices, layer_lists):
                result = new(NetworkResult)
                result.__dict__ = {
                    "network": jobs[index].network.name,
                    "accelerator": name,
                    "layers": layers,
                    "clock_ghz": clock_ghz,
                }
                results[index] = result
            continue
        # Many designs, one plane.
        tables = [
            (accelerator,
             _stacked_tables_for_specs(tuple(jobs[i].network for i in indices)))
            for accelerator, indices in members
        ]
        plane = _build_design_plane(tables)
        if len(plane.flat):
            results_flat = _scatter_layer_results(
                plane.flat, _evaluate_design_plane(plane)
            )
        else:
            results_flat = []
        cursor = 0
        for (accelerator, indices), (_, batched_table) in zip(members, tables):
            name = accelerator.name
            clock_ghz = accelerator.config.clock_ghz
            for index, length in zip(indices, batched_table.lengths):
                result = new(NetworkResult)
                result.__dict__ = {
                    "network": jobs[index].network.name,
                    "accelerator": name,
                    "layers": results_flat[cursor:cursor + length],
                    "clock_ghz": clock_ghz,
                }
                results[index] = result
                cursor += length
    return results
