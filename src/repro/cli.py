"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    loom-repro table1
    loom-repro table2
    loom-repro figure4
    loom-repro area
    loom-repro figure5 [--configs 32 64 128]
    loom-repro table3
    loom-repro table4
    loom-repro all
    loom-repro summary --network alexnet

``loom-repro all`` regenerates every artefact (this is what EXPERIMENTS.md is
built from); ``summary`` prints a per-layer breakdown for one network on DPNN
and Loom, which is handy when exploring the model interactively.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.accelerators import DPNN
from repro.core import Loom
from repro.experiments import (
    ablation,
    area,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.common import build_profiled_network
from repro.quant import paper_networks
from repro.sim import run_network

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loom-repro",
        description="Regenerate the tables and figures of the Loom paper "
                    "(Sharify et al., DAC 2018).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="precision profiles (Table 1)")
    sub.add_parser("table2", help="per-kind speedup/efficiency (Table 2)")
    sub.add_parser("figure4", help="all-layer speedup/efficiency (Figure 4)")
    sub.add_parser("area", help="area overhead (Section 4.4)")
    fig5 = sub.add_parser("figure5", help="scaling study (Figure 5)")
    fig5.add_argument("--configs", type=int, nargs="+",
                      default=list(figure5.CONFIG_SWEEP),
                      help="equivalent-MAC configurations to sweep")
    sub.add_parser("table3", help="per-group weight precisions (Table 3)")
    sub.add_parser("table4", help="per-group weight precision speedups (Table 4)")
    sub.add_parser("ablation", help="contribution of each Loom mechanism")
    sub.add_parser("all", help="regenerate every table and figure")
    summary = sub.add_parser("summary", help="per-layer breakdown for one network")
    summary.add_argument("--network", default="alexnet",
                         choices=paper_networks(), help="network to summarise")
    summary.add_argument("--accuracy", default="100%", choices=["100%", "99%"],
                         help="precision profile to use")
    return parser


def _summary(network_name: str, accuracy: str) -> str:
    network = build_profiled_network(network_name, accuracy)
    dpnn, loom = DPNN(), Loom()
    base = run_network(dpnn, network)
    fast = run_network(loom, network)
    lines = [f"== {network_name} ({accuracy} profile): DPNN vs Loom-1b =="]
    lines.append(f"{'layer':<24s} {'kind':<5s} {'DPNN cycles':>14s} "
                 f"{'Loom cycles':>14s} {'speedup':>9s}")
    for base_layer, loom_layer in zip(base.layers, fast.layers):
        speedup = base_layer.cycles / loom_layer.cycles
        lines.append(
            f"{base_layer.layer_name:<24s} {base_layer.layer_kind:<5s} "
            f"{base_layer.cycles:>14,.0f} {loom_layer.cycles:>14,.0f} "
            f"{speedup:>9.2f}"
        )
    lines.append(
        f"{'TOTAL':<24s} {'':<5s} {base.total_cycles():>14,.0f} "
        f"{fast.total_cycles():>14,.0f} "
        f"{base.total_cycles() / fast.total_cycles():>9.2f}"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``loom-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command
    outputs: List[str] = []
    if command in ("table1", "all"):
        outputs.append(table1.format_table())
    if command in ("table2", "all"):
        outputs.append(table2.format_table())
    if command in ("figure4", "all"):
        outputs.append(figure4.format_figure())
    if command in ("area", "all"):
        outputs.append(area.format_table())
    if command in ("figure5", "all"):
        configs = tuple(getattr(args, "configs", figure5.CONFIG_SWEEP))
        outputs.append(figure5.format_figure(figure5.run(configs=configs)))
    if command in ("table3", "all"):
        outputs.append(table3.format_table())
    if command in ("table4", "all"):
        outputs.append(table4.format_table())
    if command == "ablation":
        outputs.append(ablation.format_table())
    if command == "summary":
        outputs.append(_summary(args.network, args.accuracy))
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
