"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    loom-repro table1
    loom-repro table2
    loom-repro figure4
    loom-repro area
    loom-repro figure5 [--configs 32 64 128]
    loom-repro table3
    loom-repro table4
    loom-repro all
    loom-repro networks
    loom-repro run --network resnet18 [--groups 4]
    loom-repro run --network tiny_transformer [--heads 8]
    loom-repro summary --network mobilenet_v1 [--csv layers.csv]
    loom-repro explore --axis equivalent_macs=32,64,128 \\
        --axis accelerator=loom,dstripes --base network=alexnet
    loom-repro explore --grid sweep.json --strategy random --samples 16
    loom-repro --jobs 4 all            # fan simulations out over 4 processes
    loom-repro --cache-dir .loom-cache all   # persist results across runs
    loom-repro --verbose all           # report executor/cache statistics
    loom-repro --engine event all      # per-layer reference engine
    loom-repro validate [--quick]      # prove the engines agree cycle-exactly
    loom-repro serve --port 8100 --store .loom-serve.db   # long-running service
    loom-repro submit --url http://127.0.0.1:8100 --network alexnet
    loom-repro stats --remote http://127.0.0.1:8100
    loom-repro explore --remote http://127.0.0.1:8100 --axis ...
    loom-repro explore --remote URL --trace-out sweep-trace.json
    loom-repro trace dump --remote http://127.0.0.1:8100 --out trace.json
    loom-repro --log-level debug --log-json serve   # structured JSON logs

Every simulation goes through one shared :class:`~repro.sim.jobs.JobExecutor`
per invocation, so ``loom-repro all`` simulates each unique
(network, accelerator, configuration) job exactly once even though several
tables and figures share parts of their matrices.  ``--jobs N`` fans the
simulations out over a process pool (results are identical to a serial run),
``--no-cache`` disables result reuse, ``--cache-dir`` adds an on-disk JSON
store so repeated invocations skip already-simulated jobs entirely, and
``--verbose`` prints what the pipeline actually did (simulations run vs cache
and dedup hits) to stderr so sweep users can confirm reuse is working.

Every simulation runs on the vectorized fast-path engine by default;
``--engine event`` selects the per-layer reference path (the one anchored to
the event-driven tile simulator), ``--engine batched`` the batched sweep
engine (whole design groups in one tensor pass), and ``validate``
differentially checks the chosen candidate engine against the event
reference bit for bit over the network zoo (non-zero exit on mismatch) --
``loom-repro validate --engine batched`` proves the batched scatter path.

``summary`` prints a per-layer breakdown for one network on DPNN and Loom
(``--csv`` exports the same rows machine-readably); ``run`` simulates one
network -- any of the zoo, including the modern grouped/residual/attention
workloads, with optional ``--groups`` / ``--heads`` structural overrides --
across every stock design and reports speedup/efficiency against the
bit-parallel baseline; ``networks`` lists the zoo networks with their
compute-layer counts; ``explore`` runs a declarative
design-space sweep (inline ``--axis``/``--base`` flags or a ``--grid`` JSON
file) through a search strategy and reports the Pareto frontier -- see
:mod:`repro.explore`.

``serve`` turns the whole pipeline into a long-running batching service
(:mod:`repro.serve`): a threaded HTTP JSON API over one shared executor and
a persistent SQLite result store, with request coalescing and bounded-queue
backpressure.  ``submit`` sends one job to a running server, ``stats
--remote`` inspects its live counters (``stats --store`` inspects a store
database offline), and ``explore --remote URL`` executes a sweep's
simulations on the server so every client shares one warm store.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.experiments import (
    ablation,
    area,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.common import default_design_specs, loom_spec
from repro.explore import (
    Axis,
    OBJECTIVES,
    STRATEGIES,
    SweepSpec,
    explore,
    frontier_table,
    named_constraint,
    parse_strategy_options,
    parse_value,
    resolve_strategy,
    sweep_markdown,
    sweep_table,
    sweep_to_csv,
)
from repro.nn import available_networks, modern_networks
from repro.obs import (
    LEVELS,
    Span,
    Tracer,
    chrome_trace,
    configure_logging,
    get_logger,
    get_tracer,
    set_tracer,
)
from repro.serve.client import ServeError
from repro.sim.fastpath import ENGINES, use_engine
from repro.sim.jobs import (
    AcceleratorSpec,
    JobExecutor,
    NetworkSpec,
    ResultCache,
    SimJob,
    network_kind_counts,
)
from repro.sim.report import to_csv
from repro.sim.results import compare

__all__ = ["main", "build_parser", "build_executor"]

_log = get_logger("cli")


def _positive_int(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _positive_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {number}")
    return number


def _port_number(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if not 0 <= number <= 65535:
        raise argparse.ArgumentTypeError(
            f"must be a port number 0-65535 (0 = OS-assigned), got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loom-repro",
        description="Regenerate the tables and figures of the Loom paper "
                    "(Sharify et al., DAC 2018).",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the simulation pipeline (default: 1; "
             "results are identical regardless of N)",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINES), default="fast",
        help="simulation engine: 'fast' (vectorized closed forms, the "
             "default), 'event' (per-layer reference path anchored to the "
             "event-driven tile simulator) or 'batched' (whole design "
             "groups in one tensor pass); results are bit-identical",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print pipeline statistics (simulations vs cache/dedup hits) "
             "to stderr",
    )
    parser.add_argument(
        "--log-level", choices=list(LEVELS), default="info",
        help="minimum severity for structured log output on stderr "
             "(default: info)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines (one object per line, with "
             "trace/span correlation ids) instead of the human format",
    )
    caching = parser.add_mutually_exclusive_group()
    caching.add_argument(
        "--no-cache", action="store_true",
        help="disable the simulation result cache (every job re-simulates)",
    )
    caching.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulation results as JSON under DIR so repeated "
             "invocations reuse them",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="precision profiles (Table 1)")
    sub.add_parser("table2", help="per-kind speedup/efficiency (Table 2)")
    sub.add_parser("figure4", help="all-layer speedup/efficiency (Figure 4)")
    sub.add_parser("area", help="area overhead (Section 4.4)")
    fig5 = sub.add_parser("figure5", help="scaling study (Figure 5)")
    fig5.add_argument("--configs", type=int, nargs="+",
                      default=list(figure5.CONFIG_SWEEP),
                      help="equivalent-MAC configurations to sweep")
    sub.add_parser("table3", help="per-group weight precisions (Table 3)")
    sub.add_parser("table4", help="per-group weight precision speedups (Table 4)")
    sub.add_parser("ablation", help="contribution of each Loom mechanism")
    sub.add_parser("all", help="regenerate every table and figure")
    sub.add_parser("networks", help="list the zoo networks and layer counts")
    validate_cmd = sub.add_parser(
        "validate",
        help="differentially validate the fast engine against the event "
             "engine (exact per-layer equality over the zoo)",
    )
    validate_cmd.add_argument(
        "--quick", action="store_true",
        help="small subset (alexnet/nin, 100%% profile) for smoke runs",
    )
    validate_cmd.add_argument(
        "--engine", dest="validate_engine", choices=list(ENGINES),
        default=None, metavar="ENGINE",
        help="candidate engine to validate against the event reference "
             f"({'/'.join(ENGINES)}; default: the global --engine, i.e. "
             "'fast'); 'batched' runs the whole matrix through one "
             "batched-sweep pass",
    )
    validate_cmd.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write this invocation's spans as Chrome trace-event JSON to "
             "FILE (open in chrome://tracing or Perfetto)",
    )
    summary = sub.add_parser("summary", help="per-layer breakdown for one network")
    summary.add_argument("--network", default="alexnet",
                         choices=available_networks(),
                         help="network to summarise")
    summary.add_argument("--accuracy", default="100%", choices=["100%", "99%"],
                         help="precision profile to use")
    summary.add_argument("--csv", default=None, metavar="PATH",
                         help="also write the per-layer results as CSV to PATH")
    summary.add_argument("--groups", type=_positive_int, default=None,
                         help="structural override: ResNeXt-style group count "
                              "(resnet18 only)")
    summary.add_argument("--heads", type=_positive_int, default=None,
                         help="structural override: attention head count "
                              "(tiny_transformer only)")
    run_cmd = sub.add_parser(
        "run", help="simulate one network across every stock design")
    run_cmd.add_argument("--network", default="alexnet",
                         choices=available_networks(),
                         help="network to simulate")
    run_cmd.add_argument("--accuracy", default="100%", choices=["100%", "99%"],
                         help="precision profile to use")
    run_cmd.add_argument("--groups", type=_positive_int, default=None,
                         help="structural override: ResNeXt-style group count "
                              "(resnet18 only)")
    run_cmd.add_argument("--heads", type=_positive_int, default=None,
                         help="structural override: attention head count "
                              "(tiny_transformer only)")
    run_cmd.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write this invocation's spans as Chrome trace-event JSON to "
             "FILE (open in chrome://tracing or Perfetto)",
    )
    explore_cmd = sub.add_parser(
        "explore", help="design-space sweep with Pareto-frontier reporting")
    explore_cmd.add_argument(
        "--grid", default=None, metavar="FILE",
        help="JSON sweep spec ({\"axes\": {...}, \"base\": {...}, "
             "\"constraints\": [...]}); exclusive with --axis/--base",
    )
    explore_cmd.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2,...",
        help="add a sweep axis, e.g. equivalent_macs=32,64,128 or "
             "accelerator=loom:bits_per_cycle=2,dstripes (repeatable)",
    )
    explore_cmd.add_argument(
        "--base", action="append", default=[], metavar="NAME=VALUE",
        help="fix a non-swept parameter, e.g. network=alexnet (repeatable)",
    )
    explore_cmd.add_argument(
        "--constraint", action="append", default=[], metavar="NAME",
        help="apply a named feasibility constraint, e.g. am_fits_working_set "
             "(repeatable)",
    )
    explore_cmd.add_argument(
        "--strategy", default="grid", choices=sorted(STRATEGIES),
        help="search strategy (default: grid = exhaustive)",
    )
    explore_cmd.add_argument(
        "--strategy-opt", action="append", default=[], metavar="KEY=VALUE",
        help="pass one option to the strategy (repeatable), e.g. "
             "--strategy-opt samples=32 or --strategy-opt model=gp; values "
             "are parsed like axis values (int/float/bool/none/string)",
    )
    explore_cmd.add_argument(
        "--budget", type=_positive_int, default=None, metavar="N",
        help="cap on true simulations the sweep may issue; points already "
             "measured or warm in the result store stay free (default: "
             "unlimited)",
    )
    explore_cmd.add_argument(
        "--samples", type=_positive_int, default=16, metavar="N",
        help="points the random strategy draws (default: 16; shorthand for "
             "--strategy-opt samples=N)",
    )
    explore_cmd.add_argument(
        "--seed", type=int, default=0,
        help="seed for the random/coordinate/surrogate strategies "
             "(default: 0; shorthand for --strategy-opt seed=N)",
    )
    explore_cmd.add_argument(
        "--objectives", default="speedup,energy_efficiency,area",
        metavar="LIST",
        help="comma-separated objectives for the Pareto frontier "
             f"(known: {','.join(sorted(OBJECTIVES))})",
    )
    explore_cmd.add_argument(
        "--baseline", default="dpnn",
        help="accelerator kind the relative metrics compare against "
             "(default: dpnn)",
    )
    explore_cmd.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write every evaluated point (all metrics + Pareto rank) as CSV",
    )
    explore_cmd.add_argument(
        "--markdown", action="store_true",
        help="emit the sweep table as GitHub-flavoured markdown",
    )
    explore_cmd.add_argument(
        "--remote", default=None, metavar="URL",
        help="execute the sweep's simulations on a running `loom-repro "
             "serve` or `loom-repro cluster` endpoint (shared warm store) "
             "instead of in-process",
    )
    explore_cmd.add_argument(
        "--stream", action="store_true",
        help="with --remote: consume results as the server resolves them "
             "(NDJSON against a cluster coordinator; plain servers degrade "
             "to a single response transparently)",
    )
    explore_cmd.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write this sweep's spans as Chrome trace-event JSON to FILE; "
             "with --remote the server's spans are merged in, so the file "
             "shows the whole cross-process trace",
    )
    serve_cmd = sub.add_parser(
        "serve",
        help="run the batching simulation service (HTTP JSON API over one "
             "shared executor and a persistent SQLite result store)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=_port_number, default=8100,
                           help="bind port; 0 asks the OS for a free one "
                                "(default: 8100)")
    store_group = serve_cmd.add_mutually_exclusive_group()
    store_group.add_argument(
        "--store", default=".loom-serve.db", metavar="PATH",
        help="SQLite result store path (default: .loom-serve.db); shared "
             "safely between service threads and other processes",
    )
    store_group.add_argument(
        "--no-store", action="store_true",
        help="keep results in memory only (nothing persisted)",
    )
    serve_cmd.add_argument(
        "--max-entries", type=_positive_int, default=None, metavar="N",
        help="LRU bound on stored results (default: unbounded)",
    )
    serve_cmd.add_argument(
        "--max-memory-entries", type=_positive_int, default=512, metavar="N",
        help="LRU bound on the in-memory result cache (default: 512)",
    )
    serve_cmd.add_argument(
        "--queue-limit", type=_positive_int, default=8, metavar="N",
        help="max distinct in-flight jobs before submissions get 429 + "
             "Retry-After (default: 8; coalesced duplicates never count)",
    )
    serve_cmd.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound URL to PATH once listening (for scripts "
             "that start the service in the background)",
    )
    cluster_cmd = sub.add_parser(
        "cluster",
        help="run a sharded serve cluster: a consistent-hash coordinator "
             "plus N local worker processes, each with its own store",
    )
    cluster_cmd.add_argument("--workers", type=_positive_int, default=2,
                             metavar="N",
                             help="worker processes to spawn (default: 2)")
    cluster_cmd.add_argument("--host", default="127.0.0.1",
                             help="coordinator bind address "
                                  "(default: 127.0.0.1)")
    cluster_cmd.add_argument("--port", type=_port_number, default=8200,
                             help="coordinator bind port; 0 asks the OS for "
                                  "a free one (default: 8200)")
    cluster_store = cluster_cmd.add_mutually_exclusive_group()
    cluster_store.add_argument(
        "--store-dir", default=".loom-cluster", metavar="DIR",
        help="directory for the per-worker SQLite stores "
             "(default: .loom-cluster; worker-<i>.db inside it)",
    )
    cluster_store.add_argument(
        "--no-store", action="store_true",
        help="keep worker results in memory only (nothing persisted)",
    )
    cluster_cmd.add_argument(
        "--queue-limit", type=_positive_int, default=8, metavar="N",
        help="per-worker bound on in-flight batches before 429 "
             "backpressure (default: 8)",
    )
    cluster_cmd.add_argument(
        "--rate", type=_positive_float, default=None, metavar="R",
        help="per-client sustained requests/second at the coordinator "
             "(default: unlimited)",
    )
    cluster_cmd.add_argument(
        "--burst", type=_positive_int, default=100, metavar="N",
        help="per-client burst capacity when --rate is set (default: 100)",
    )
    cluster_cmd.add_argument(
        "--quota", type=_positive_int, default=None, metavar="N",
        help="per-client lifetime request quota (default: unlimited)",
    )
    peer_group = cluster_cmd.add_mutually_exclusive_group()
    peer_group.add_argument(
        "--peer-cache", dest="peer_cache", action="store_true", default=True,
        help="share each worker's cache across the cluster: local misses "
             "ask the key's owning peer before simulating, and fresh "
             "results replicate to the key's failover shard (default: on)",
    )
    peer_group.add_argument(
        "--no-peer-cache", dest="peer_cache", action="store_false",
        help="keep workers shared-nothing (no peer lookups, no "
             "write-through replication)",
    )
    cluster_cmd.add_argument(
        "--peer-timeout-ms", type=_positive_float, default=1000.0,
        metavar="MS",
        help="strict budget for one peer-cache lookup before falling back "
             "to local compute (default: 1000)",
    )
    cluster_cmd.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the coordinator URL to PATH once every node is up",
    )
    submit_cmd = sub.add_parser(
        "submit", help="submit one simulation to a running serve endpoint")
    submit_cmd.add_argument("--url", required=True,
                            help="serve endpoint, e.g. http://127.0.0.1:8100")
    submit_cmd.add_argument("--network", default="alexnet",
                            choices=available_networks(),
                            help="network to simulate")
    submit_cmd.add_argument("--accuracy", default="100%",
                            choices=["100%", "99%"],
                            help="precision profile to use")
    submit_cmd.add_argument(
        "--accelerator", default="loom", metavar="SPEC",
        help="accelerator design, explore-axis syntax (e.g. dpnn, "
             "loom:bits_per_cycle=2; default: loom)",
    )
    submit_cmd.add_argument("--groups", type=_positive_int, default=None,
                            help="structural override: ResNeXt-style group "
                                 "count (resnet18 only)")
    submit_cmd.add_argument("--heads", type=_positive_int, default=None,
                            help="structural override: attention head count "
                                 "(tiny_transformer only)")
    submit_cmd.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        help="set a config knob, e.g. equivalent_macs=256 or "
             "dram=lpddr4-4267 (repeatable)",
    )
    submit_cmd.add_argument(
        "--json", action="store_true",
        help="print the full result as JSON instead of a summary",
    )
    stats_cmd = sub.add_parser(
        "stats", help="inspect a running service (or a store database)")
    stats_source = stats_cmd.add_mutually_exclusive_group(required=True)
    stats_source.add_argument(
        "--remote", default=None, metavar="URL",
        help="live /stats of a running serve endpoint",
    )
    stats_source.add_argument(
        "--store", default=None, metavar="PATH",
        help="offline statistics of a SQLite result store",
    )
    trace_cmd = sub.add_parser(
        "trace", help="inspect recorded spans (Chrome trace-event export)")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_dump = trace_sub.add_parser(
        "dump",
        help="export recorded spans as Chrome trace-event JSON (open in "
             "chrome://tracing or Perfetto)",
    )
    trace_dump.add_argument(
        "--remote", default=None, metavar="URL",
        help="fetch /trace from a running serve or cluster endpoint (a "
             "coordinator merges every healthy worker's spans) instead of "
             "dumping this process's recorder",
    )
    trace_dump.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the trace document to FILE instead of stdout",
    )
    return parser


def build_executor(args: argparse.Namespace) -> JobExecutor:
    """Build the invocation-wide executor from the parsed CLI flags."""
    if args.no_cache:
        cache = None
    elif args.cache_dir is not None:
        cache = ResultCache(args.cache_dir)
    else:
        cache = ResultCache()
    return JobExecutor(workers=args.jobs, cache=cache)


def _format_overrides(groups: Optional[int], heads: Optional[int]) -> str:
    """Render the structural overrides for report headers ('', ' groups=4')."""
    return "".join(
        f" {name}={value}"
        for name, value in (("groups", groups), ("heads", heads))
        if value is not None
    )


def _summary(network_name: str, accuracy: str, executor: JobExecutor,
             csv_path: Optional[str] = None, groups: Optional[int] = None,
             heads: Optional[int] = None) -> str:
    net = NetworkSpec(network_name, accuracy, groups=groups, heads=heads)
    base, fast = executor.run([
        SimJob(network=net, accelerator=AcceleratorSpec.create("dpnn")),
        SimJob(network=net, accelerator=loom_spec()),
    ])

    def ratio(numerator: float, denominator: float) -> str:
        # Degenerate zero-cycle results print "n/a" (like comparison_table)
        # rather than raising ZeroDivisionError.
        if denominator == 0:
            return f"{'n/a':>9s}"
        return f"{numerator / denominator:>9.2f}"

    overrides = _format_overrides(groups, heads)
    lines = [f"== {network_name}{overrides} ({accuracy} profile): "
             f"DPNN vs Loom-1b =="]
    lines.append(f"{'layer':<24s} {'kind':<5s} {'DPNN cycles':>14s} "
                 f"{'Loom cycles':>14s} {'speedup':>9s}")
    for base_layer, loom_layer in zip(base.layers, fast.layers):
        lines.append(
            f"{base_layer.layer_name:<24s} {base_layer.layer_kind:<5s} "
            f"{base_layer.cycles:>14,.0f} {loom_layer.cycles:>14,.0f} "
            f"{ratio(base_layer.cycles, loom_layer.cycles)}"
        )
    lines.append(
        f"{'TOTAL':<24s} {'':<5s} {base.total_cycles():>14,.0f} "
        f"{fast.total_cycles():>14,.0f} "
        f"{ratio(base.total_cycles(), fast.total_cycles())}"
    )
    if csv_path is not None:
        with open(csv_path, "w", encoding="utf-8", newline="") as handle:
            handle.write(to_csv([base, fast]))
        lines.append(f"per-layer CSV written to {csv_path}")
    return "\n".join(lines)


def _parse_axis_flag(token: str) -> Axis:
    name, sep, rest = token.partition("=")
    values = [v for v in rest.split(",") if v]
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"bad --axis {token!r}; expected NAME=V1,V2,..."
        )
    if name == "accelerator":
        return Axis(name, tuple(values))
    return Axis(name, tuple(parse_value(v) for v in values))


def _parse_base_flag(token: str):
    name, sep, raw = token.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"bad --base {token!r}; expected NAME=VALUE"
        )
    return name, (raw if name == "accelerator" else parse_value(raw))


#: Default inline sweep: the Figure 5 scale axis crossed with the paper's
#: precision-exploiting designs, on AlexNet.
_DEFAULT_EXPLORE_AXES = (
    ("equivalent_macs", "32,64,128,256,512"),
    ("accelerator", "loom,loom:bits_per_cycle=2,loom:bits_per_cycle=4,dstripes"),
)


def _build_space(args: argparse.Namespace) -> SweepSpec:
    """Build the sweep spec an ``explore`` invocation describes."""
    if args.grid is not None:
        if args.axis or args.base:
            raise ValueError("--grid is exclusive with --axis/--base")
        with open(args.grid, "r", encoding="utf-8") as handle:
            space = SweepSpec.from_dict(json.load(handle))
        if args.constraint:
            space = SweepSpec(
                axes=list(space.axes),
                base=space.base,
                constraints=list(space.constraints)
                + [named_constraint(name) for name in args.constraint],
            )
        return space
    axis_tokens = args.axis or [f"{name}={values}"
                                for name, values in _DEFAULT_EXPLORE_AXES]
    axes = [_parse_axis_flag(token) for token in axis_tokens]
    base = dict(_parse_base_flag(token) for token in args.base)
    swept = {axis.name for axis in axes}
    if "network" not in swept and "network" not in base:
        base["network"] = "alexnet"
    return SweepSpec(axes=axes, base=base,
                     constraints=[named_constraint(n) for n in args.constraint])


def _explore(args: argparse.Namespace, executor: JobExecutor) -> str:
    if args.stream and args.remote is None:
        raise ValueError("--stream requires --remote (streaming is a wire "
                         "feature; in-process sweeps already stream)")
    space = _build_space(args)
    options = parse_strategy_options(args.strategy_opt)
    if args.strategy == "random":
        options.setdefault("samples", args.samples)
    if args.strategy in ("random", "coordinate", "surrogate"):
        options.setdefault("seed", args.seed)
    if args.remote is not None:
        from repro.serve import RemoteExecutor
        executor = RemoteExecutor(args.remote, stream=args.stream)
    result = explore(
        space,
        strategy=resolve_strategy(args.strategy, **options),
        objectives=args.objectives,
        executor=executor,
        baseline=args.baseline,
        budget=args.budget,
    )
    if args.markdown:
        parts = [sweep_markdown(result)]
    else:
        parts = [sweep_table(result), frontier_table(result)]
    if args.csv is not None:
        with open(args.csv, "w", encoding="utf-8", newline="") as handle:
            handle.write(sweep_to_csv(result))
        parts.append(f"sweep CSV ({len(result.evaluated)} points) written to "
                     f"{args.csv}")
    if args.remote is not None:
        stats = executor.stats
        parts.append(
            f"remote: {stats.submitted} jobs submitted to {args.remote} "
            f"({stats.executed} executed there, {stats.cache_hits} answered "
            f"from its warm store)"
        )
    return "\n\n".join(parts)


def _serve(args: argparse.Namespace) -> str:
    """Run the batching service until a signal or POST /shutdown stops it."""
    import signal

    from repro.serve import SimulationService, SQLiteResultStore

    backend = None
    if not args.no_store:
        backend = SQLiteResultStore(args.store, max_entries=args.max_entries)
    executor = JobExecutor(
        workers=args.jobs,
        cache=ResultCache(backend=backend,
                          max_memory_entries=args.max_memory_entries),
    )
    service = SimulationService(
        executor=executor,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
    )
    url = service.start()
    store_label = backend.describe() if backend is not None else "memory only"
    _log.info("serve.listening", url=url, store=store_label,
              queue_limit=args.queue_limit)
    if args.ready_file is not None:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(url + "\n")
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: service.request_stop())
        except ValueError:  # not the main thread (e.g. under a test runner)
            break
    try:
        service.wait_until_stopped()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return (f"serve: stopped after "
            f"{service.stats.requests} requests "
            f"({service.stats.submitted_points} points submitted, "
            f"{service.stats.coalesced} coalesced, "
            f"{service.stats.rejected} rejected)")


def _cluster(args: argparse.Namespace) -> str:
    """Run a coordinator plus N worker processes until stopped."""
    import multiprocessing
    import signal
    from pathlib import Path

    from repro.cluster import ClusterCoordinator, RateLimiter
    from repro.cluster.worker import worker_process_main
    from repro.serve import ServeClient

    ctx = multiprocessing.get_context("spawn")
    ready: multiprocessing.Queue = ctx.Queue()
    store_dir = None if args.no_store else Path(args.store_dir)
    if store_dir is not None:
        store_dir.mkdir(parents=True, exist_ok=True)
    processes = []
    for index in range(args.workers):
        store_path = (str(store_dir / f"worker-{index}.db")
                      if store_dir is not None else None)
        process = ctx.Process(
            target=worker_process_main,
            # Positional tail: (max_memory_entries, host, port) defaults,
            # then the parent's logging flags so spawn children match.
            args=(ready, store_path, args.queue_limit, 512, "127.0.0.1", 0,
                  args.log_level, args.log_json),
            name=f"loom-cluster-worker-{index}",
        )
        process.start()
        processes.append(process)

    def _reap() -> None:
        for process in processes:
            process.join(timeout=15)
            if process.is_alive():  # pragma: no cover - unresponsive child
                process.terminate()
                process.join(timeout=5)

    worker_urls = []
    try:
        for _ in processes:
            worker_urls.append(ready.get(timeout=120))
    except Exception:
        for process in processes:
            process.terminate()
        _reap()
        raise OSError("a cluster worker failed to start") from None

    rate_limiter = None
    if args.rate is not None or args.quota is not None:
        rate_limiter = RateLimiter(
            rate=args.rate if args.rate is not None else 50.0,
            burst=args.burst, quota=args.quota)
    coordinator = ClusterCoordinator(worker_urls, host=args.host,
                                     port=args.port,
                                     rate_limiter=rate_limiter,
                                     peer_cache=args.peer_cache,
                                     peer_timeout_s=args.peer_timeout_ms
                                     / 1000.0)
    try:
        url = coordinator.start()
    except OSError:
        for worker_url in worker_urls:
            try:
                ServeClient(worker_url, timeout_s=10).shutdown()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        _reap()
        raise
    _log.info("cluster.listening", url=url, workers=len(worker_urls),
              worker_urls=worker_urls)
    if args.ready_file is not None:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(url + "\n")
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: coordinator.request_stop())
        except ValueError:  # not the main thread (e.g. under a test runner)
            break
    try:
        coordinator.wait_until_stopped()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
        for worker_url in worker_urls:
            try:
                ServeClient(worker_url, timeout_s=10).shutdown()
            except Exception:  # noqa: BLE001 - worker may already be gone
                pass
        _reap()
    stats = coordinator.stats
    return (f"cluster: stopped after {stats.requests} requests "
            f"({stats.submitted_points} points submitted, "
            f"{stats.routed_points} routed, "
            f"{stats.shard_retries} re-routed, "
            f"{stats.rate_limited} rate-limited)")


def _submit(args: argparse.Namespace) -> str:
    """Submit one job to a running service and report the served result."""
    from repro.serve import ServeClient

    point = {"network": args.network, "accelerator": args.accelerator}
    if args.accuracy != "100%":
        point["accuracy"] = args.accuracy
    for override in ("groups", "heads"):
        value = getattr(args, override)
        if value is not None:
            point[override] = value
    for token in args.set:
        name, sep, raw = token.partition("=")
        if not sep or not name:
            raise ValueError(f"bad --set {token!r}; expected NAME=VALUE")
        point[name] = parse_value(raw)
    done = ServeClient(args.url).submit(point)
    if args.json:
        return json.dumps({"key": done.key, "status": done.status,
                           "result": done.result.to_dict()},
                          indent=2, sort_keys=True)
    result = done.result
    return "\n".join([
        f"== served: {result.network} on {result.accelerator} "
        f"({done.status}) ==",
        f"key:         {done.key}",
        f"cycles:      {result.total_cycles():,.0f}",
        f"energy (uJ): {result.total_energy_pj() / 1e6:.2f}",
        f"fps:         {result.frames_per_second():,.1f}",
    ])


def _stats(args: argparse.Namespace) -> str:
    """Live /stats of a running service, or offline stats of a store file."""
    if args.remote is not None:
        from repro.serve import ServeClient
        payload = ServeClient(args.remote).stats()
    else:
        from repro.serve import SQLiteResultStore
        if not os.path.exists(args.store):
            raise ValueError(f"no store database at {args.store}")
        # Read-only inspection: never repairs/wipes the way opening a store
        # for service use would.
        payload = SQLiteResultStore.inspect(args.store)
    return json.dumps(payload, indent=2, sort_keys=True)


def _collect_spans(remote: Optional[str]) -> List[Span]:
    """This process's recorded spans, or a remote endpoint's via /trace."""
    if remote is None:
        return list(get_tracer().recorder.spans())
    from repro.serve import ServeClient

    payload = ServeClient(remote).trace()
    return [Span.from_dict(entry) for entry in payload.get("spans", [])]


def _trace_dump(args: argparse.Namespace) -> str:
    """Export spans as a Chrome trace-event document (stdout or --out)."""
    spans = _collect_spans(args.remote)
    document = json.dumps(chrome_trace(spans), indent=2)
    if args.out is None:
        return document
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    return f"trace: {len(spans)} spans written to {args.out}"


def _write_trace_out(args: argparse.Namespace) -> None:
    """Honour ``--trace-out FILE`` after a traced command finishes.

    For ``explore --remote`` the server's spans are merged in (best effort:
    an endpoint that already shut down just yields the local half), so the
    file shows the whole cross-process sweep on one timeline.
    """
    spans = _collect_spans(None)
    remote = getattr(args, "remote", None)
    if remote is not None:
        try:
            spans.extend(_collect_spans(remote))
        except (ServeError, OSError, ValueError, KeyError, TypeError):
            _log.warning("trace.remote_fetch_failed", remote=remote)
    with open(args.trace_out, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(chrome_trace(spans)) + "\n")
    _log.info("trace.written", path=args.trace_out, spans=len(spans))


def _run_designs() -> List[Tuple[str, AcceleratorSpec]]:
    """The stock designs ``loom-repro run`` simulates, with display labels.

    One shared definition of the labeled six-design matrix (also used by the
    golden-snapshot suite), so adding a stock design is a one-place change.
    """
    return list(default_design_specs(include_dstripes=True).items())


def _run(args: argparse.Namespace, executor: JobExecutor) -> str:
    """Simulate one network on every stock design; report vs the baseline."""
    net = NetworkSpec(args.network, args.accuracy,
                      groups=args.groups, heads=args.heads)
    designs = _run_designs()
    results = executor.run([
        SimJob(network=net, accelerator=spec) for _, spec in designs
    ])
    baseline = results[0]
    kinds = network_kind_counts(args.network)
    workload = " ".join(f"{kinds[kind]} {kind}" for kind in
                        ("conv", "matmul", "fc") if kinds[kind])
    overrides = _format_overrides(args.groups, args.heads)
    lines = [f"== {args.network}{overrides} ({args.accuracy} profile): "
             f"{workload} layers =="]
    lines.append(f"{'design':<10s} {'cycles':>14s} {'energy (uJ)':>12s} "
                 f"{'speedup':>8s} {'efficiency':>11s}")
    for (label, _), result in zip(designs, results):
        relative = compare(result, baseline)
        lines.append(
            f"{label:<10s} {result.total_cycles():>14,.0f} "
            f"{result.total_energy_pj() / 1e6:>12.2f} "
            f"{relative.speedup:>7.2f}x {relative.energy_efficiency:>10.2f}x"
        )
    return "\n".join(lines)


def _networks_listing() -> str:
    lines = ["== networks: the paper's zoo plus the modern workloads =="]
    lines.append(f"{'network':<18s} {'conv':>6s} {'matmul':>7s} {'fc':>6s} "
                 f"{'total':>7s}")
    for name in available_networks():
        kinds = network_kind_counts(name)
        total = sum(kinds.values())
        lines.append(f"{name:<18s} {kinds['conv']:>6d} {kinds['matmul']:>7d} "
                     f"{kinds['fc']:>6d} {total:>7d}")
    return "\n".join(lines)


def _validate(args: argparse.Namespace) -> Tuple[str, bool]:
    """Run the differential engine validation; returns (report, ok)."""
    from repro.sim.validate import validate_tile_level, validate_zoo

    # The subcommand's --engine names the candidate engine explicitly;
    # otherwise the global --engine is the candidate (its historic meaning).
    engine = args.validate_engine if args.validate_engine is not None \
        else args.engine
    if args.quick:
        # Two paper networks plus every modern workload (grouped/depthwise,
        # residual, attention): the smoke set still crosses each layer type
        # with the full accelerator matrix.
        report = validate_zoo(networks=["alexnet", "nin"] + modern_networks(),
                              accuracies=["100%"],
                              include_effective_weights=False,
                              engine=engine)
    else:
        report = validate_zoo(engine=engine)
    tile_checks = validate_tile_level()
    lines = [report.summary(verbose=args.verbose)]
    lines.append("== event-engine anchor: analytical schedules executed "
                 "cycle by cycle ==")
    lines.extend("  " + check.describe() for check in tile_checks)
    ok = report.ok and all(check.ok for check in tile_checks)
    return "\n".join(lines), ok


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``loom-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command
    configure_logging(level=args.log_level, json_output=args.log_json)
    # Name this process's spans after its role, so a merged Chrome trace
    # shows "cli", "serve" and "coordinator" as separate process rows.
    set_tracer(Tracer(service={"serve": "serve",
                               "cluster": "coordinator"}.get(command, "cli")))
    if command in ("serve", "cluster") and \
            (args.no_cache or args.cache_dir is not None):
        parser.error(f"{command} keeps its own persistent store; use "
                     f"--store/--no-store instead of --cache-dir/--no-cache")
    # Remote-side commands execute on the server, so the local pipeline
    # flags would be silent no-ops -- reject them rather than mislead.
    if command in ("submit", "stats", "trace") or \
            (command == "explore" and args.remote is not None):
        ignored = [flag for flag, is_set in (
            ("--engine", args.engine != "fast"),
            ("--jobs", args.jobs != 1),
            ("--no-cache", args.no_cache),
            ("--cache-dir", args.cache_dir is not None),
        ) if is_set]
        if ignored:
            parser.error(
                f"{'/'.join(ignored)} have no effect on {command}: execution "
                f"happens on the server (configure `loom-repro serve`'s own "
                f"flags instead)")
    outputs: List[str] = []
    exit_code = 0
    # serve builds its own store-backed executor; submit/stats/remote
    # explore execute on the server -- none of them should build (or later
    # report statistics for) a local pipeline executor.
    uses_local_executor = args.command not in ("serve", "cluster", "submit",
                                               "stats", "trace") \
        and not (args.command == "explore" and args.remote is not None)
    executor = None
    if uses_local_executor:
        try:
            executor = build_executor(args)
        except OSError as error:
            parser.error(f"--cache-dir: {error}")
    # use_engine (not set_default_engine): in-process callers of main() must
    # get the previous engine default back when the invocation finishes.
    with use_engine(args.engine), \
            (executor if executor is not None else contextlib.nullcontext()), \
            get_tracer().span(f"cli.{command}"):
        if command in ("table1", "all"):
            outputs.append(table1.format_table())
        if command in ("table2", "all"):
            outputs.append(table2.format_table(table2.run(executor=executor)))
        if command in ("figure4", "all"):
            outputs.append(figure4.format_figure(figure4.run(executor=executor)))
        if command in ("area", "all"):
            outputs.append(area.format_table(area.run(executor=executor)))
        if command in ("figure5", "all"):
            configs = tuple(getattr(args, "configs", figure5.CONFIG_SWEEP))
            outputs.append(
                figure5.format_figure(
                    figure5.run(configs=configs, executor=executor)
                )
            )
        if command in ("table3", "all"):
            outputs.append(table3.format_table())
        if command in ("table4", "all"):
            outputs.append(table4.format_table(table4.run(executor=executor)))
        if command == "ablation":
            outputs.append(ablation.format_table(ablation.run(executor=executor)))
        if command == "networks":
            outputs.append(_networks_listing())
        if command == "validate":
            report, ok = _validate(args)
            outputs.append(report)
            if not ok:
                exit_code = 1
        if command == "summary":
            try:
                outputs.append(_summary(args.network, args.accuracy, executor,
                                        csv_path=args.csv, groups=args.groups,
                                        heads=args.heads))
            except OSError as error:
                parser.error(f"--csv: {error}")
            except (KeyError, ValueError) as error:
                parser.error(str(error))
        if command == "run":
            try:
                outputs.append(_run(args, executor))
            except (KeyError, ValueError) as error:
                parser.error(str(error))
        if command == "explore":
            try:
                outputs.append(_explore(args, executor))
            except (OSError, ValueError, argparse.ArgumentTypeError,
                    ServeError) as error:
                parser.error(str(error))
        if command == "serve":
            try:
                outputs.append(_serve(args))
            except OSError as error:
                parser.error(str(error))
        if command == "cluster":
            try:
                outputs.append(_cluster(args))
            except OSError as error:
                parser.error(str(error))
        if command == "submit":
            try:
                outputs.append(_submit(args))
            except (OSError, ValueError, ServeError) as error:
                parser.error(str(error))
        if command == "stats":
            try:
                outputs.append(_stats(args))
            except (OSError, ValueError, ServeError) as error:
                parser.error(str(error))
        if command == "trace":
            try:
                outputs.append(_trace_dump(args))
            except (OSError, ValueError, KeyError, TypeError,
                    ServeError) as error:
                parser.error(str(error))
    if getattr(args, "trace_out", None) is not None:
        try:
            _write_trace_out(args)
        except OSError as error:
            parser.error(f"--trace-out: {error}")
    if args.verbose and executor is not None:
        print(executor.stats.summary(cache=executor.cache), file=sys.stderr)
    print("\n\n".join(outputs))
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
