"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    loom-repro table1
    loom-repro table2
    loom-repro figure4
    loom-repro area
    loom-repro figure5 [--configs 32 64 128]
    loom-repro table3
    loom-repro table4
    loom-repro all
    loom-repro networks
    loom-repro summary --network alexnet
    loom-repro --jobs 4 all            # fan simulations out over 4 processes
    loom-repro --cache-dir .loom-cache all   # persist results across runs

Every simulation goes through one shared :class:`~repro.sim.jobs.JobExecutor`
per invocation, so ``loom-repro all`` simulates each unique
(network, accelerator, configuration) job exactly once even though several
tables and figures share parts of their matrices.  ``--jobs N`` fans the
simulations out over a process pool (results are identical to a serial run),
``--no-cache`` disables result reuse, and ``--cache-dir`` adds an on-disk
JSON store so repeated invocations skip already-simulated jobs entirely.

``summary`` prints a per-layer breakdown for one network on DPNN and Loom,
which is handy when exploring the model interactively; ``networks`` lists the
zoo networks with their compute-layer counts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ablation,
    area,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.common import loom_spec
from repro.nn import available_networks
from repro.quant import paper_networks
from repro.sim.jobs import (
    AcceleratorSpec,
    JobExecutor,
    NetworkSpec,
    ResultCache,
    SimJob,
    network_layer_counts,
)

__all__ = ["main", "build_parser", "build_executor"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loom-repro",
        description="Regenerate the tables and figures of the Loom paper "
                    "(Sharify et al., DAC 2018).",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the simulation pipeline (default: 1; "
             "results are identical regardless of N)",
    )
    caching = parser.add_mutually_exclusive_group()
    caching.add_argument(
        "--no-cache", action="store_true",
        help="disable the simulation result cache (every job re-simulates)",
    )
    caching.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulation results as JSON under DIR so repeated "
             "invocations reuse them",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="precision profiles (Table 1)")
    sub.add_parser("table2", help="per-kind speedup/efficiency (Table 2)")
    sub.add_parser("figure4", help="all-layer speedup/efficiency (Figure 4)")
    sub.add_parser("area", help="area overhead (Section 4.4)")
    fig5 = sub.add_parser("figure5", help="scaling study (Figure 5)")
    fig5.add_argument("--configs", type=int, nargs="+",
                      default=list(figure5.CONFIG_SWEEP),
                      help="equivalent-MAC configurations to sweep")
    sub.add_parser("table3", help="per-group weight precisions (Table 3)")
    sub.add_parser("table4", help="per-group weight precision speedups (Table 4)")
    sub.add_parser("ablation", help="contribution of each Loom mechanism")
    sub.add_parser("all", help="regenerate every table and figure")
    sub.add_parser("networks", help="list the zoo networks and layer counts")
    summary = sub.add_parser("summary", help="per-layer breakdown for one network")
    summary.add_argument("--network", default="alexnet",
                         choices=paper_networks(), help="network to summarise")
    summary.add_argument("--accuracy", default="100%", choices=["100%", "99%"],
                         help="precision profile to use")
    return parser


def build_executor(args: argparse.Namespace) -> JobExecutor:
    """Build the invocation-wide executor from the parsed CLI flags."""
    if args.no_cache:
        cache = None
    elif args.cache_dir is not None:
        cache = ResultCache(args.cache_dir)
    else:
        cache = ResultCache()
    return JobExecutor(workers=args.jobs, cache=cache)


def _summary(network_name: str, accuracy: str, executor: JobExecutor) -> str:
    net = NetworkSpec(network_name, accuracy)
    base, fast = executor.run([
        SimJob(network=net, accelerator=AcceleratorSpec.create("dpnn")),
        SimJob(network=net, accelerator=loom_spec()),
    ])
    lines = [f"== {network_name} ({accuracy} profile): DPNN vs Loom-1b =="]
    lines.append(f"{'layer':<24s} {'kind':<5s} {'DPNN cycles':>14s} "
                 f"{'Loom cycles':>14s} {'speedup':>9s}")
    for base_layer, loom_layer in zip(base.layers, fast.layers):
        speedup = base_layer.cycles / loom_layer.cycles
        lines.append(
            f"{base_layer.layer_name:<24s} {base_layer.layer_kind:<5s} "
            f"{base_layer.cycles:>14,.0f} {loom_layer.cycles:>14,.0f} "
            f"{speedup:>9.2f}"
        )
    lines.append(
        f"{'TOTAL':<24s} {'':<5s} {base.total_cycles():>14,.0f} "
        f"{fast.total_cycles():>14,.0f} "
        f"{base.total_cycles() / fast.total_cycles():>9.2f}"
    )
    return "\n".join(lines)


def _networks_listing() -> str:
    lines = ["== networks: the zoo the paper evaluates =="]
    lines.append(f"{'network':<12s} {'conv':>6s} {'fc':>6s} {'total':>7s}")
    for name in available_networks():
        conv, fc = network_layer_counts(name)
        lines.append(f"{name:<12s} {conv:>6d} {fc:>6d} {conv + fc:>7d}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``loom-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command
    outputs: List[str] = []
    try:
        executor = build_executor(args)
    except OSError as error:
        parser.error(f"--cache-dir: {error}")
    with executor:
        if command in ("table1", "all"):
            outputs.append(table1.format_table())
        if command in ("table2", "all"):
            outputs.append(table2.format_table(table2.run(executor=executor)))
        if command in ("figure4", "all"):
            outputs.append(figure4.format_figure(figure4.run(executor=executor)))
        if command in ("area", "all"):
            outputs.append(area.format_table(area.run(executor=executor)))
        if command in ("figure5", "all"):
            configs = tuple(getattr(args, "configs", figure5.CONFIG_SWEEP))
            outputs.append(
                figure5.format_figure(
                    figure5.run(configs=configs, executor=executor)
                )
            )
        if command in ("table3", "all"):
            outputs.append(table3.format_table())
        if command in ("table4", "all"):
            outputs.append(table4.format_table(table4.run(executor=executor)))
        if command == "ablation":
            outputs.append(ablation.format_table(ablation.run(executor=executor)))
        if command == "networks":
            outputs.append(_networks_listing())
        if command == "summary":
            outputs.append(_summary(args.network, args.accuracy, executor))
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
