"""DStripes: Stripes extended with dynamic per-group activation precisions.

DStripes is Stripes plus the runtime precision detection of Lascorz et al.:
instead of using the profile-derived per-layer activation precision for every
group of activations, the hardware inspects each group of concurrently
processed activations and uses only as many bits as the largest value in the
group requires.  Convolutional layers therefore run faster than under plain
Stripes; fully-connected layers are unchanged (their time is set by weight
delivery, exactly as in Stripes).
"""

from __future__ import annotations

from typing import Optional

from repro.accelerators.base import AcceleratorConfig
from repro.accelerators.stripes import Stripes
from repro.quant.dynamic import DynamicPrecisionModel

__all__ = ["DStripes"]


class DStripes(Stripes):
    """Stripes with runtime (per-group) activation precision reduction."""

    name = "DStripes"

    def __init__(self, config: Optional[AcceleratorConfig] = None,
                 dynamic_precision: Optional[DynamicPrecisionModel] = None) -> None:
        super().__init__(
            config,
            dynamic_precision=dynamic_precision or DynamicPrecisionModel(enabled=True),
        )
        if not self.dynamic_precision.enabled:
            raise ValueError(
                "DStripes requires an enabled DynamicPrecisionModel; "
                "use Stripes for the static design"
            )
